//! Daisy-chained N-way replication — the extension §1 of the paper
//! names but leaves out of scope: *"Higher degrees of replication can
//! be achieved by daisy-chaining multiple backup servers."*
//!
//! The chain `head ← B1 ← B2 ← … ← tail` composes the paper's two
//! bridges:
//!
//! * the **tail** is exactly a [`SecondaryBridge`] diverting to its
//!   upstream neighbour;
//! * every **middle** link runs a [`ChainBridge`]: the primary-bridge
//!   merge of its own TCP output against the stream diverted from
//!   below, with the *merged* result diverted one hop up (carrying the
//!   original destination option), plus the secondary-style ingress
//!   rewrite of client datagrams to its own address;
//! * the **head** is the same [`ChainBridge`] with no upstream — its
//!   merged output goes to the client.
//!
//! The client-facing sequence space is the **tail's** space: each link
//! normalises its own ISN against the merged stream from below, so the
//! invariant of §2 holds transitively — a byte is released to the
//! client only when *every* replica has produced it, and
//! `ack = min(ack_all)`, `win = min(win_all)`, `MSS = min(MSS_all)`.
//!
//! Failures heal locally (one failure at a time, like the paper's
//! two-node system):
//!
//! * **head dies** → its neighbour promotes: stop diverting, take over
//!   the VIP (gratuitous ARP). Ingress translation *continues* (its
//!   TCBs stay keyed to its own address).
//! * **middle dies** → its neighbours re-target each other; all
//!   `Δseq`s and queue state stay valid because everything is in the
//!   tail's space.
//! * **tail dies** → its upstream applies §6 (flush + Δ-adjusted
//!   pass-through) while continuing to divert upstream: one link
//!   shorter, same protocol.
//!
//! # The PR9 control plane
//!
//! [`ChainController`] replaces the seed-era binary heartbeat with the
//! PR8 health machinery: every peer gets a [`HealthMonitor`] fed from
//! v1 heartbeats (RTT echo, seq gaps → loss) and silence-derived miss
//! counts. Promotion is a small state machine with
//! *audit-log-before-act* ordering — the decision is journaled and
//! recorded on the invariant auditor **before** the topology mutates —
//! and an *abort-if-standby-unhealthy* veto: a successor whose own
//! composite score is below threshold refuses the VIP (journaled as an
//! alert) until either its score recovers or a forced-promotion grace
//! elapses (a chain with no head at all is worse than a shaky head).
//! After any takeover the chain can be re-provisioned — see
//! [`crate::reprovision`].

use crate::designation::{ConnKey, FailoverConfig};
use crate::detector::{DetectorConfig, HB_RING, HEARTBEAT_V1_LEN};
use crate::flow::{FlowState, FlowTableConfig, ShardStats};
use crate::primary::{ConnRow, PrimaryBridge, PrimaryMode};
use crate::reprovision::FlowHandoff;
use crate::secondary::SecondaryBridge;
use bytes::{Bytes, BytesMut};
use std::any::Any;
use tcpfo_net::time::SimTime;
use tcpfo_net::ShardExecutor;
use tcpfo_tcp::filter::{AddressedSegment, BatchDir, FailoverRule, FilterOutput, SegmentFilter};
use tcpfo_tcp::host::{HostController, HostServices};
use tcpfo_telemetry::{
    Counter, FailoverPhase, HealthConfig, HealthMonitor, HealthObservatory, HealthScore,
    InvariantAuditor, LatencyObservatory, SpanTrack, StageLatency, Telemetry,
};
use tcpfo_wire::checksum::ChecksumDelta;
use tcpfo_wire::ipv4::{Ipv4Addr, PROTO_HEARTBEAT};
use tcpfo_wire::tcp::{SegmentPatcher, OPT_KIND_ORIG_DEST, TCP_HEADER_LEN};

/// Counters for the chain-specific plumbing.
#[derive(Debug, Default, Clone)]
pub struct ChainStats {
    /// Merged segments diverted one hop up instead of to the client.
    pub diverted_upstream: u64,
    /// Client datagrams rewritten `vip → own` for the local stack.
    pub ingress_rewrites: u64,
    /// Segments that could not carry the orig-dest option (no header
    /// room) and were forwarded undiverted. Zero in practice — the
    /// merge bridge never emits more than 12 option bytes.
    pub divert_fallbacks: u64,
    /// Flows adopted from a reprovisioning handoff.
    pub adopted_flows: u64,
}

/// The bridge run by the head and every middle link of a daisy chain.
///
/// Since PR9 this is a thin, allocation-free routing shell over the
/// PR4/PR8-era [`PrimaryBridge`]: per-connection state lives in the
/// sharded `FlowTable`, and the auditor / latency / health
/// observatories attach through the same `Option<Box<...>>` points —
/// one branch when detached.
///
/// # Example
///
/// ```
/// use tcpfo_core::{ChainBridge, FailoverConfig};
/// use tcpfo_wire::ipv4::Ipv4Addr;
///
/// let vip = Ipv4Addr::new(10, 0, 0, 2);
/// let own = Ipv4Addr::new(10, 0, 0, 3);
/// let tail = Ipv4Addr::new(10, 0, 0, 4);
/// // A middle link: merges its own output with the tail's diverted
/// // stream and forwards the result to the head (the VIP owner).
/// let mut link = ChainBridge::new(vip, own, Some(vip), tail, FailoverConfig::from_ports([80]));
/// assert!(!link.is_head());
/// // When the head dies, this link promotes and emits to the client.
/// link.promote_to_head();
/// assert!(link.is_head());
/// ```
pub struct ChainBridge {
    /// The service address the client connects to.
    vip: Ipv4Addr,
    /// This replica's own address.
    own: Ipv4Addr,
    /// Next replica toward the head; `None` on the head itself.
    upstream: Option<Ipv4Addr>,
    /// Current downstream replica (our stream source).
    downstream: Ipv4Addr,
    /// The §3 merge machinery, configured to receive diverted segments
    /// at `own` and to stamp client-facing output with the VIP.
    inner: PrimaryBridge,
    /// Chain-specific counters.
    pub stats: ChainStats,
    /// Recycled staging area for the inner bridge's output, so the
    /// per-segment path never constructs a fresh `FilterOutput`.
    scratch: FilterOutput,
    /// Recycled buffer for diverted segments (the option insertion
    /// grows the segment by 8 bytes, which would force the shared
    /// `BytesMut` behind a [`SegmentPatcher`] to reallocate).
    divert_buf: BytesMut,
    /// Telemetry hub, for the first-client-byte timeline mark after a
    /// promotion.
    hub: Option<Telemetry>,
    /// Set on promotion: the next client-bound payload release marks
    /// [`FailoverPhase::FirstClientByte`].
    watch_first_byte: bool,
}

impl ChainBridge {
    /// Creates the bridge for one link.
    ///
    /// `upstream == None` makes this the head. `downstream` is the
    /// neighbour whose diverted stream we merge against.
    pub fn new(
        vip: Ipv4Addr,
        own: Ipv4Addr,
        upstream: Option<Ipv4Addr>,
        downstream: Ipv4Addr,
        config: FailoverConfig,
    ) -> Self {
        let mut inner = PrimaryBridge::new(vip, downstream, config);
        inner.set_divert_dst(own);
        ChainBridge {
            vip,
            own,
            upstream,
            downstream,
            inner,
            stats: ChainStats::default(),
            scratch: FilterOutput::empty(),
            divert_buf: BytesMut::with_capacity(2048),
            hub: None,
            watch_first_byte: false,
        }
    }

    /// The merge machinery (stats, mode).
    pub fn inner(&self) -> &PrimaryBridge {
        &self.inner
    }

    /// Mutable access to the merge machinery.
    pub fn inner_mut(&mut self) -> &mut PrimaryBridge {
        &mut self.inner
    }

    // -----------------------------------------------------------------
    // Observatory attach points (all delegate to the merge bridge, so a
    // chain link is inspectable exactly like a pair bridge)
    // -----------------------------------------------------------------

    /// Attaches (or detaches) the online invariant auditor on the
    /// inner merge bridge.
    pub fn set_audit(&mut self, audit: Option<Box<InvariantAuditor>>) {
        self.inner.set_audit(audit);
    }

    /// The attached auditor, if any.
    pub fn audit(&self) -> Option<&InvariantAuditor> {
        self.inner.audit()
    }

    /// Mutable access to the attached auditor.
    pub fn audit_mut(&mut self) -> Option<&mut InvariantAuditor> {
        self.inner.audit_mut()
    }

    /// Attaches (or detaches) the latency observatory.
    pub fn set_latency(&mut self, latency: Option<Box<LatencyObservatory>>) {
        self.inner.set_latency(latency);
    }

    /// The attached latency observatory, if any.
    pub fn latency(&self) -> Option<&LatencyObservatory> {
        self.inner.latency()
    }

    /// Mutable access to the attached latency observatory.
    pub fn latency_mut(&mut self) -> Option<&mut LatencyObservatory> {
        self.inner.latency_mut()
    }

    /// Attaches (or detaches) the health observatory (replication-lag
    /// ledger).
    pub fn set_health(&mut self, health: Option<Box<HealthObservatory>>) {
        self.inner.set_health(health);
    }

    /// The attached health observatory, if any.
    pub fn health(&self) -> Option<&HealthObservatory> {
        self.inner.health()
    }

    /// Mutable access to the attached health observatory.
    pub fn health_mut(&mut self) -> Option<&mut HealthObservatory> {
        self.inner.health_mut()
    }

    /// Attaches (or detaches) the hot-path span sampler.
    pub fn set_trace(&mut self, trace: Option<Box<tcpfo_telemetry::SpanSampler>>) {
        self.inner.set_trace(trace);
    }

    /// Span context of the most recent sampled hot-path batch.
    pub fn trace_context(&self) -> Option<tcpfo_telemetry::SpanContext> {
        self.inner.trace_context()
    }

    /// Connects the telemetry hub: the inner bridge publishes its
    /// gauges, and this link stamps the first-client-byte mark after a
    /// promotion.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.hub = Some(telemetry.clone());
        self.inner.set_telemetry(telemetry);
    }

    /// Publishes bridge state to the attached hub (host-tick path).
    pub fn sync_telemetry(&mut self, now_nanos: u64) {
        self.inner.sync_telemetry(now_nanos);
    }

    // -----------------------------------------------------------------
    // Flow-table surface (PR4), delegated
    // -----------------------------------------------------------------

    /// Replaces the flow-table configuration, migrating live flows.
    pub fn set_flow_config(&mut self, config: FlowTableConfig) {
        self.inner.set_flow_config(config);
    }

    /// Live (queue-bearing) connections.
    pub fn conn_count(&self) -> usize {
        self.inner.conn_count()
    }

    /// All tracked flows (live + tombstones).
    pub fn flow_count(&self) -> usize {
        self.inner.flow_count()
    }

    /// Aggregate flow-table statistics.
    pub fn flow_stats(&self) -> ShardStats {
        self.inner.flow_stats()
    }

    /// Per-shard flow-table statistics.
    pub fn flow_shard_stats(&self) -> Vec<ShardStats> {
        self.inner.flow_shard_stats()
    }

    /// Total flow-table capacity.
    pub fn flow_capacity(&self) -> usize {
        self.inner.flow_capacity()
    }

    /// Number of flow-table shards.
    pub fn flow_shard_count(&self) -> usize {
        self.inner.flow_shard_count()
    }

    /// Lifecycle state of one flow, if tracked.
    pub fn flow_state(&self, key: &ConnKey) -> Option<FlowState> {
        self.inner.flow_state(key)
    }

    /// Snapshot of per-connection merge state (dashboards, tests).
    pub fn connection_rows(&self) -> Vec<ConnRow> {
        self.inner.connection_rows()
    }

    // -----------------------------------------------------------------
    // Topology
    // -----------------------------------------------------------------

    /// Whether this link is currently the head.
    pub fn is_head(&self) -> bool {
        self.upstream.is_none()
    }

    /// Head promotion: stop diverting; merged output now goes straight
    /// to the client (the controller performs the IP takeover). The
    /// next client-bound payload release stamps the §5 timeline's
    /// first-client-byte phase.
    pub fn promote_to_head(&mut self) {
        self.upstream = None;
        self.watch_first_byte = true;
    }

    /// Re-targets the upstream neighbour (healing after a middle dies).
    pub fn set_upstream(&mut self, upstream: Ipv4Addr) {
        self.upstream = Some(upstream);
    }

    /// Re-targets the downstream stream source (healing after a middle
    /// below us dies; `Δseq` and queues remain valid).
    pub fn set_downstream(&mut self, downstream: Ipv4Addr) {
        self.downstream = downstream;
        self.inner.set_downstream(downstream);
    }

    /// §6 at this link: the downstream (and everything below it) is
    /// gone. Flush and degrade to Δ-adjusted pass-through; the returned
    /// output must be dispatched.
    pub fn downstream_failed(&mut self, now: SimTime) -> FilterOutput {
        let now_nanos = now.as_nanos();
        let mut inner_out = self.inner.secondary_failed(now_nanos);
        let mut out = FilterOutput::empty();
        self.adapt_into(&mut inner_out, now_nanos, &mut out);
        out
    }

    /// Adopts a reprovisioning flow handoff into the merge bridge: the
    /// flow enters `Replicated` at the handoff's Δseq and cursor, its
    /// primary output queue empty — subsequent local output buffers
    /// until the new tail's diverted stream matches it (catch-up).
    pub fn adopt_flow(&mut self, handoff: &FlowHandoff, now_nanos: u64) {
        self.inner.adopt_flow(handoff, now_nanos);
        self.stats.adopted_flows += 1;
    }

    /// Batch entry point (open-loop load): the inner bridge fans the
    /// batch across its shards, then each output is routed through the
    /// chain adaptation exactly like the per-segment path.
    pub fn process_batch(
        &mut self,
        batch: Vec<(BatchDir, AddressedSegment)>,
        now_nanos: u64,
        exec: &ShardExecutor,
    ) -> Vec<FilterOutput> {
        let outs = self.inner.process_batch(batch, now_nanos, exec);
        outs.into_iter()
            .map(|mut o| {
                let mut adapted = FilterOutput::empty();
                self.adapt_into(&mut o, now_nanos, &mut adapted);
                adapted
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // The chain adaptation (hot path)
    // -----------------------------------------------------------------

    /// Routes the inner bridge's output through the chain: client-
    /// facing emissions are diverted upstream (unless we are the
    /// head); local deliveries are rewritten to our own address.
    /// Drains `from` in place — no allocation on the steady-state
    /// path.
    fn adapt_into(&mut self, from: &mut FilterOutput, now_nanos: u64, out: &mut FilterOutput) {
        for seg in from.to_wire.drain(..) {
            let divert = match self.upstream {
                Some(up) if seg.dst != self.downstream => Some(up),
                _ => None,
            };
            match divert {
                Some(up) => self.divert_up(seg, up, out),
                None => {
                    if self.watch_first_byte
                        && seg.dst != self.downstream
                        && payload_len(&seg.bytes) > 0
                    {
                        self.watch_first_byte = false;
                        if let Some(hub) = &self.hub {
                            hub.timeline.mark(FailoverPhase::FirstClientByte, now_nanos);
                        }
                    }
                    out.to_wire.push(seg);
                }
            }
        }
        for seg in from.to_tcp.drain(..) {
            if seg.dst == self.vip && self.own != self.vip {
                let mut p = SegmentPatcher::new(seg.bytes, seg.src, seg.dst);
                p.set_pseudo_dst(self.own);
                let (bytes, src, dst) = p.finish();
                self.stats.ingress_rewrites += 1;
                out.to_tcp.push(AddressedSegment::new(src, dst, bytes));
            } else {
                out.to_tcp.push(seg);
            }
        }
    }

    /// Diverts one merged segment to the upstream neighbour: append
    /// the orig-dest option, patch data offset / pseudo length /
    /// addresses with RFC 1624 deltas, and assemble into the recycled
    /// divert buffer. A [`SegmentPatcher`] would reallocate here — the
    /// option grows the segment past the exact-capacity buffer the
    /// merge bridge emitted — so the splice is done by hand.
    fn divert_up(&mut self, seg: AddressedSegment, up: Ipv4Addr, out: &mut FilterOutput) {
        let bytes: &[u8] = &seg.bytes;
        let len = bytes.len();
        if len < TCP_HEADER_LEN {
            out.to_wire.push(seg);
            return;
        }
        let header_len = usize::from(bytes[12] >> 4) * 4;
        if header_len < TCP_HEADER_LEN || header_len > len || header_len + 8 > 60 {
            self.stats.divert_fallbacks += 1;
            out.to_wire.push(seg);
            return;
        }

        // The 8-byte orig-dest option: kind, len, client IP, client port.
        let d = seg.dst.octets();
        let opt = [
            OPT_KIND_ORIG_DEST,
            8,
            d[0],
            d[1],
            d[2],
            d[3],
            bytes[2], // dst port, already big-endian on the wire
            bytes[3],
        ];

        let mut delta = ChecksumDelta::new();
        // New words: the option itself (inserted at header_len, an even
        // offset, so parity of everything after it is preserved).
        delta.append_bytes(&opt);
        // Data offset grows by two words.
        let old_word = u16::from_be_bytes([bytes[12], bytes[13]]);
        let new_word = ((u16::from(bytes[12] >> 4) + 2) << 12) | (old_word & 0x0fff);
        delta.replace_u16(old_word, new_word);
        // Pseudo-header TCP length grows by the option.
        delta.replace_u16(len as u16, (len + 8) as u16);
        // Pseudo-header addresses: destination becomes the upstream
        // replica; a VIP-stamped source is rewritten to our own address
        // (the head re-stamps the VIP on final release).
        let src = if seg.src == self.vip {
            delta.replace_u32(u32::from(self.vip), u32::from(self.own));
            self.own
        } else {
            seg.src
        };
        delta.replace_u32(u32::from(seg.dst), u32::from(up));
        let new_ck = delta.apply(u16::from_be_bytes([bytes[16], bytes[17]]));

        let buf = &mut self.divert_buf;
        buf.reserve(len + 8);
        buf.extend_from_slice(&bytes[..12]);
        buf.extend_from_slice(&new_word.to_be_bytes());
        buf.extend_from_slice(&bytes[14..16]);
        buf.extend_from_slice(&new_ck.to_be_bytes());
        buf.extend_from_slice(&bytes[18..header_len]);
        buf.extend_from_slice(&opt);
        buf.extend_from_slice(&bytes[header_len..]);
        let diverted = buf.split().freeze();

        self.stats.diverted_upstream += 1;
        out.to_wire.push(AddressedSegment::new(src, up, diverted));
    }
}

/// TCP payload length of raw segment bytes (0 when malformed).
fn payload_len(bytes: &[u8]) -> usize {
    if bytes.len() < TCP_HEADER_LEN {
        return 0;
    }
    let header_len = usize::from(bytes[12] >> 4) * 4;
    bytes.len().saturating_sub(header_len.max(TCP_HEADER_LEN))
}

impl SegmentFilter for ChainBridge {
    fn on_outbound_into(&mut self, seg: AddressedSegment, now_nanos: u64, out: &mut FilterOutput) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.inner.on_outbound_into(seg, now_nanos, &mut scratch);
        self.adapt_into(&mut scratch, now_nanos, out);
        self.scratch = scratch; // keep the capacity for the next call
    }

    fn on_inbound_into(&mut self, seg: AddressedSegment, now_nanos: u64, out: &mut FilterOutput) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.inner.on_inbound_into(seg, now_nanos, &mut scratch);
        self.adapt_into(&mut scratch, now_nanos, out);
        self.scratch = scratch;
    }

    fn on_tick(&mut self, now_nanos: u64) {
        self.inner.on_tick(now_nanos);
    }

    fn designate(&mut self, rule: FailoverRule) {
        self.inner.designate(rule);
    }

    fn latency_stages(&self) -> Option<&StageLatency> {
        self.inner.latency_stages()
    }

    fn trace_context(&self) -> Option<tcpfo_telemetry::SpanContext> {
        self.inner.trace_context()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for ChainBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainBridge")
            .field("vip", &self.vip)
            .field("own", &self.own)
            .field("upstream", &self.upstream)
            .field("downstream", &self.downstream)
            .finish()
    }
}

// ---------------------------------------------------------------------
// The control plane
// ---------------------------------------------------------------------

/// Where the promotion state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeoverState {
    /// Following a live head.
    Following,
    /// This replica is next in line but its own health score is below
    /// the promotion threshold; the takeover is on hold (retried every
    /// tick, forced after the grace period).
    Vetoed,
    /// This replica promoted itself to head.
    Promoted,
}

/// Per-peer heartbeat tracking: the PR8 monitor plus the v1 protocol
/// state (seq expectations for loss, last seq for the RTT echo).
struct PeerTracker {
    monitor: Box<HealthMonitor>,
    /// Next seq expected from this peer; gaps feed the loss signal.
    expected_seq: Option<u64>,
    /// Latest seq received and when, echoed back on our next send.
    echo: Option<(u64, SimTime)>,
}

impl PeerTracker {
    fn new(cfg: HealthConfig) -> Self {
        PeerTracker {
            monitor: Box::new(HealthMonitor::new(cfg)),
            expected_seq: None,
            echo: None,
        }
    }
}

/// Registry handles for one chain controller, under `core.chain`.
struct ChainInstruments {
    hub: Telemetry,
    scope: &'static str,
    heartbeats_sent: Counter,
    heartbeats_received: Counter,
    promotions: Counter,
    vetoes: Counter,
}

/// Multiples of the detector timeout a vetoed promotion waits before
/// it is forced: a headless chain serves nobody, so an unhealthy
/// successor eventually takes the VIP anyway (journaled as forced).
const FORCED_PROMOTION_GRACE: u32 = 3;

/// Fault detection and healing for one replica of a daisy chain.
///
/// Every replica heartbeats every other with the v1 payload (seq + RTT
/// echo); each peer is scored by a [`HealthMonitor`] and declared dead
/// when silence exceeds the detector timeout — by which point its
/// composite score has bottomed out (the liveness axis scales the
/// total, and `miss_limit = timeout / interval`). Like the paper's
/// two-node system, one failure is handled at a time; concurrent
/// failures heal sequentially as they are detected.
pub struct ChainController {
    /// Replica addresses, head first. `chain[0]` owns the VIP at start.
    chain: Vec<Ipv4Addr>,
    my_index: usize,
    config: DetectorConfig,
    health_cfg: HealthConfig,
    /// Composite self-score below which promotion is vetoed.
    promote_threshold: u64,
    alive: Vec<bool>,
    last_heard: Vec<Option<SimTime>>,
    /// Per-peer watermark of already-traced heartbeat misses, so a
    /// silent peer yields one `hb.miss` instant per missed beat.
    traced_misses: Vec<u32>,
    trackers: Vec<PeerTracker>,
    next_send: SimTime,
    /// Global heartbeat sequence (one per send round, shared across
    /// peers; the ring maps an echoed seq back to its send time).
    send_seq: u64,
    hb_ring: [(u64, SimTime); HB_RING],
    /// This replica's own health (RTT samples from echoes, backlog
    /// from the local bridge) — the abort-if-standby-unhealthy input.
    self_monitor: Box<HealthMonitor>,
    state: TakeoverState,
    /// When the first veto of the pending promotion happened.
    vetoed_since: Option<SimTime>,
    /// Re-run reconfigure on the next tick (vetoed promotion retry).
    pending_reconfigure: bool,
    telemetry: Option<ChainInstruments>,
    /// When this replica promoted itself to head, if it did.
    pub promoted_at: Option<SimTime>,
    /// Heartbeats sent.
    pub heartbeats_sent: u64,
    /// Heartbeats received.
    pub heartbeats_received: u64,
    /// Times a promotion was vetoed on self-health.
    pub promotions_vetoed: u64,
}

impl ChainController {
    /// Creates the controller for `chain[my_index]`.
    ///
    /// # Panics
    ///
    /// Panics if `my_index` is out of range or the chain has fewer than
    /// two replicas.
    pub fn new(chain: Vec<Ipv4Addr>, my_index: usize, config: DetectorConfig) -> Self {
        assert!(chain.len() >= 2, "a chain needs at least two replicas");
        assert!(my_index < chain.len());
        let n = chain.len();
        let health_cfg = crate::testbed::health_config(&config);
        ChainController {
            chain,
            my_index,
            config,
            health_cfg,
            promote_threshold: health_cfg.crit_enter,
            alive: vec![true; n],
            last_heard: vec![None; n],
            traced_misses: vec![0; n],
            trackers: (0..n).map(|_| PeerTracker::new(health_cfg)).collect(),
            next_send: SimTime::ZERO,
            send_seq: 0,
            hb_ring: [(u64::MAX, SimTime::ZERO); HB_RING],
            self_monitor: Box::new(HealthMonitor::new(health_cfg)),
            state: TakeoverState::Following,
            vetoed_since: None,
            pending_reconfigure: false,
            telemetry: None,
            promoted_at: None,
            heartbeats_sent: 0,
            heartbeats_received: 0,
            promotions_vetoed: 0,
        }
    }

    /// The VIP this chain serves.
    pub fn vip(&self) -> Ipv4Addr {
        self.chain[0]
    }

    /// Current promotion state.
    pub fn takeover_state(&self) -> TakeoverState {
        self.state
    }

    /// This replica's own composite health score (the promotion gate's
    /// input).
    pub fn self_score(&self) -> HealthScore {
        self.self_monitor.score()
    }

    /// The health score of peer `i`, if tracked.
    pub fn peer_score(&self, i: usize) -> Option<HealthScore> {
        (i < self.trackers.len() && i != self.my_index).then(|| self.trackers[i].monitor.score())
    }

    /// Whether peer `i` is currently considered alive.
    pub fn peer_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(false)
    }

    /// Number of replicas this controller knows about.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Overrides the promotion veto threshold (composite score below
    /// which this replica refuses the VIP). Default: the health
    /// config's `crit_enter` band.
    pub fn set_promote_threshold(&mut self, threshold: u64) {
        self.promote_threshold = threshold;
    }

    /// Registers a freshly reprovisioned replica appended to the
    /// chain's tail end: it is tracked, heartbeated and scored like
    /// any founding member.
    pub fn append_replica(&mut self, addr: Ipv4Addr) {
        self.chain.push(addr);
        self.alive.push(true);
        self.last_heard.push(None);
        self.traced_misses.push(0);
        self.trackers.push(PeerTracker::new(self.health_cfg));
    }

    /// Pre-marks a peer as dead (a reprovisioned replica joining an
    /// already-degraded chain must not wait a full timeout to learn
    /// what the survivors already know).
    pub fn set_peer_dead(&mut self, addr: Ipv4Addr) {
        if let Some(i) = self.chain.iter().position(|&a| a == addr) {
            self.alive[i] = false;
        }
    }

    /// Connects the controller to a telemetry hub: heartbeat and
    /// promotion counters under `core.chain`, journal entries for
    /// every liveness/promotion event, and §5 timeline marks.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let scope = telemetry.registry.scope("core.chain");
        self.telemetry = Some(ChainInstruments {
            hub: telemetry.clone(),
            scope: "core.chain",
            heartbeats_sent: scope.counter("heartbeats_sent"),
            heartbeats_received: scope.counter("heartbeats_received"),
            promotions: scope.counter("promotions"),
            vetoes: scope.counter("promotions_vetoed"),
        });
    }

    fn journal(&self, now: SimTime, kind: &str, fields: &[(&str, String)]) {
        if let Some(t) = &self.telemetry {
            t.hub.journal.record(now.as_nanos(), t.scope, kind, fields);
        }
    }

    fn mark(&self, phase: FailoverPhase, now: SimTime) {
        if let Some(t) = &self.telemetry {
            t.hub.timeline.mark(phase, now.as_nanos());
        }
    }

    /// Point event on the `core.chain` control-plane span lane. One
    /// relaxed atomic load when the tracer is detached.
    fn trace_instant(
        &self,
        name: &'static str,
        now: SimTime,
        args: [Option<(&'static str, u64)>; 2],
    ) {
        if let Some(t) = &self.telemetry {
            t.hub
                .trace
                .instant_args(SpanTrack::Control, t.scope, name, now.as_nanos(), args);
        }
    }

    fn nearest_alive_up(&self) -> Option<usize> {
        (0..self.my_index).rev().find(|&i| self.alive[i])
    }

    fn nearest_alive_down(&self) -> Option<usize> {
        (self.my_index + 1..self.chain.len()).find(|&i| self.alive[i])
    }

    /// The abort-if-standby-unhealthy gate. `Some(forced)` allows the
    /// promotion (`forced` when the grace expired with the score still
    /// low); `None` vetoes it for now.
    fn promotion_gate(&mut self, now: SimTime) -> Option<bool> {
        let score = self.self_monitor.score().total;
        if score >= self.promote_threshold {
            if self.vetoed_since.take().is_some() {
                self.journal(
                    now,
                    "chain.promotion_veto_cleared",
                    &[
                        ("score", score.to_string()),
                        ("threshold", self.promote_threshold.to_string()),
                    ],
                );
                self.trace_instant(
                    "chain.veto_cleared",
                    now,
                    [
                        Some(("score", score)),
                        Some(("threshold", self.promote_threshold)),
                    ],
                );
            }
            return Some(false);
        }
        let new_episode = self.vetoed_since.is_none();
        let since = *self.vetoed_since.get_or_insert(now);
        let grace = tcpfo_net::time::SimDuration::from_nanos(
            self.config.timeout.as_nanos() * u64::from(FORCED_PROMOTION_GRACE),
        );
        if now.duration_since(since) >= grace {
            self.journal(
                now,
                "chain.promotion_forced",
                &[
                    ("score", score.to_string()),
                    ("threshold", self.promote_threshold.to_string()),
                ],
            );
            self.trace_instant(
                "chain.promotion_forced",
                now,
                [Some(("score", score)), None],
            );
            return Some(true);
        }
        if self.state != TakeoverState::Vetoed {
            self.state = TakeoverState::Vetoed;
        }
        // Count veto *episodes*, not retry ticks: the vetoed promotion
        // is re-evaluated every tick until recovery or forced grace,
        // and per-tick counting would flood the journal.
        if new_episode {
            self.promotions_vetoed += 1;
            if let Some(t) = &self.telemetry {
                t.vetoes.inc();
            }
            self.journal(
                now,
                "chain.promotion_vetoed",
                &[
                    ("score", score.to_string()),
                    ("threshold", self.promote_threshold.to_string()),
                ],
            );
            self.trace_instant(
                "chain.promotion_vetoed",
                now,
                [
                    Some(("score", score)),
                    Some(("threshold", self.promote_threshold)),
                ],
            );
        }
        None
    }

    /// Applies the current liveness view to the bridge and the host.
    fn reconfigure(&mut self, services: &mut HostServices<'_, '_>) {
        let vip = self.vip();
        let up = self.nearest_alive_up().map(|i| self.chain[i]);
        let down = self.nearest_alive_down().map(|i| self.chain[i]);
        let now = services.now;
        let now_nanos = now.as_nanos();

        // Promotion pre-check: would the topology change make us head?
        // Only the two bridge types that can actually take the VIP may
        // answer yes — anything else would journal a `chain.promote`
        // decision that no commit ever follows.
        let wants_promotion = up.is_none()
            && self.promoted_at.is_none()
            && match services.filter.as_any_mut().downcast_mut::<ChainBridge>() {
                Some(cb) => !cb.is_head(),
                // tail: §5 takeover of the last survivor
                None => services
                    .filter
                    .as_any_mut()
                    .downcast_mut::<SecondaryBridge>()
                    .is_some(),
            };
        let mut promo_span = None;
        let promote = if wants_promotion {
            match self.promotion_gate(now) {
                Some(forced) => {
                    // Audit-log-before-act: the decision reaches the
                    // journal before any topology mutation below.
                    self.journal(
                        now,
                        "chain.promote",
                        &[
                            ("vip", vip.to_string()),
                            ("score", self.self_monitor.score().total.to_string()),
                            ("forced", forced.to_string()),
                        ],
                    );
                    // The promotion span brackets decision → VIP commit;
                    // the takeover-step instants below nest under it.
                    promo_span = self.telemetry.as_ref().and_then(|t| {
                        t.hub.trace.begin(
                            SpanTrack::Control,
                            t.scope,
                            "chain.promotion",
                            now.as_nanos(),
                        )
                    });
                    self.trace_instant(
                        "chain.promote.decision",
                        now,
                        [
                            Some(("score", self.self_monitor.score().total)),
                            Some(("forced", u64::from(forced))),
                        ],
                    );
                    true
                }
                None => {
                    // Vetoed: retry every tick until recovery or grace.
                    self.pending_reconfigure = true;
                    false
                }
            }
        } else {
            false
        };

        // Phase 1: mutate the bridge, collecting host-side follow-ups.
        let mut flush: Option<FilterOutput> = None;
        let mut take_vip = false;
        let mut rebind_own = false;
        if let Some(chain_bridge) = services.filter.as_any_mut().downcast_mut::<ChainBridge>() {
            match down {
                Some(d) if d != chain_bridge.downstream => chain_bridge.set_downstream(d),
                None if chain_bridge.inner.mode() == PrimaryMode::Normal => {
                    flush = Some(chain_bridge.downstream_failed(now));
                }
                _ => {}
            }
            match up {
                Some(u) if chain_bridge.upstream != Some(u) && !chain_bridge.is_head() => {
                    chain_bridge.set_upstream(u);
                }
                None if promote => {
                    // A middle link has no egress to hold and no
                    // ingress translation to disable — both phases are
                    // degenerate and stamped at the decision.
                    self.mark(FailoverPhase::EgressHold, now);
                    self.mark(FailoverPhase::TranslationOff, now);
                    if let Some(aud) = chain_bridge.audit_mut() {
                        aud.note_promotion_decision(now_nanos);
                    }
                    chain_bridge.promote_to_head();
                    take_vip = true;
                }
                _ => {}
            }
        } else if let Some(tail) = services
            .filter
            .as_any_mut()
            .downcast_mut::<SecondaryBridge>()
        {
            match up {
                Some(u) if tail.upstream() != u => {
                    tail.set_upstream(u);
                }
                None if promote => {
                    // Last replica standing: the classic §5 takeover.
                    if let Some(aud) = tail.audit_mut() {
                        aud.note_promotion_decision(now_nanos);
                    }
                    self.mark(FailoverPhase::EgressHold, now);
                    tail.prepare_takeover();
                    tail.complete_takeover();
                    self.mark(FailoverPhase::TranslationOff, now);
                    take_vip = true;
                    rebind_own = true;
                }
                _ => {}
            }
        }

        // Phase 2: host-side effects, with the filter borrow released.
        if let Some(out) = flush {
            services.dispatch(out);
        }
        if take_vip {
            if rebind_own {
                services.net.promiscuous = false;
                let own = self.chain[self.my_index];
                services.stack.rebind_local_ip(own, vip);
            }
            if !services.net.local_ips.contains(&vip) {
                services.net.local_ips.push(vip);
            }
            services.net.gratuitous_arp(vip, services.ctx);
            self.mark(FailoverPhase::ArpTakeover, now);
            self.trace_instant(
                "chain.vip_takeover",
                now,
                [Some(("vip", u32::from_be_bytes(vip.octets()) as u64)), None],
            );
            self.promoted_at = Some(now);
            self.state = TakeoverState::Promoted;
            self.vetoed_since = None;
            if let Some(t) = &self.telemetry {
                t.promotions.inc();
            }
            // Commit record: checked against the decision stamp by the
            // auditor's promotion-order rule.
            self.journal(now, "chain.promoted", &[("vip", vip.to_string())]);
            if let Some(cb) = services.filter.as_any_mut().downcast_mut::<ChainBridge>() {
                if let Some(aud) = cb.audit_mut() {
                    aud.note_promotion_committed(now_nanos);
                }
            } else if let Some(tail) = services
                .filter
                .as_any_mut()
                .downcast_mut::<SecondaryBridge>()
            {
                if let Some(aud) = tail.audit_mut() {
                    aud.note_promotion_committed(now_nanos);
                }
            }
            self.trace_instant("chain.promoted", now, [None, None]);
        }
        if let (Some(t), Some(span)) = (&self.telemetry, promo_span) {
            t.hub.trace.end(&span, now.as_nanos());
        }
    }

    /// Feeds the self-monitor from the local bridge: replication
    /// backlog (the lag ledger, when the health observatory is
    /// attached) and flow-table occupancy.
    fn observe_self(&mut self, services: &mut HostServices<'_, '_>) {
        self.self_monitor.replica.set_misses(0);
        if let Some(cb) = services.filter.as_any_mut().downcast_mut::<ChainBridge>() {
            if let Some(obs) = cb.health() {
                let cap = cb.flow_capacity().max(1) as u64;
                let occupancy_ppm = cb.flow_stats().occupancy * 1_000_000 / cap;
                self.self_monitor.replica.observe_backlog(
                    obs.lag.unmatched_bytes(),
                    obs.lag.unmatched_segments(),
                    occupancy_ppm,
                );
            }
        } else if let Some(tail) = services
            .filter
            .as_any_mut()
            .downcast_mut::<SecondaryBridge>()
        {
            if let Some(obs) = tail.health() {
                self.self_monitor.replica.observe_backlog(
                    obs.lag.unmatched_bytes(),
                    obs.lag.unmatched_segments(),
                    0,
                );
            }
        }
    }
}

impl HostController for ChainController {
    fn on_tick(&mut self, services: &mut HostServices<'_, '_>) {
        let now = services.now;
        let now_ns = now.as_nanos();
        if now >= self.next_send {
            let seq = self.send_seq;
            self.send_seq += 1;
            self.hb_ring[(seq % HB_RING as u64) as usize] = (seq, now);
            for i in 0..self.chain.len() {
                if i == self.my_index || !self.alive[i] {
                    continue;
                }
                let mut payload = Vec::with_capacity(HEARTBEAT_V1_LEN);
                payload.extend_from_slice(b"HB");
                payload.extend_from_slice(&seq.to_le_bytes());
                let (echo_seq, hold_ns) = match self.trackers[i].echo {
                    Some((pseq, rx_at)) => (pseq, now.duration_since(rx_at).as_nanos()),
                    None => (u64::MAX, 0),
                };
                payload.extend_from_slice(&echo_seq.to_le_bytes());
                payload.extend_from_slice(&hold_ns.to_le_bytes());
                services.send_raw(PROTO_HEARTBEAT, self.chain[i], Bytes::from(payload));
                self.heartbeats_sent += 1;
            }
            // One instant per fan-out round, not per peer: the trace
            // shows the heartbeat cadence without N-way noise.
            self.trace_instant("hb.send", now, [Some(("seq", seq)), None]);
            self.next_send = now + self.config.interval;
        }
        if let Some(t) = &self.telemetry {
            t.heartbeats_sent.set_at_least(self.heartbeats_sent);
            t.heartbeats_received.set_at_least(self.heartbeats_received);
        }

        // Score every live peer: misses from silence, then one monitor
        // tick; silence past the timeout declares death (the §2
        // boundary the pair detector uses, at which point the score's
        // liveness axis has already bottomed out).
        let interval = self.config.interval.as_nanos().max(1);
        let mut changed = false;
        for i in 0..self.chain.len() {
            if i == self.my_index || !self.alive[i] {
                continue;
            }
            let last = *self.last_heard[i].get_or_insert(now);
            let silence = now.duration_since(last).as_nanos();
            let misses = (silence / interval).min(u32::MAX as u64) as u32;
            if misses > self.traced_misses[i] {
                self.trace_instant(
                    "hb.miss",
                    now,
                    [
                        Some(("peer", i as u64)),
                        Some(("misses", u64::from(misses))),
                    ],
                );
            }
            self.traced_misses[i] = misses;
            let tr = &mut self.trackers[i];
            tr.monitor.replica.set_misses(misses);
            let transition = tr.monitor.tick(now_ns);
            let score = tr.monitor.score().total;
            if let Some((from, to)) = transition {
                self.journal(
                    now,
                    "chain.health_alert",
                    &[
                        ("peer", self.chain[i].to_string()),
                        ("from", from.name().to_string()),
                        ("to", to.name().to_string()),
                        ("score", score.to_string()),
                    ],
                );
                self.trace_instant(
                    match to {
                        tcpfo_telemetry::AlertState::Ok => "chain.health.ok",
                        tcpfo_telemetry::AlertState::Warn => "chain.health.warn",
                        tcpfo_telemetry::AlertState::Critical => "chain.health.critical",
                    },
                    now,
                    [Some(("peer", i as u64)), Some(("score", score))],
                );
            }
            if silence > self.config.timeout.as_nanos() {
                self.alive[i] = false;
                changed = true;
                self.mark(FailoverPhase::Detection, now);
                self.journal(
                    now,
                    "chain.peer_dead",
                    &[
                        ("peer", self.chain[i].to_string()),
                        ("score", score.to_string()),
                        ("misses", misses.to_string()),
                    ],
                );
                self.trace_instant(
                    "chain.peer_dead",
                    now,
                    [
                        Some(("peer", i as u64)),
                        Some(("misses", u64::from(misses))),
                    ],
                );
            }
        }

        // Our own score: the promotion gate's input.
        self.observe_self(services);
        self.self_monitor.tick(now_ns);

        if changed || std::mem::take(&mut self.pending_reconfigure) {
            self.reconfigure(services);
        }
    }

    fn on_raw(
        &mut self,
        proto: u8,
        src: Ipv4Addr,
        payload: &[u8],
        services: &mut HostServices<'_, '_>,
    ) {
        if proto != PROTO_HEARTBEAT {
            return;
        }
        let Some(i) = self.chain.iter().position(|&a| a == src) else {
            return;
        };
        let now = services.now;
        self.last_heard[i] = Some(now);
        self.traced_misses[i] = 0;
        if !self.alive[i] {
            // A beat from a peer we already declared dead: count it as
            // late, never trust it for liveness (its successor may own
            // its duties by now; recovery goes through reprovisioning).
            self.trackers[i].monitor.replica.on_late_heartbeat();
            return;
        }
        self.heartbeats_received += 1;
        // v1 payload: seq + RTT echo. Legacy (short) payloads are
        // liveness-only.
        if payload.len() >= HEARTBEAT_V1_LEN && &payload[..2] == b"HB" {
            let word = |at: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&payload[at..at + 8]);
                u64::from_le_bytes(b)
            };
            let seq = word(2);
            let echo_seq = word(10);
            let hold_ns = word(18);
            let tr = &mut self.trackers[i];
            match tr.expected_seq {
                Some(expected) if seq >= expected => {
                    let lost = seq - expected;
                    tr.monitor.replica.observe_loss(lost, lost + 1);
                    tr.expected_seq = Some(seq + 1);
                }
                Some(_) => {} // reordered duplicate, not new loss
                None => tr.expected_seq = Some(seq + 1),
            }
            tr.echo = Some((seq, now));
            if echo_seq != u64::MAX {
                let (ring_seq, sent_at) = self.hb_ring[(echo_seq % HB_RING as u64) as usize];
                if ring_seq == echo_seq {
                    let rtt = now
                        .duration_since(sent_at)
                        .as_nanos()
                        .saturating_sub(hold_ns);
                    self.trackers[i].monitor.replica.on_heartbeat_rtt(rtt);
                    // Round trips we observe are also evidence about
                    // our own links — the self-score's RTT axis.
                    self.self_monitor.replica.on_heartbeat_rtt(rtt);
                }
            }
        }
        self.trackers[i].monitor.replica.on_heartbeat_seen();
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for ChainController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainController")
            .field("chain", &self.chain)
            .field("my_index", &self.my_index)
            .field("alive", &self.alive)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tcpfo_wire::tcp::{verify_segment_checksum, TcpFlags, TcpSegment};

    const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2); // head's address
    const B1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3); // middle
    const B2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 4); // tail

    fn raw(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> AddressedSegment {
        AddressedSegment::new(src, dst, seg.encode(src, dst).to_vec())
    }

    /// Diverts `seg` the way a downstream node at `from` would, to `to`.
    fn divert(seg: TcpSegment, from: Ipv4Addr, to: Ipv4Addr) -> AddressedSegment {
        let bytes = seg.encode(from, A_C).to_vec();
        let mut p = SegmentPatcher::new(bytes, from, A_C);
        p.push_orig_dest_option(A_C, 5555);
        p.set_pseudo_dst(to);
        let (bytes, src, dst) = p.finish();
        AddressedSegment::new(src, dst, bytes)
    }

    fn middle() -> ChainBridge {
        ChainBridge::new(VIP, B1, Some(VIP), B2, FailoverConfig::from_ports([80]))
    }

    #[test]
    fn middle_diverts_merged_output_upstream() {
        let mut b = middle();
        // Client SYN (snooped at the middle).
        let syn = raw(
            A_C,
            VIP,
            TcpSegment::builder(5555, 80)
                .seq(100)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60000)
                .build(),
        );
        let out = b.on_inbound(syn, 0);
        assert_eq!(out.to_tcp.len(), 1);
        assert_eq!(out.to_tcp[0].dst, B1, "ingress rewritten to own address");
        // Own TCP's SYN+ACK: held.
        let own = raw(
            B1,
            A_C,
            TcpSegment::builder(80, 5555)
                .seq(7_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(50_000)
                .build(),
        );
        assert!(b.on_outbound(own, 0).to_wire.is_empty());
        // Tail's SYN+ACK arrives diverted to us: merge and divert up.
        let tail = divert(
            TcpSegment::builder(80, 5555)
                .seq(9_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1100)
                .window(40_000)
                .build(),
            B2,
            B1,
        );
        let out = b.on_inbound(tail, 0);
        assert_eq!(out.to_wire.len(), 1);
        let w = &out.to_wire[0];
        assert_eq!(w.dst, VIP, "merged SYN+ACK diverted to the head");
        assert_eq!(w.src, B1, "source rewritten from VIP to own");
        assert!(verify_segment_checksum(w.src, w.dst, &w.bytes));
        let seg = TcpSegment::decode(&w.bytes).unwrap();
        assert_eq!(seg.seq, 9_000, "tail's sequence space");
        assert_eq!(seg.mss(), Some(1100), "min MSS propagates up");
        assert_eq!(seg.orig_dest(), Some((A_C, 5555)), "orig-dest restored");
        assert_eq!(b.stats.diverted_upstream, 1);
        assert_eq!(b.stats.divert_fallbacks, 0);
    }

    #[test]
    fn promoted_middle_emits_directly_to_client() {
        let mut b = middle();
        // Establish (as above, terse).
        let syn = raw(
            A_C,
            VIP,
            TcpSegment::builder(5555, 80)
                .seq(100)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60000)
                .build(),
        );
        let _ = b.on_inbound(syn, 0);
        let own = raw(
            B1,
            A_C,
            TcpSegment::builder(80, 5555)
                .seq(7_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(50_000)
                .build(),
        );
        let _ = b.on_outbound(own, 0);
        let tail = divert(
            TcpSegment::builder(80, 5555)
                .seq(9_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(40_000)
                .build(),
            B2,
            B1,
        );
        let _ = b.on_inbound(tail, 0);
        assert!(!b.is_head());
        b.promote_to_head();
        assert!(b.is_head());
        // Matched data now goes straight to the client, stamped VIP.
        let own_data = raw(
            B1,
            A_C,
            TcpSegment::builder(80, 5555)
                .seq(7_001)
                .ack(101)
                .window(50_000)
                .payload(Bytes::from_static(b"xyz"))
                .build(),
        );
        let _ = b.on_outbound(own_data, 0);
        let tail_data = divert(
            TcpSegment::builder(80, 5555)
                .seq(9_001)
                .ack(101)
                .window(40_000)
                .payload(Bytes::from_static(b"xyz"))
                .build(),
            B2,
            B1,
        );
        let out = b.on_inbound(tail_data, 0);
        assert_eq!(out.to_wire.len(), 1);
        assert_eq!(out.to_wire[0].dst, A_C, "straight to the client");
        assert_eq!(out.to_wire[0].src, VIP, "stamped with the VIP");
        let seg = TcpSegment::decode(&out.to_wire[0].bytes).unwrap();
        assert!(
            seg.orig_dest().is_none(),
            "no internal option to the client"
        );
        assert_eq!(seg.seq, 9_001);
    }

    #[test]
    fn set_downstream_keeps_merging_after_heal() {
        let mut b = middle();
        let syn = raw(
            A_C,
            VIP,
            TcpSegment::builder(5555, 80)
                .seq(100)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60000)
                .build(),
        );
        let _ = b.on_inbound(syn, 0);
        let own = raw(
            B1,
            A_C,
            TcpSegment::builder(80, 5555)
                .seq(7_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(50_000)
                .build(),
        );
        let _ = b.on_outbound(own, 0);
        let tail = divert(
            TcpSegment::builder(80, 5555)
                .seq(9_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(40_000)
                .build(),
            B2,
            B1,
        );
        let _ = b.on_inbound(tail, 0);
        // The tail B2 dies and a deeper node B3 takes over as our
        // downstream — same sequence space, new source address.
        let b3 = Ipv4Addr::new(10, 0, 0, 5);
        b.set_downstream(b3);
        let own_data = raw(
            B1,
            A_C,
            TcpSegment::builder(80, 5555)
                .seq(7_001)
                .ack(101)
                .window(50_000)
                .payload(Bytes::from_static(b"hello"))
                .build(),
        );
        let _ = b.on_outbound(own_data, 0);
        let from_b3 = divert(
            TcpSegment::builder(80, 5555)
                .seq(9_001)
                .ack(101)
                .window(40_000)
                .payload(Bytes::from_static(b"hello"))
                .build(),
            b3,
            B1,
        );
        let out = b.on_inbound(from_b3, 0);
        assert_eq!(
            out.to_wire.len(),
            1,
            "merging continues with the new source"
        );
        assert_eq!(out.to_wire[0].dst, VIP);
    }

    #[test]
    fn head_configuration_is_transparent_wrapper() {
        // A ChainBridge with own == vip and no upstream behaves exactly
        // like the plain PrimaryBridge (used for the chain's head).
        let mut b = ChainBridge::new(VIP, VIP, None, B1, FailoverConfig::from_ports([80]));
        let syn = raw(
            A_C,
            VIP,
            TcpSegment::builder(5555, 80)
                .seq(100)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60000)
                .build(),
        );
        let out = b.on_inbound(syn, 0);
        assert_eq!(out.to_tcp.len(), 1);
        assert_eq!(out.to_tcp[0].dst, VIP, "no rewrite at the head");
        assert!(b.is_head());
        assert_eq!(b.stats.ingress_rewrites, 0);
    }

    #[test]
    fn manual_divert_matches_patcher() {
        // The zero-alloc divert splice must be byte-identical to the
        // SegmentPatcher reference path, header options included.
        for seg in [
            TcpSegment::builder(80, 5555)
                .seq(9_000)
                .ack(101)
                .flags(TcpFlags::SYN)
                .mss(1100)
                .window(40_000)
                .build(),
            TcpSegment::builder(80, 5555)
                .seq(9_001)
                .ack(2_222)
                .window(1)
                .payload(Bytes::from_static(b"payload bytes here"))
                .build(),
            TcpSegment::builder(80, 5555)
                .seq(u32::MAX - 1)
                .ack(0)
                .flags(TcpFlags::FIN)
                .window(0xffff)
                .build(),
        ] {
            // Reference: the patcher path the seed used.
            let bytes = seg.encode(VIP, A_C).to_vec();
            let mut p = SegmentPatcher::new(bytes, VIP, A_C);
            p.push_orig_dest_option(A_C, 5555);
            p.set_pseudo_src(B1);
            p.set_pseudo_dst(VIP);
            let (want_bytes, want_src, want_dst) = p.finish();

            // Manual path, via a bridge whose vip/own/upstream match.
            let mut b = middle();
            let mut from = FilterOutput::empty();
            from.to_wire
                .push(AddressedSegment::new(VIP, A_C, seg.encode(VIP, A_C)));
            let mut out = FilterOutput::empty();
            b.adapt_into(&mut from, 0, &mut out);
            assert_eq!(out.to_wire.len(), 1);
            let got = &out.to_wire[0];
            assert_eq!(got.src, want_src);
            assert_eq!(got.dst, want_dst);
            assert_eq!(&got.bytes[..], &want_bytes[..], "byte-identical splice");
            assert!(verify_segment_checksum(got.src, got.dst, &got.bytes));
        }
    }

    #[test]
    fn downstream_failed_takes_sim_time() {
        // Satellite fix: the §6 entry point speaks SimTime like the
        // rest of core, and flushes through the chain adaptation.
        let mut b = middle();
        let out = b.downstream_failed(SimTime::ZERO + tcpfo_net::time::SimDuration::from_millis(5));
        assert!(out.to_wire.is_empty());
        assert_eq!(b.inner().mode(), PrimaryMode::SecondaryFailed);
    }

    #[test]
    fn controller_scores_and_promotes() {
        let chain = vec![VIP, B1, B2];
        let mut c = ChainController::new(chain, 1, DetectorConfig::default());
        assert_eq!(c.takeover_state(), TakeoverState::Following);
        assert_eq!(c.vip(), VIP);
        assert!(c.peer_alive(0));
        // A fresh monitor presumes health: the gate allows promotion.
        assert!(c.self_score().total >= c.promote_threshold);
        assert_eq!(c.promotion_gate(SimTime::ZERO), Some(false));
        // Raising the threshold above any possible score vetoes...
        c.set_promote_threshold(101);
        let t0 = SimTime::ZERO;
        assert_eq!(c.promotion_gate(t0), None);
        assert_eq!(c.takeover_state(), TakeoverState::Vetoed);
        assert_eq!(c.promotions_vetoed, 1);
        // Retry ticks within the same veto episode don't re-count.
        let retry = t0 + tcpfo_net::time::SimDuration::from_millis(1);
        assert_eq!(c.promotion_gate(retry), None);
        assert_eq!(c.promotions_vetoed, 1, "one episode, not per tick");
        // ...until the forced-promotion grace elapses.
        let later = t0
            + tcpfo_net::time::SimDuration::from_nanos(
                DetectorConfig::default().timeout.as_nanos()
                    * u64::from(FORCED_PROMOTION_GRACE + 1),
            );
        assert_eq!(c.promotion_gate(later), Some(true), "forced past grace");
    }

    #[test]
    fn append_replica_and_set_peer_dead() {
        let b3 = Ipv4Addr::new(10, 0, 0, 5);
        let mut c = ChainController::new(vec![VIP, B1, B2], 2, DetectorConfig::default());
        assert_eq!(c.chain_len(), 3);
        c.append_replica(b3);
        assert_eq!(c.chain_len(), 4);
        assert!(c.peer_alive(3));
        assert!(c.peer_score(3).is_some());
        c.set_peer_dead(VIP);
        assert!(!c.peer_alive(0));
        // nearest_alive_up skips the dead head.
        assert_eq!(c.nearest_alive_up(), Some(1));
        assert_eq!(c.nearest_alive_down(), Some(3));
    }
}
