//! Testbed for daisy-chained replication: the Figure-1 topology with
//! `N ≥ 2` replicas on the shared segment.
//!
//! ```text
//!   client ── router ── hub ── head (VIP) ── B1 ── … ── tail
//!                        │        │ChainBridge│Chain│  │Secondary│
//!                        └── all replicas snoop promiscuously ──┘
//! ```

use crate::chain::{ChainBridge, ChainController};
use crate::designation::FailoverConfig;
use crate::detector::DetectorConfig;
use crate::secondary::SecondaryBridge;
use crate::testbed::{addrs, macs};
use tcpfo_net::hub::Hub;
use tcpfo_net::link::LinkParams;
use tcpfo_net::router::{Interface, Router};
use tcpfo_net::sim::{NodeId, Simulator};
use tcpfo_net::time::SimDuration;
use tcpfo_tcp::config::TcpConfig;
use tcpfo_tcp::host::{spawn_host, CpuModel, Host, HostConfig};
use tcpfo_wire::ipv4::Ipv4Addr;
use tcpfo_wire::mac::MacAddr;

/// Parameters for a chained testbed.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Number of replicas (head + backups), ≥ 2.
    pub replicas: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Failover port set (§7 method 2), identical on every replica.
    pub failover_ports: Vec<u16>,
    /// Fault-detector parameters.
    pub detector: DetectorConfig,
    /// Client↔router link.
    pub client_link: LinkParams,
    /// Host CPU model for the replicas.
    pub cpu: CpuModel,
    /// Base TCP configuration (per-replica ISN seeds derived from
    /// `seed`).
    pub tcp: TcpConfig,
    /// Host stack tick.
    pub tick: SimDuration,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            replicas: 3,
            seed: 42,
            failover_ports: vec![80],
            detector: DetectorConfig::default(),
            client_link: LinkParams::fast_ethernet(),
            cpu: CpuModel::server_2003(),
            tcp: TcpConfig::default(),
            tick: SimDuration::from_millis(1),
        }
    }
}

/// The assembled chain testbed.
pub struct ChainTestbed {
    /// The simulator.
    pub sim: Simulator,
    /// Client host.
    pub client: NodeId,
    /// Replica hosts, head first (`replicas[0]` owns the VIP).
    pub replicas: Vec<NodeId>,
    /// Replica addresses, head first.
    pub replica_addrs: Vec<Ipv4Addr>,
    /// Router node.
    pub router: NodeId,
    /// Hub node.
    pub hub: NodeId,
    /// Built-from configuration.
    pub config: ChainConfig,
}

impl ChainTestbed {
    /// Builds the chained testbed.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas < 2` (the chain degenerates) or
    /// `> 200` (address space).
    pub fn new(config: ChainConfig) -> Self {
        assert!((2..=200).contains(&config.replicas));
        let n = config.replicas;
        let vip = addrs::A_P;
        let replica_addrs: Vec<Ipv4Addr> = (0..n)
            .map(|i| Ipv4Addr::new(10, 0, 0, 2 + i as u8))
            .collect();
        let replica_macs: Vec<MacAddr> =
            (0..n).map(|i| MacAddr::from_index(2 + i as u32)).collect();

        let mut sim = Simulator::new(config.seed);
        let hub = sim.add_device(Box::new(Hub::new("segment", n + 1, 100_000_000)));
        let router = sim.add_device(Box::new(Router::new(
            "router",
            vec![
                Interface {
                    mac: macs::ROUTER_CLIENT,
                    ip: addrs::GW_CLIENT,
                    prefix_len: 24,
                },
                Interface {
                    mac: macs::ROUTER_SERVER,
                    ip: addrs::GW_SERVER,
                    prefix_len: 24,
                },
            ],
            SimDuration::from_micros(15),
        )));
        // Client.
        let mut client_cfg = HostConfig::new("client", macs::CLIENT, addrs::A_C)
            .with_gateway(addrs::GW_CLIENT)
            .with_tcp(config.tcp.clone().with_isn_seed(config.seed ^ (1 << 32)));
        client_cfg.cpu = config.cpu.scaled(0.6);
        client_cfg.tick = config.tick;
        let client = spawn_host(&mut sim, Host::new(client_cfg));
        sim.connect((router, 0), (client, 0), config.client_link);
        sim.connect((hub, 0), (router, 1), LinkParams::attachment());

        // Replicas, head first.
        let mut replicas = Vec::new();
        for i in 0..n {
            let fo = FailoverConfig::from_ports(config.failover_ports.iter().copied());
            let mut hc = HostConfig::new(&format!("replica{i}"), replica_macs[i], replica_addrs[i])
                .with_gateway(addrs::GW_SERVER)
                .with_tcp(
                    config
                        .tcp
                        .clone()
                        .with_isn_seed(config.seed ^ ((i as u64 + 2) << 32)),
                );
            hc.cpu = config.cpu;
            hc.tick = config.tick;
            // Everyone except the head must snoop.
            hc.promiscuous = i != 0;
            let mut host = Host::new(hc);
            if i == n - 1 {
                // The tail is a plain secondary, diverting to its
                // neighbour toward the head.
                let mut tail = SecondaryBridge::new(vip, replica_addrs[i], fo);
                tail.set_upstream(replica_addrs[i - 1]);
                host.set_filter(Box::new(tail));
            } else {
                let upstream = if i == 0 {
                    None
                } else {
                    Some(replica_addrs[i - 1])
                };
                host.set_filter(Box::new(ChainBridge::new(
                    vip,
                    replica_addrs[i],
                    upstream,
                    replica_addrs[i + 1],
                    fo,
                )));
            }
            host.set_controller(Box::new(ChainController::new(
                replica_addrs.clone(),
                i,
                config.detector,
            )));
            for &p in &config.failover_ports {
                host.stack_mut().add_failover_port(p);
            }
            let id = spawn_host(&mut sim, host);
            sim.connect((hub, i + 1), (id, 0), LinkParams::attachment());
            replicas.push(id);
        }

        let mut tb = ChainTestbed {
            sim,
            client,
            replicas,
            replica_addrs,
            router,
            hub,
            config,
        };
        tb.prime_arp_caches();
        tb
    }

    fn prime_arp_caches(&mut self) {
        use addrs::*;
        let addrs_copy = self.replica_addrs.clone();
        self.sim.with::<Host, _>(self.client, |h, _| {
            h.net_mut().prime_arp(GW_CLIENT, macs::ROUTER_CLIENT);
        });
        self.sim.with::<Router, _>(self.router, |r, _| {
            r.prime_arp(A_C, 0, macs::CLIENT);
            for (i, &a) in addrs_copy.iter().enumerate() {
                r.prime_arp(a, 1, MacAddr::from_index(2 + i as u32));
            }
        });
        for (i, &node) in self.replicas.clone().iter().enumerate() {
            let addrs_copy = self.replica_addrs.clone();
            self.sim.with::<Host, _>(node, |h, _| {
                h.net_mut().prime_arp(GW_SERVER, macs::ROUTER_SERVER);
                for (j, &a) in addrs_copy.iter().enumerate() {
                    if j != i {
                        h.net_mut().prime_arp(a, MacAddr::from_index(2 + j as u32));
                    }
                }
            });
        }
    }

    /// Kills replica `i` (0 = head) fail-stop.
    pub fn kill_replica(&mut self, i: usize) {
        self.sim.kill(self.replicas[i]);
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Installs `mk()` on every replica (active replication).
    pub fn install_servers<A: tcpfo_tcp::SocketApp>(&mut self, mk: impl Fn() -> A) {
        for &node in &self.replicas.clone() {
            self.sim.with::<Host, _>(node, |h, _| {
                h.add_app(Box::new(mk()));
            });
        }
    }
}

impl std::fmt::Debug for ChainTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainTestbed")
            .field("replicas", &self.replica_addrs)
            .finish()
    }
}
