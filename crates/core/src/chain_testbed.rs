//! Testbed for daisy-chained replication: the Figure-1 topology with
//! `N ≥ 2` replicas on the shared segment.
//!
//! ```text
//!   client ── router ── hub ── head (VIP) ── B1 ── … ── tail
//!                        │        │ChainBridge│Chain│  │Secondary│
//!                        └── all replicas snoop promiscuously ──┘
//! ```
//!
//! Since PR9 the testbed carries the chain's full observability and
//! reprovisioning surface:
//!
//! * every replica gets its **own** telemetry hub (controllers publish
//!   under `core.chain`, so sharing a registry would collide), with
//!   the auditor / latency / health observatories attached per the
//!   `TCPFO_AUDIT` / `TCPFO_LATENCY` / `TCPFO_HEALTH` knobs (or the
//!   explicit [`ChainConfig`] overrides);
//! * [`ChainTestbed::kill_replica`] stamps the §5 failure reference
//!   point on every hub's timeline;
//! * the reprovisioning primitives ([`ChainTestbed::spawn_standby`],
//!   [`ChainTestbed::snapshot_handoffs`],
//!   [`ChainTestbed::adopt_on_standby`],
//!   [`ChainTestbed::convert_tail_to_middle`],
//!   [`ChainTestbed::run_until_restored`]) implement the
//!   [`crate::reprovision`] protocol; the application-level half
//!   (resuming the deterministic stream) lives with the apps
//!   (`tcpfo_apps::chain_ops`), which composes these primitives.

use crate::chain::{ChainBridge, ChainController};
use crate::designation::FailoverConfig;
use crate::detector::DetectorConfig;
use crate::reprovision::{FlowHandoff, ReprovisionPhase, ReprovisionTracker};
use crate::secondary::SecondaryBridge;
use crate::testbed::{addrs, macs};
use tcpfo_net::hub::Hub;
use tcpfo_net::link::LinkParams;
use tcpfo_net::router::{Interface, Router};
use tcpfo_net::sim::{NodeId, Simulator};
use tcpfo_net::time::SimDuration;
use tcpfo_tcp::config::TcpConfig;
use tcpfo_tcp::host::{spawn_host, CpuModel, Host, HostConfig};
use tcpfo_tcp::types::SocketId;
use tcpfo_telemetry::audit::env_audit_enabled;
use tcpfo_telemetry::health::env_health_enabled;
use tcpfo_telemetry::latency::env_latency_enabled;
use tcpfo_telemetry::{
    AuditConfig, FailoverPhase, HealthObservatory, InvariantAuditor, LatencyObservatory, Telemetry,
};
use tcpfo_wire::ipv4::Ipv4Addr;
use tcpfo_wire::mac::MacAddr;

/// Parameters for a chained testbed.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Number of replicas (head + backups), ≥ 2.
    pub replicas: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Failover port set (§7 method 2), identical on every replica.
    pub failover_ports: Vec<u16>,
    /// Fault-detector parameters.
    pub detector: DetectorConfig,
    /// Client↔router link.
    pub client_link: LinkParams,
    /// Host CPU model for the replicas.
    pub cpu: CpuModel,
    /// Base TCP configuration (per-replica ISN seeds derived from
    /// `seed`).
    pub tcp: TcpConfig,
    /// Host stack tick.
    pub tick: SimDuration,
    /// Attach the invariant auditor to every bridge. `None` follows
    /// the `TCPFO_AUDIT` environment knob; `Some(_)` overrides it.
    pub audit: Option<bool>,
    /// Attach the per-stage latency observatory to every bridge.
    /// `None` follows the `TCPFO_LATENCY` knob; `Some(_)` overrides it.
    pub latency: Option<bool>,
    /// Attach the health observatory (replication-lag ledger) to every
    /// bridge. `None` follows the `TCPFO_HEALTH` knob; `Some(_)`
    /// overrides it.
    pub health: Option<bool>,
    /// Arm the failover span tracer (PR10) on every replica hub and a
    /// hot-path batch sampler on every non-tail bridge. `None` follows
    /// the `TCPFO_TRACE` knob; `Some(_)` overrides it.
    pub span_trace: Option<bool>,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            replicas: 3,
            seed: 42,
            failover_ports: vec![80],
            detector: DetectorConfig::default(),
            client_link: LinkParams::fast_ethernet(),
            cpu: CpuModel::server_2003(),
            tcp: TcpConfig::default(),
            tick: SimDuration::from_millis(1),
            audit: None,
            latency: None,
            health: None,
            span_trace: None,
        }
    }
}

/// How many standby replicas the hub reserves ports for.
const STANDBY_PORTS: usize = 2;

/// The assembled chain testbed.
pub struct ChainTestbed {
    /// The simulator.
    pub sim: Simulator,
    /// Client host.
    pub client: NodeId,
    /// Replica hosts, head first (`replicas[0]` owns the VIP at
    /// start). Grows when a standby is reprovisioned.
    pub replicas: Vec<NodeId>,
    /// Replica addresses, head first.
    pub replica_addrs: Vec<Ipv4Addr>,
    /// Per-replica telemetry hubs, parallel to `replicas`.
    pub hubs: Vec<Telemetry>,
    /// Which replicas the testbed has killed.
    pub dead: Vec<bool>,
    /// Router node.
    pub router: NodeId,
    /// Hub node.
    pub hub: NodeId,
    /// Built-from configuration.
    pub config: ChainConfig,
    /// Reprovisioning bookkeeping (stamps every hub's redundancy
    /// timeline).
    pub tracker: ReprovisionTracker,
    /// The replica index whose lag ledger proves catch-up (the old
    /// tail converted to a middle link), once a round started.
    catchup_link: Option<usize>,
    /// Next free port on the shared-segment hub.
    next_hub_port: usize,
    audit_on: bool,
    latency_on: bool,
    health_on: bool,
    span_trace_on: bool,
}

impl ChainTestbed {
    /// Builds the chained testbed.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas < 2` (the chain degenerates) or
    /// `> 200` (address space).
    pub fn new(config: ChainConfig) -> Self {
        assert!((2..=200).contains(&config.replicas));
        let n = config.replicas;
        let audit_on = config.audit.unwrap_or_else(env_audit_enabled);
        let latency_on = config.latency.unwrap_or_else(env_latency_enabled);
        let health_on = config.health.unwrap_or_else(env_health_enabled);
        let span_trace_on = config
            .span_trace
            .unwrap_or_else(tcpfo_telemetry::span::env_trace_enabled);
        let replica_addrs: Vec<Ipv4Addr> = (0..n)
            .map(|i| Ipv4Addr::new(10, 0, 0, 2 + i as u8))
            .collect();
        let replica_macs: Vec<MacAddr> =
            (0..n).map(|i| MacAddr::from_index(2 + i as u32)).collect();

        let mut sim = Simulator::new(config.seed);
        // One port per replica + the router uplink + headroom for
        // reprovisioned standbys.
        let hub = sim.add_device(Box::new(Hub::new(
            "segment",
            n + 1 + STANDBY_PORTS,
            100_000_000,
        )));
        let router = sim.add_device(Box::new(Router::new(
            "router",
            vec![
                Interface {
                    mac: macs::ROUTER_CLIENT,
                    ip: addrs::GW_CLIENT,
                    prefix_len: 24,
                },
                Interface {
                    mac: macs::ROUTER_SERVER,
                    ip: addrs::GW_SERVER,
                    prefix_len: 24,
                },
            ],
            SimDuration::from_micros(15),
        )));
        // Client.
        let mut client_cfg = HostConfig::new("client", macs::CLIENT, addrs::A_C)
            .with_gateway(addrs::GW_CLIENT)
            .with_tcp(config.tcp.clone().with_isn_seed(config.seed ^ (1 << 32)));
        client_cfg.cpu = config.cpu.scaled(0.6);
        client_cfg.tick = config.tick;
        let client = spawn_host(&mut sim, Host::new(client_cfg));
        sim.connect((router, 0), (client, 0), config.client_link);
        sim.connect((hub, 0), (router, 1), LinkParams::attachment());

        let mut tb = ChainTestbed {
            sim,
            client,
            replicas: Vec::new(),
            replica_addrs: replica_addrs.clone(),
            hubs: Vec::new(),
            dead: vec![false; n],
            router,
            hub,
            config,
            tracker: ReprovisionTracker::new(),
            catchup_link: None,
            next_hub_port: 1,
            audit_on,
            latency_on,
            health_on,
            span_trace_on,
        };

        // Replicas, head first.
        for (i, mac) in replica_macs.iter().enumerate().take(n) {
            let node = tb.spawn_replica(i, *mac);
            tb.replicas.push(node);
        }
        tb.sim.set_telemetry(tb.hubs[0].clone());
        tb.prime_arp_caches();
        tb
    }

    /// Spawns replica `i` (address already in `replica_addrs`): bridge
    /// by position (tail = [`SecondaryBridge`], everything else =
    /// [`ChainBridge`]), observatories per the knobs, a fresh telemetry
    /// hub, and a [`ChainController`] over the full chain. Wires the
    /// host to the next free hub port.
    fn spawn_replica(&mut self, i: usize, mac: MacAddr) -> NodeId {
        let vip = addrs::A_P;
        let n = self.replica_addrs.len();
        let telemetry = Telemetry::from_env();
        if self.span_trace_on {
            telemetry
                .trace
                .attach(tcpfo_telemetry::span::env_trace_capacity());
        }
        self.tracker.attach_timeline(telemetry.redundancy.clone());
        self.tracker.attach_tracer(telemetry.trace.clone());
        let fo = FailoverConfig::from_ports(self.config.failover_ports.iter().copied());
        let mut hc = HostConfig::new(&format!("replica{i}"), mac, self.replica_addrs[i])
            .with_gateway(addrs::GW_SERVER)
            .with_tcp(
                self.config
                    .tcp
                    .clone()
                    .with_isn_seed(self.config.seed ^ ((i as u64 + 2) << 32)),
            );
        hc.cpu = self.config.cpu;
        hc.tick = self.config.tick;
        // Everyone except the head must snoop.
        hc.promiscuous = i != 0;
        let mut host = Host::new(hc);
        host.set_telemetry(&telemetry);
        if i == n - 1 {
            // The tail is a plain secondary, diverting to its
            // neighbour toward the head.
            let mut tail = SecondaryBridge::new(vip, self.replica_addrs[i], fo);
            tail.set_upstream(self.replica_addrs[i - 1]);
            tail.set_telemetry(&telemetry);
            self.attach_secondary_observatories(&mut tail, &telemetry);
            host.set_filter(Box::new(tail));
        } else {
            let upstream = if i == 0 {
                None
            } else {
                Some(self.replica_addrs[i - 1])
            };
            let mut bridge = ChainBridge::new(
                vip,
                self.replica_addrs[i],
                upstream,
                self.replica_addrs[i + 1],
                fo,
            );
            bridge.set_telemetry(&telemetry);
            self.attach_chain_observatories(&mut bridge, &telemetry);
            host.set_filter(Box::new(bridge));
        }
        let mut controller =
            ChainController::new(self.replica_addrs.clone(), i, self.config.detector);
        controller.set_telemetry(&telemetry);
        host.set_controller(Box::new(controller));
        for &p in &self.config.failover_ports {
            host.stack_mut().add_failover_port(p);
        }
        let id = spawn_host(&mut self.sim, host);
        self.sim.connect(
            (self.hub, self.next_hub_port),
            (id, 0),
            LinkParams::attachment(),
        );
        self.next_hub_port += 1;
        self.hubs.push(telemetry);
        id
    }

    fn attach_chain_observatories(&self, bridge: &mut ChainBridge, telemetry: &Telemetry) {
        if self.audit_on {
            bridge.set_audit(Some(Box::new(
                InvariantAuditor::new(AuditConfig::from_env("chain")).with_hub(telemetry),
            )));
        }
        if self.latency_on {
            bridge.set_latency(Some(Box::new(LatencyObservatory::new())));
        }
        if self.health_on {
            bridge.set_health(Some(Box::new(HealthObservatory::new())));
        }
        if self.span_trace_on {
            bridge.set_trace(Some(Box::new(
                tcpfo_telemetry::SpanSampler::with_default_period(telemetry.trace.clone()),
            )));
        }
    }

    fn attach_secondary_observatories(&self, bridge: &mut SecondaryBridge, telemetry: &Telemetry) {
        if self.audit_on {
            bridge.set_audit(Some(Box::new(
                InvariantAuditor::new(AuditConfig::from_env("chain-tail")).with_hub(telemetry),
            )));
        }
        if self.latency_on {
            bridge.set_latency(Some(Box::new(LatencyObservatory::new())));
        }
        if self.health_on {
            bridge.set_health(Some(Box::new(HealthObservatory::new())));
        }
    }

    fn prime_arp_caches(&mut self) {
        use addrs::*;
        let addrs_copy = self.replica_addrs.clone();
        self.sim.with::<Host, _>(self.client, |h, _| {
            h.net_mut().prime_arp(GW_CLIENT, macs::ROUTER_CLIENT);
        });
        self.sim.with::<Router, _>(self.router, |r, _| {
            r.prime_arp(A_C, 0, macs::CLIENT);
            for (i, &a) in addrs_copy.iter().enumerate() {
                r.prime_arp(a, 1, MacAddr::from_index(2 + i as u32));
            }
        });
        for (i, &node) in self.replicas.clone().iter().enumerate() {
            let addrs_copy = self.replica_addrs.clone();
            self.sim.with::<Host, _>(node, |h, _| {
                h.net_mut().prime_arp(GW_SERVER, macs::ROUTER_SERVER);
                for (j, &a) in addrs_copy.iter().enumerate() {
                    if j != i {
                        h.net_mut().prime_arp(a, MacAddr::from_index(2 + j as u32));
                    }
                }
            });
        }
    }

    /// Kills replica `i` (0 = head) fail-stop, stamping the §5 failure
    /// reference point on every replica's timeline.
    pub fn kill_replica(&mut self, i: usize) {
        let now = self.sim.now().as_nanos();
        for hub in &self.hubs {
            hub.timeline.mark(FailoverPhase::Failure, now);
            hub.journal
                .record(now, "chain_testbed", "kill", &[("replica", i.to_string())]);
        }
        self.dead[i] = true;
        self.sim.kill(self.replicas[i]);
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Installs `mk()` on every replica (active replication).
    pub fn install_servers<A: tcpfo_tcp::SocketApp>(&mut self, mk: impl Fn() -> A) {
        for &node in &self.replicas.clone() {
            self.sim.with::<Host, _>(node, |h, _| {
                h.add_app(Box::new(mk()));
            });
        }
    }

    // -----------------------------------------------------------------
    // Reprovisioning primitives (PR9) — composed by
    // `tcpfo_apps::chain_ops::reprovision_tail`, which adds the
    // application half (resuming the deterministic stream).
    // -----------------------------------------------------------------

    /// Index of the current tail: the last living replica.
    ///
    /// # Panics
    ///
    /// Panics if every replica is dead.
    pub fn tail_index(&self) -> usize {
        (0..self.replicas.len())
            .rev()
            .find(|&i| !self.dead[i])
            .expect("at least one living replica")
    }

    /// Snapshots per-flow TCB handoffs from replica `from`'s TCP stack
    /// (the tail being replaced — pass its index from *before*
    /// [`ChainTestbed::spawn_standby`] appended the standby).
    /// `progress` carries the application half — `(socket, offset,
    /// remaining)` per live connection (e.g.
    /// `SourceServer::conn_progress`). The cursor is the tail's
    /// `snd_nxt`, i.e. the client-facing sequence space; `delta` is 0
    /// under the adopt-in-tail-space scheme.
    pub fn snapshot_handoffs(
        &mut self,
        from: usize,
        progress: &[(SocketId, u64, u64)],
    ) -> Vec<FlowHandoff> {
        let tail = self.replicas[from];
        let progress = progress.to_vec();
        self.sim.with::<Host, _>(tail, move |h, _| {
            let mut handoffs = Vec::new();
            for &(sid, offset, remaining) in &progress {
                let Some(sock) = h.stack().socket(sid) else {
                    continue;
                };
                if !sock.is_established() {
                    continue;
                }
                let t = sock.four_tuple();
                // The application's progress counter runs ahead of
                // SND.NXT by whatever sits unsent in the socket's send
                // buffer; the adopting stack starts exactly at the
                // cursor, so the resume point rewinds by that depth —
                // otherwise the standby's stream is shifted and the
                // merge releases diverging bytes.
                let unsent = u64::from(sock.unsent_bytes());
                handoffs.push(FlowHandoff {
                    client: t.remote,
                    server_port: t.local.port,
                    cursor: sock.snd_nxt(),
                    delta: 0,
                    rcv_nxt: sock.rcv_nxt(),
                    mss: sock.effective_mss(),
                    win: sock.snd_wnd().min(u32::from(u16::MAX)) as u16,
                    offset: offset.saturating_sub(unsent),
                    remaining: remaining + unsent,
                });
            }
            handoffs
        })
    }

    /// Spawns a fresh standby replica at the end of the chain
    /// (phase 1): a [`SecondaryBridge`] diverting to the current tail,
    /// its own telemetry hub and observatories, a controller that
    /// already knows which founders are dead, ARP pre-primed both
    /// ways. Starts the tracker's reprovision clock. Returns the new
    /// replica's index.
    ///
    /// # Panics
    ///
    /// Panics if the hub has no port headroom left (at most
    /// [`STANDBY_PORTS`] standbys per testbed).
    pub fn spawn_standby(&mut self) -> usize {
        let k = self.replica_addrs.len();
        assert!(
            self.next_hub_port < self.config.replicas + 1 + STANDBY_PORTS,
            "no hub port left for another standby"
        );
        let addr = Ipv4Addr::new(10, 0, 0, 2 + k as u8);
        let mac = MacAddr::from_index(2 + k as u32);
        let now = self.sim.now().as_nanos();
        self.tracker.begin(addr, now);
        let tail = self.tail_index();
        self.replica_addrs.push(addr);
        self.dead.push(false);

        // The standby mirrors a founding tail: secondary bridge
        // diverting to the current tail (which will convert to a
        // middle as part of the handoff).
        let telemetry = Telemetry::from_env();
        if self.span_trace_on {
            telemetry
                .trace
                .attach(tcpfo_telemetry::span::env_trace_capacity());
        }
        self.tracker.attach_timeline(telemetry.redundancy.clone());
        self.tracker.attach_tracer(telemetry.trace.clone());
        let fo = FailoverConfig::from_ports(self.config.failover_ports.iter().copied());
        let mut hc = HostConfig::new(&format!("replica{k}"), mac, addr)
            .with_gateway(addrs::GW_SERVER)
            .with_tcp(
                self.config
                    .tcp
                    .clone()
                    .with_isn_seed(self.config.seed ^ ((k as u64 + 2) << 32)),
            );
        hc.cpu = self.config.cpu;
        hc.tick = self.config.tick;
        hc.promiscuous = true;
        let mut host = Host::new(hc);
        host.set_telemetry(&telemetry);
        let mut bridge = SecondaryBridge::new(addrs::A_P, addr, fo);
        bridge.set_upstream(self.replica_addrs[tail]);
        bridge.set_telemetry(&telemetry);
        self.attach_secondary_observatories(&mut bridge, &telemetry);
        host.set_filter(Box::new(bridge));
        let mut controller =
            ChainController::new(self.replica_addrs.clone(), k, self.config.detector);
        controller.set_telemetry(&telemetry);
        for (i, &dead) in self.dead.iter().enumerate() {
            if dead {
                controller.set_peer_dead(self.replica_addrs[i]);
            }
        }
        host.set_controller(Box::new(controller));
        for &p in &self.config.failover_ports {
            host.stack_mut().add_failover_port(p);
        }
        let id = spawn_host(&mut self.sim, host);
        self.sim.connect(
            (self.hub, self.next_hub_port),
            (id, 0),
            LinkParams::attachment(),
        );
        self.next_hub_port += 1;
        self.replicas.push(id);
        self.hubs.push(telemetry);

        // ARP, both directions, plus the router for good measure.
        let addrs_copy = self.replica_addrs.clone();
        self.sim.with::<Host, _>(id, move |h, _| {
            h.net_mut().prime_arp(addrs::GW_SERVER, macs::ROUTER_SERVER);
            for (j, &a) in addrs_copy.iter().enumerate() {
                if j != k {
                    h.net_mut().prime_arp(a, MacAddr::from_index(2 + j as u32));
                }
            }
        });
        for (i, &node) in self.replicas.clone().iter().enumerate() {
            if i == k || self.dead[i] {
                continue;
            }
            self.sim.with::<Host, _>(node, |h, _| {
                h.net_mut().prime_arp(addr, mac);
            });
            // The survivors learn about the new chain member.
            self.sim.with::<Host, _>(node, |h, _| {
                h.controller_mut::<ChainController>().append_replica(addr);
            });
        }
        self.sim.with::<Router, _>(self.router, |r, _| {
            r.prime_arp(addr, 1, mac);
        });
        k
    }

    /// Rebuilds the handed-off TCBs on the standby (phase 2, stack
    /// half): `Stack::adopt` synthesises each socket `Established` at
    /// the snapshot positions, and the witness gate is seeded so the
    /// bridge translates the client's datagrams. Returns the new
    /// socket IDs, parallel to `handoffs`, for the application half.
    pub fn adopt_on_standby(&mut self, standby: usize, handoffs: &[FlowHandoff]) -> Vec<SocketId> {
        let node = self.replicas[standby];
        let addr = self.replica_addrs[standby];
        let handoffs = handoffs.to_vec();
        let now = self.sim.now().as_nanos();
        self.sim.with::<Host, _>(node, move |h, _| {
            let mut ids = Vec::with_capacity(handoffs.len());
            for ho in &handoffs {
                if let Some(b) = h
                    .filter_mut()
                    .as_any_mut()
                    .downcast_mut::<SecondaryBridge>()
                {
                    b.witness_flow(ho.server_port, ho.client, now);
                }
                let local = tcpfo_tcp::types::SocketAddr::new(addr, ho.server_port);
                let id = h
                    .stack_mut()
                    .adopt(local, ho.client, ho.cursor, ho.rcv_nxt, ho.mss, ho.win)
                    .expect("adopted tuple unique on a fresh standby");
                ids.push(id);
            }
            ids
        })
    }

    /// Converts the old tail into a middle link adopting the same
    /// flows at `Δseq = 0` (phase 2, bridge half): its merge now
    /// buffers its own stream until the standby's diverted stream
    /// matches it. Ends the handoff phase on the tracker.
    pub fn convert_tail_to_middle(&mut self, standby: usize, handoffs: &[FlowHandoff]) {
        let tail = self.tail_index0_before(standby);
        let node = self.replicas[tail];
        let vip = addrs::A_P;
        let own = self.replica_addrs[tail];
        let downstream = self.replica_addrs[standby];
        let fo = FailoverConfig::from_ports(self.config.failover_ports.iter().copied());
        let telemetry = self.hubs[tail].clone();
        let now = self.sim.now().as_nanos();
        let flows = handoffs.len();
        let handoffs = handoffs.to_vec();
        let audit_on = self.audit_on;
        let latency_on = self.latency_on;
        let health_on = self.health_on;
        let span_trace_on = self.span_trace_on;
        self.sim.with::<Host, _>(node, move |h, _| {
            let upstream = h
                .filter_mut()
                .as_any_mut()
                .downcast_mut::<SecondaryBridge>()
                .expect("converting tail runs a SecondaryBridge")
                .upstream();
            let mut bridge = ChainBridge::new(vip, own, Some(upstream), downstream, fo);
            bridge.set_telemetry(&telemetry);
            if audit_on {
                bridge.set_audit(Some(Box::new(
                    InvariantAuditor::new(AuditConfig::from_env("chain")).with_hub(&telemetry),
                )));
            }
            if latency_on {
                bridge.set_latency(Some(Box::new(LatencyObservatory::new())));
            }
            if health_on {
                bridge.set_health(Some(Box::new(HealthObservatory::new())));
            }
            if span_trace_on {
                bridge.set_trace(Some(Box::new(
                    tcpfo_telemetry::SpanSampler::with_default_period(telemetry.trace.clone()),
                )));
            }
            for ho in &handoffs {
                bridge.adopt_flow(ho, now);
            }
            h.set_filter(Box::new(bridge));
        });
        self.catchup_link = Some(tail);
        let backlog = self.catchup_lag();
        self.tracker.handoff_done(flows, backlog, now);
    }

    /// The tail index *excluding* the standby already appended by
    /// [`ChainTestbed::spawn_standby`].
    fn tail_index0_before(&self, standby: usize) -> usize {
        (0..standby)
            .rev()
            .find(|&i| !self.dead[i])
            .expect("a living replica above the standby")
    }

    /// Unmatched replication backlog on the converted link: the lag
    /// ledger when the health observatory is attached, otherwise the
    /// sum of primary-queue bytes across its connections. Zero means
    /// the standby's stream has caught up with the converted link's.
    pub fn catchup_lag(&mut self) -> u64 {
        let Some(link) = self.catchup_link else {
            return 0;
        };
        let node = self.replicas[link];
        self.sim.with::<Host, _>(node, |h, _| {
            let Some(b) = h.filter_mut().as_any_mut().downcast_mut::<ChainBridge>() else {
                return 0;
            };
            match b.health() {
                Some(obs) => obs.lag.unmatched_bytes(),
                None => b.connection_rows().iter().map(|r| r.pq_bytes as u64).sum(),
            }
        })
    }

    /// Sum of invariant-auditor rule firings across every living
    /// replica's bridge (0 when the auditor is detached). The PR9
    /// acceptance gate: a whole failover-plus-reprovisioning round with
    /// the auditor attached must report zero.
    pub fn audit_violations(&mut self) -> u64 {
        let mut total = 0;
        for (i, &node) in self.replicas.clone().iter().enumerate() {
            if self.dead[i] {
                continue;
            }
            total += self.sim.with::<Host, _>(node, |h, _| {
                let f = h.filter_mut().as_any_mut();
                if let Some(b) = f.downcast_mut::<ChainBridge>() {
                    b.audit().map_or(0, |a| a.ledger().total_violations())
                } else if let Some(b) = f.downcast_mut::<SecondaryBridge>() {
                    b.audit().map_or(0, |a| a.ledger().total_violations())
                } else {
                    0
                }
            });
        }
        total
    }

    /// Checks the catch-up condition and, when the backlog has drained
    /// to zero, stamps restoration on the tracker (and so on every
    /// hub's redundancy timeline).
    pub fn poll_reprovision(&mut self) {
        if self.tracker.phase() == ReprovisionPhase::CatchUp && self.catchup_lag() == 0 {
            let now = self.sim.now().as_nanos();
            self.tracker.restored(now);
        }
    }

    /// Runs the simulation in `step` increments until the
    /// reprovisioning round reports restored redundancy, or `max` sim
    /// time elapses. Returns whether redundancy was restored.
    ///
    /// Steps *before* the first poll: at the conversion instant the
    /// backlog is trivially zero (the standby has not produced a byte
    /// yet), so catch-up is only proven once the chain has run and the
    /// lag observed after that still drains to nothing.
    pub fn run_until_restored(&mut self, step: SimDuration, max: SimDuration) -> bool {
        let deadline = self.sim.now() + max;
        loop {
            self.run_for(step);
            self.poll_reprovision();
            if self.tracker.phase() == ReprovisionPhase::Restored {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
        }
    }
}

impl std::fmt::Debug for ChainTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainTestbed")
            .field("replicas", &self.replica_addrs)
            .field("dead", &self.dead)
            .finish()
    }
}
