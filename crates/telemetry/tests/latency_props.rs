//! Property tests pinning down the [`LogHistogram`] contract the
//! latency observatory leans on: the log2-bucket quantile brackets the
//! exact quantile within a factor of two, merging shard-local copies
//! is lossless (associative, commutative, equal to recording the
//! concatenation), and out-of-range values saturate into the top
//! bucket without corrupting the summary scalars.

use proptest::collection::vec;
use proptest::prelude::*;
use tcpfo_telemetry::{HostHistogram, LogHistogram, SimHistogram, Stage, StageLatency};

/// Highest value the 40-bucket host histogram resolves without
/// saturating (everything at or above `2^(N-2)` shares the top
/// bucket, where the factor-of-two bracket no longer holds).
const HOST_RESOLVED_MAX: u64 = 1 << 38;

fn hist(values: &[u64]) -> HostHistogram {
    let mut h = HostHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact `q`-quantile under the same rank convention the
/// histogram uses: the rank-`⌈q·n⌉` order statistic.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// value → bucket → quantile round-trip: for resolved values the
    /// reported quantile brackets the exact one as
    /// `exact ≤ quantile(q) ≤ max(2·exact, 1)`.
    #[test]
    fn quantile_brackets_exact(
        values in vec(0..HOST_RESOLVED_MAX, 1..200),
        qm in 0u32..=1000,
    ) {
        let q = f64::from(qm) / 1000.0;
        let h = hist(&values);
        let exact = exact_quantile(&values, q);
        let got = h.quantile(q);
        prop_assert!(got >= exact, "quantile({q}) = {got} < exact {exact}");
        prop_assert!(
            got <= (2 * exact).max(1),
            "quantile({q}) = {got} > 2 * exact ({exact})"
        );
        prop_assert!(got <= h.max());
    }

    /// The quantile function is monotone in `q`.
    #[test]
    fn quantile_monotone(
        values in vec(any::<u64>(), 1..200),
        a in 0u32..=1000,
        b in 0u32..=1000,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        let h = hist(&values);
        prop_assert!(
            h.quantile(f64::from(lo) / 1000.0) <= h.quantile(f64::from(hi) / 1000.0)
        );
    }

    /// Merging is lossless and order-free: commutative, associative,
    /// and identical to recording the concatenated observations.
    #[test]
    fn merge_is_lossless(
        a in vec(any::<u64>(), 0..100),
        b in vec(any::<u64>(), 0..100),
        c in vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut a_bc = ha;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "merge must be associative");

        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(ab, hist(&concat), "merge must equal recording the union");
    }

    /// Values beyond the resolved range all saturate into the top
    /// bucket; quantiles then clamp to the true maximum instead of
    /// inventing a bucket bound.
    #[test]
    fn top_bucket_saturation(
        values in vec(HOST_RESOLVED_MAX..=u64::MAX, 1..50),
        qm in 1u32..=1000,
    ) {
        let h = hist(&values);
        let top = HostHistogram::new().buckets().len() - 1;
        prop_assert_eq!(h.buckets()[top], values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        let q = f64::from(qm) / 1000.0;
        prop_assert_eq!(h.quantile(q), *values.iter().max().unwrap());
    }

    /// Per-shard stage merging is lossless across the whole
    /// [`StageLatency`] array, exactly as `process_batch` relies on
    /// when it folds worker-private copies back together.
    #[test]
    fn stage_latency_merge(
        a in vec((0usize..Stage::COUNT, any::<u64>()), 0..100),
        b in vec((0usize..Stage::COUNT, any::<u64>()), 0..100),
    ) {
        let fill = |samples: &[(usize, u64)]| {
            let mut l = StageLatency::new();
            for &(i, v) in samples {
                l.record(Stage::ALL[i], v);
            }
            l
        };
        let (la, lb) = (fill(&a), fill(&b));
        let mut merged = la;
        merged.merge(&lb);
        let concat: Vec<(usize, u64)> = a.iter().chain(&b).copied().collect();
        let direct = fill(&concat);
        for &s in &Stage::ALL {
            prop_assert_eq!(merged.stage(s), direct.stage(s));
        }
        prop_assert_eq!(merged.total_count(), (a.len() + b.len()) as u64);
    }
}

#[test]
fn empty_histogram_reports_zeroes() {
    let h = SimHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.quantile(0.5), 0);
}

#[test]
fn sim_histogram_resolves_long_durations() {
    // 19 hours of simulated nanoseconds still lands below the
    // 48-bucket saturation point.
    let v = 19 * 3600 * 1_000_000_000u64;
    assert!(LogHistogram::<48>::bucket_of(v) < 47);
}
