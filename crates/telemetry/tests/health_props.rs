//! Property tests pinning down the health-observatory primitives the
//! PR-8 monitors lean on: the integer EWMA approaches a constant input
//! monotonically and never overshoots, the burn-rate sliding window is
//! a lossless merge of every in-horizon observation, and the alert
//! machine's hysteresis bands make Warn↔Critical flapping impossible
//! unless the score actually swings across a full band.

use proptest::collection::vec;
use proptest::prelude::*;
use tcpfo_telemetry::{AlertMachine, AlertState, BurnWindow, Ewma, HealthConfig, WindowCounts};

/// Slots in a burn window (mirrors `health::SLO_SLOTS`).
const SLOTS: u64 = 8;

proptest! {
    /// Feeding a constant to the EWMA: the distance to the constant is
    /// non-increasing at every step, the value never overshoots (the
    /// sign of `target - value` never flips), and with gain `num/den`
    /// the value eventually lands within `den/num` of the target —
    /// the resolution floor of the integer update.
    #[test]
    fn ewma_approaches_constant_monotonically(
        start in 0u64..1_000_000_000,
        target in 0u64..1_000_000_000,
        num in 1u32..=8,
        den_mult in 1u32..=8,
        steps in 1usize..200,
    ) {
        let den = num * den_mult; // gain num/den ≤ 1
        let mut e = Ewma::new(num, den);
        e.observe(start); // primes to `start`
        prop_assert_eq!(e.get(), start);
        let mut dist = start.abs_diff(target);
        let above = start > target;
        for _ in 0..steps {
            e.observe(target);
            let v = e.get();
            let d = v.abs_diff(target);
            prop_assert!(d <= dist, "distance grew: {d} > {dist}");
            if v != target {
                prop_assert_eq!(
                    v > target,
                    above,
                    "EWMA overshot the constant input"
                );
            }
            dist = d;
        }
        // Run to convergence: enough steps for the geometric decay to
        // hit the integer-resolution floor.
        for _ in 0..10_000 {
            e.observe(target);
        }
        let floor = (den / num) as u64;
        prop_assert!(
            e.get().abs_diff(target) <= floor,
            "converged to {} — further than {floor} from {target}",
            e.get()
        );
    }

    /// The sliding merge is lossless: for observations recorded at
    /// non-decreasing sim times, `sliding(now)` equals an exact
    /// recount of every observation whose slot is still inside the
    /// horizon — nothing double-counted, nothing silently dropped.
    #[test]
    fn burn_window_sliding_merge_is_lossless(
        slot_ns in 1u64..1_000_000,
        deltas in vec((0u64..3_000_000, any::<bool>()), 1..100),
    ) {
        let mut w = BurnWindow::new(slot_ns);
        let mut now = 0u64;
        let mut obs = Vec::new();
        for (dt, good) in deltas {
            now = now.saturating_add(dt);
            w.record(now, good);
            obs.push((now / slot_ns, good));
        }
        let current = now / slot_ns;
        let mut exact = WindowCounts::default();
        for &(wi, good) in &obs {
            if wi + SLOTS > current {
                if good {
                    exact.good += 1;
                } else {
                    exact.bad += 1;
                }
            }
        }
        let got = w.sliding(now);
        prop_assert_eq!(got.good, exact.good, "good counts diverged");
        prop_assert_eq!(got.bad, exact.bad, "bad counts diverged");
        prop_assert_eq!(got.total(), exact.good + exact.bad);
    }

    /// Merging split windows equals counting the concatenation.
    #[test]
    fn window_counts_merge_is_associative_concat(
        flags in vec(any::<bool>(), 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(flags.len());
        let count = |xs: &[bool]| {
            let mut c = WindowCounts::default();
            for &g in xs {
                if g { c.good += 1 } else { c.bad += 1 }
            }
            c
        };
        let mut merged = count(&flags[..split]);
        merged.merge(&count(&flags[split..]));
        let whole = count(&flags);
        prop_assert_eq!(merged.good, whole.good);
        prop_assert_eq!(merged.bad, whole.bad);
    }

    /// Hysteresis: a score sequence whose total swing is smaller than
    /// the narrowest hysteresis band moves the machine at most twice
    /// and can never revisit a state (no Warn↔Critical or Ok↔Warn
    /// flapping on boundary inputs). Flapping requires the score to
    /// cross a full `enter → exit` band.
    #[test]
    fn alert_machine_does_not_flap_within_a_band(
        base in 0u64..100,
        offsets in vec(0u64..10, 1..100),
    ) {
        let cfg = HealthConfig::default();
        let band = (cfg.warn_exit - cfg.warn_enter).min(cfg.crit_exit - cfg.crit_enter);
        let mut machine = AlertMachine::default();
        let mut transitions: Vec<(AlertState, AlertState)> = Vec::new();
        for &off in &offsets {
            // Swing stays strictly inside one band.
            let score = (base + off % band).min(100);
            if let Some((from, to, _reason)) = machine.step(&cfg, score, 0, 0) {
                transitions.push((from, to));
            }
        }
        prop_assert!(
            transitions.len() <= 2,
            "{} transitions from a sub-band swing: {transitions:?}",
            transitions.len()
        );
        // No state is ever revisited: each transition's `to` must be a
        // state the machine has not occupied before.
        let mut seen = vec![AlertState::Ok];
        for (_, to) in &transitions {
            prop_assert!(
                !seen.contains(to),
                "revisited {to:?}: flapping within a hysteresis band"
            );
            seen.push(*to);
        }
    }
}
