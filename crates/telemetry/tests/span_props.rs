//! Property tests for the PR10 span ring and tail-exemplar capture:
//! under *any* randomized begin/end/instant interleaving against a
//! small ring, drop-oldest eviction must (a) never reorder a retained
//! child before its retained parent, (b) account for every evicted
//! record and every orphaned `end` exactly — verified against an
//! independent model ring — and (c) the [`ExemplarHistogram`] must
//! capture an exemplar for every new-maximum (top-bucket) sample that
//! carries a span context, and never capture without one.

use proptest::collection::vec;
use proptest::prelude::*;
use tcpfo_telemetry::{
    ActiveSpan, ExemplarHistogram, LogHistogram, SpanContext, SpanId, SpanTrack, TraceId, Tracer,
};

/// One randomized tracer operation (decoded from a raw byte so the
/// strategy stays shrinkable).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Begin a span as a child of the innermost live span.
    Begin,
    /// End the innermost open span (an instant when none is open).
    End,
    /// Record a point event.
    Instant,
}

fn decode(raw: u8) -> Op {
    match raw % 3 {
        0 => Op::Begin,
        1 => Op::End,
        _ => Op::Instant,
    }
}

/// Replays `ops` against a real tracer and, in lockstep, against an
/// independent model of the ring (a plain Vec with drop-oldest
/// eviction). Returns the tracer plus the model's expectations.
struct Replay {
    tracer: Tracer,
    /// Ids the model says the ring retains, oldest first.
    model_ring: Vec<u64>,
    /// Records the model says were evicted.
    model_dropped: u64,
    /// `end` calls the model says arrived after their begin record
    /// was evicted.
    model_lost_ends: u64,
}

fn replay(capacity: usize, ops: &[u8]) -> Replay {
    let tracer = Tracer::attached(capacity);
    let mut model_ring: Vec<u64> = Vec::new();
    let mut model_dropped = 0u64;
    let mut model_lost_ends = 0u64;
    let mut open: Vec<ActiveSpan> = Vec::new();
    let mut now = 0u64;

    let push_model = |ring: &mut Vec<u64>, dropped: &mut u64, id: u64| {
        if ring.len() == capacity {
            ring.remove(0);
            *dropped += 1;
        }
        ring.push(id);
    };

    for &raw in ops {
        now += 1;
        match decode(raw) {
            Op::Begin => {
                let span = tracer
                    .begin(SpanTrack::Control, "props", "span", now)
                    .expect("attached tracer records");
                push_model(&mut model_ring, &mut model_dropped, span.ctx.span.0);
                open.push(span);
            }
            Op::End => match open.pop() {
                Some(span) => {
                    if !model_ring.contains(&span.ctx.span.0) {
                        model_lost_ends += 1;
                    }
                    tracer.end(&span, now);
                }
                None => {
                    tracer.instant(SpanTrack::Control, "props", "tick", now);
                    push_model(&mut model_ring, &mut model_dropped, 0);
                }
            },
            Op::Instant => {
                tracer.instant(SpanTrack::Control, "props", "tick", now);
                push_model(&mut model_ring, &mut model_dropped, 0);
            }
        }
    }

    Replay {
        tracer,
        model_ring,
        model_dropped,
        model_lost_ends,
    }
}

proptest! {
    /// Drop-oldest eviction can only remove from the front, and begin
    /// records enter the ring at begin time — so among *retained*
    /// records a child never precedes its parent, no matter how the
    /// ring churned.
    #[test]
    fn retained_spans_keep_parent_before_child_order(
        capacity in 1usize..24,
        ops in vec(any::<u8>(), 1..240),
    ) {
        let r = replay(capacity, &ops);
        let records = r.tracer.records();
        for (child_pos, child) in records.iter().enumerate() {
            if child.parent.is_none() {
                continue;
            }
            if let Some(parent_pos) =
                records.iter().position(|p| p.id == child.parent)
            {
                prop_assert!(
                    parent_pos < child_pos,
                    "retained parent {:?} at {} must precede child {:?} at {}",
                    child.parent, parent_pos, child.id, child_pos,
                );
            }
        }
        // Retained records all belong to the configured window.
        prop_assert!(records.len() <= capacity);
    }

    /// The ring's loss accounting is exact: every pushed record is
    /// either retained or counted in `dropped()`, and every `end`
    /// whose begin record was already evicted is counted in
    /// `lost_ends()` — verified against an independent model ring.
    #[test]
    fn drops_and_lost_ends_are_exactly_counted(
        capacity in 1usize..24,
        ops in vec(any::<u8>(), 1..240),
    ) {
        let r = replay(capacity, &ops);
        prop_assert_eq!(r.tracer.len(), r.model_ring.len(), "retained count matches model");
        prop_assert_eq!(r.tracer.dropped(), r.model_dropped, "dropped count matches model");
        prop_assert_eq!(
            r.tracer.lost_ends(), r.model_lost_ends,
            "orphaned ends match model",
        );
        let pushed = r.tracer.len() as u64 + r.tracer.dropped();
        let begins_and_instants = ops
            .iter()
            .scan(0usize, |depth, &raw| {
                Some(match decode(raw) {
                    Op::Begin => {
                        *depth += 1;
                        1u64
                    }
                    Op::End if *depth > 0 => {
                        *depth -= 1;
                        0
                    }
                    // `End` with nothing open degrades to an instant.
                    Op::End | Op::Instant => 1,
                })
            })
            .sum::<u64>();
        prop_assert_eq!(pushed, begins_and_instants, "no record is lost unaccounted");
        // Retained span ids appear in the model's order (instants
        // modelled as id 0 are skipped — they are unordered markers).
        let real: Vec<u64> = r
            .tracer
            .records()
            .iter()
            .map(|rec| rec.id.0)
            .filter(|id| r.model_ring.contains(id))
            .collect();
        let modelled: Vec<u64> =
            r.model_ring.iter().copied().filter(|&id| id != 0).collect();
        prop_assert_eq!(real, modelled, "retained window matches the model ring");
    }

    /// A sample that lands in the histogram's top bucket (any new
    /// maximum qualifies: the capture floor re-bases to the p99.9
    /// bucket, which can never exceed the maximum's bucket) always
    /// captures an exemplar when a span context is attached — and a
    /// context-free record never captures.
    #[test]
    fn top_bucket_sample_always_captures_exemplar_when_attached(
        base in vec(1u64..1 << 30, 1..200),
        extra in 0u64..1 << 30,
        trace in 1u64..u64::MAX,
        span in 1u64..u64::MAX,
    ) {
        let ctx = SpanContext { trace: TraceId(trace), span: SpanId(span) };
        let mut with_ctx: ExemplarHistogram<48> = ExemplarHistogram::new();
        let mut without_ctx: ExemplarHistogram<48> = ExemplarHistogram::new();
        for (i, &v) in base.iter().enumerate() {
            with_ctx.record_ctx(v, i as u64, Some(ctx));
            without_ctx.record_ctx(v, i as u64, None);
        }
        // A new maximum: at or above everything recorded so far.
        let tail = base.iter().copied().max().unwrap_or(1).saturating_add(extra);
        let before = with_ctx.exemplars().captured();
        with_ctx.record_ctx(tail, 99, Some(ctx));
        let bucket = LogHistogram::<48>::bucket_of(tail);
        let e = with_ctx
            .exemplars()
            .for_bucket(bucket)
            .expect("top-bucket sample must capture an exemplar");
        prop_assert_eq!(e.value, tail);
        prop_assert_eq!(e.at_ns, 99);
        prop_assert_eq!(e.ctx, ctx, "exemplar links the active span context");
        prop_assert_eq!(
            with_ctx.exemplars().captured(), before + 1,
            "exactly one capture per top-bucket record",
        );
        without_ctx.record_ctx(tail, 99, None);
        prop_assert_eq!(
            without_ctx.exemplars().captured(), 0,
            "no context, no capture",
        );
    }
}
