//! Property tests for the §5 MTTR decomposition: under *any*
//! randomized detection / egress-hold / translation / ARP / first-byte
//! timings — including zero-length phases — the per-phase deltas of
//! [`MttrBreakdown`] must sum exactly to the timeline's client-visible
//! total (the quantity `FailoverTiming.mttr` carries through the
//! bench layer), and a non-monotone timeline must refuse to decompose
//! rather than emit negative-looking wrapped deltas.

use proptest::collection::vec;
use proptest::prelude::*;
use tcpfo_telemetry::{FailoverPhase, FailoverTimeline, MttrBreakdown};

/// Marks a timeline from a base timestamp plus five phase gaps
/// (failure at `base`, each later phase after its gap).
fn timeline_from_gaps(base: u64, gaps: [u64; 5]) -> FailoverTimeline {
    let t = FailoverTimeline::new();
    let mut now = base;
    t.mark(FailoverPhase::Failure, now);
    for (phase, gap) in FailoverPhase::ALL[1..].iter().zip(gaps) {
        now += gap;
        t.mark(*phase, now);
    }
    t
}

proptest! {
    /// The decomposition always exists for a complete monotone
    /// timeline and its deltas reproduce the gaps and sum to the
    /// timeline's total — even when some (or all) phases are
    /// zero-length.
    #[test]
    fn breakdown_sums_to_mttr(
        base in 0u64..1u64 << 40,
        gaps in vec(0u64..1u64 << 40, 5),
    ) {
        let gaps: [u64; 5] = gaps.try_into().unwrap();
        let t = timeline_from_gaps(base, gaps);
        prop_assert!(t.is_complete());
        prop_assert!(t.is_monotone());
        let m = t.mttr().expect("complete monotone timeline decomposes");
        prop_assert_eq!(m.deltas(), gaps, "deltas reproduce the injected gaps");
        let total: u64 = m.deltas().iter().sum();
        prop_assert_eq!(total, m.total_ns, "per-phase sum must equal the MTTR");
        prop_assert_eq!(Some(m.total_ns), t.total_ns(), "total matches the timeline");
        // The JSON export carries the same invariant.
        let json = m.to_json();
        prop_assert!(json.contains(&format!("\"total_ns\": {}", m.total_ns)), "{}", json);
    }

    /// Zero-length phases collapse into their neighbours without
    /// stealing time: forcing any one gap to zero removes exactly that
    /// field from the sum.
    #[test]
    fn zero_length_phase_contributes_nothing(
        base in 0u64..1u64 << 40,
        gaps in vec(0u64..1u64 << 40, 5),
        zeroed in 0usize..5,
    ) {
        let mut gaps: [u64; 5] = gaps.try_into().unwrap();
        gaps[zeroed] = 0;
        let t = timeline_from_gaps(base, gaps);
        let m = t.mttr().expect("zero-length phases are legal");
        prop_assert_eq!(m.deltas()[zeroed], 0);
        prop_assert_eq!(m.deltas().iter().sum::<u64>(), m.total_ns);
    }

    /// A timeline with any out-of-order pair refuses to decompose:
    /// `from_timeline` returns `None` instead of wrapping a negative
    /// delta.
    #[test]
    fn non_monotone_never_decomposes(
        base in 1u64..1u64 << 40,
        gaps in vec(1u64..1u64 << 40, 5),
        swapped in 1usize..5,
    ) {
        let gaps: [u64; 5] = gaps.try_into().unwrap();
        // Build cumulative stamps, then pull one later phase before
        // its predecessor.
        let mut stamps = [base; 6];
        for i in 1..6 {
            stamps[i] = stamps[i - 1] + gaps[i - 1];
        }
        stamps[swapped] = stamps[swapped - 1] - 1;
        let t = FailoverTimeline::new();
        for (phase, stamp) in FailoverPhase::ALL.into_iter().zip(stamps) {
            t.mark(phase, stamp);
        }
        prop_assert!(!t.is_monotone());
        prop_assert_eq!(MttrBreakdown::from_timeline(&t), None);
        prop_assert_eq!(t.mttr(), None);
    }

    /// An incomplete timeline never decomposes, whichever phase is
    /// missing.
    #[test]
    fn incomplete_never_decomposes(
        base in 0u64..1u64 << 40,
        gaps in vec(0u64..1u64 << 40, 5),
        missing in 0usize..6,
    ) {
        let gaps: [u64; 5] = gaps.try_into().unwrap();
        let t = FailoverTimeline::new();
        let mut now = base;
        for (i, phase) in FailoverPhase::ALL.into_iter().enumerate() {
            if i > 0 {
                now += gaps[i - 1];
            }
            if i != missing {
                t.mark(phase, now);
            }
        }
        prop_assert!(!t.is_complete());
        prop_assert_eq!(t.mttr(), None);
    }
}
