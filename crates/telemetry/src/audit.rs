//! Online invariant auditor, causal trace ids, and the violation
//! flight recorder.
//!
//! The paper's correctness argument rests on invariants the bridge
//! must hold on **every** released segment (§3.2, §3.4, §5, §7):
//! client-facing bytes live in S's sequence space, `ack = min(ack_P,
//! ack_S)`, `win = min(win_P, win_S)`, `MSS = min(MSS_P, MSS_S)`, only
//! replica-matched bytes are released, a bare ACK is synthesised when
//! the minimum advances (§3.4), and takeover follows the §5 order
//! (egress hold → translation off → ARP takeover). The
//! [`InvariantAuditor`] is an *independent* observer a bridge can
//! carry: it re-derives all of that state from the segments it sees
//! and checks each egress event against the catalogue of [`Rule`]s.
//!
//! On a violation the auditor freezes a [flight-recorder
//! bundle](InvariantAuditor::bundle_path): the last-K causal trace
//! ring entries, a pcapng slice of recent segments (with the diverted
//! orig-dest option annotated per packet), the §5 failover timeline,
//! and the rule ledger.
//!
//! Attachment is optional (`TCPFO_AUDIT=1` or a builder flag) and the
//! bridges keep their zero-allocation steady-state path when detached.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use tcpfo_wire::eth::{EtherType, EthernetFrame};
use tcpfo_wire::ipv4::{Ipv4Addr, Ipv4Packet, PROTO_TCP};
use tcpfo_wire::mac::MacAddr;
use tcpfo_wire::pcapng::PcapngWriter;
use tcpfo_wire::tcp::{verify_segment_checksum, TcpFlags, TcpSegment, TcpView};

use crate::{fmt_nanos, FailoverPhase, Telemetry};

// ---------------------------------------------------------------------
// Wrapping sequence arithmetic (local copy: tcpfo-tcp depends on this
// crate, so the auditor cannot borrow its `seq` module)
// ---------------------------------------------------------------------

/// `a < b` in RFC 1982 wrapping order.
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a > b` in wrapping order.
fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` in wrapping order.
fn seq_ge(a: u32, b: u32) -> bool {
    !seq_lt(a, b)
}

/// Wrapping minimum.
fn seq_min(a: u32, b: u32) -> u32 {
    if seq_lt(a, b) {
        a
    } else {
        b
    }
}

// ---------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------

/// A causal trace id stamped on a segment when it enters the datapath
/// (client ingress or the local stack's outbox) and carried through
/// address translation, queue insert, match and release. `0` means
/// "not traced".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// The null id: the segment was never stamped.
    pub const NONE: TraceId = TraceId(0);

    /// Allocates a fresh process-unique id.
    pub fn fresh() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this id was actually stamped.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    /// `t<N>`, or `t-` when never stamped.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "t-")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Reads a `usize` capacity knob from the environment, falling back to
/// `default` when unset or unparsable.
pub fn env_capacity(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Whether `TCPFO_AUDIT` asks for auditor attachment.
pub fn env_audit_enabled() -> bool {
    std::env::var("TCPFO_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Tuning knobs for one [`InvariantAuditor`].
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Label used in reports, journal scopes and bundle names
    /// (e.g. `"primary"`).
    pub label: String,
    /// Capacity of the causal trace ring (`TCPFO_AUDIT_RING_CAP`).
    pub ring_capacity: usize,
    /// Capacity of the recent-segment ring the pcapng slice is built
    /// from (`TCPFO_AUDIT_PCAP_CAP`).
    pub pcap_capacity: usize,
    /// Verify one in `checksum_sample` released checksums by full
    /// recomputation (`TCPFO_AUDIT_SAMPLE`; RFC 1624 incremental
    /// updates must agree with the ground truth).
    pub checksum_sample: u64,
    /// Directory flight-recorder bundles are written under
    /// (`TCPFO_AUDIT_BUNDLE_DIR`).
    pub bundle_dir: PathBuf,
    /// Panic as soon as a rule is violated (after the bundle is
    /// written). Tests that *expect* violations turn this off.
    pub panic_on_violation: bool,
}

impl AuditConfig {
    /// Defaults without consulting the environment.
    pub fn new(label: &str) -> Self {
        AuditConfig {
            label: label.to_string(),
            ring_capacity: 1024,
            pcap_capacity: 256,
            checksum_sample: 16,
            bundle_dir: PathBuf::from("target/audit-bundles"),
            panic_on_violation: true,
        }
    }

    /// Defaults, then the `TCPFO_AUDIT_*` environment overrides.
    pub fn from_env(label: &str) -> Self {
        let mut c = AuditConfig::new(label);
        c.ring_capacity = env_capacity("TCPFO_AUDIT_RING_CAP", c.ring_capacity);
        c.pcap_capacity = env_capacity("TCPFO_AUDIT_PCAP_CAP", c.pcap_capacity);
        c.checksum_sample = env_capacity("TCPFO_AUDIT_SAMPLE", c.checksum_sample as usize) as u64;
        if let Some(dir) = std::env::var_os("TCPFO_AUDIT_BUNDLE_DIR") {
            c.bundle_dir = PathBuf::from(dir);
        }
        c
    }

    /// Builder: set [`AuditConfig::panic_on_violation`].
    pub fn panic_on_violation(mut self, yes: bool) -> Self {
        self.panic_on_violation = yes;
        self
    }

    /// Builder: set [`AuditConfig::bundle_dir`].
    pub fn bundle_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.bundle_dir = dir.into();
        self
    }
}

// ---------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------

/// The paper-invariant catalogue the auditor checks. Each rule cites
/// the section of *Transparent TCP Connection Failover* it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// §3.2: client-facing bytes are released in S's sequence space,
    /// in order at the matched watermark (or entirely below it for §4
    /// retransmission forwarding).
    SeqSpace,
    /// §3.2: every released acknowledgment is `min(ack_P, ack_S)`.
    AckMin,
    /// §3.2: every released window is `min(win_P, win_S)`.
    WinMin,
    /// §7: the merged SYN advertises `MSS = min(MSS_P, MSS_S)`.
    MssMin,
    /// §3.2: only bytes present in *both* replica output queues (after
    /// Δseq normalisation) are released, and a FIN only once both
    /// replicas closed at the same position.
    MatchedOnly,
    /// §3.2: the two replica byte streams agree byte-for-byte up to
    /// the matched watermark.
    QueueAgree,
    /// §3.4: when `min(ack)` advances, an acknowledging segment (data
    /// or bare ACK) is released before the event ends, so a
    /// delayed-ACK client never deadlocks against the server RTO.
    BareAck,
    /// RFC 1624: incrementally-maintained checksums equal a full
    /// recomputation (sampled 1-in-N).
    Checksum,
    /// §3.1/§3.3: address translation is faithful — diverted egress
    /// carries the orig-dest option to the upstream bridge, ingress is
    /// rewritten to the local replica, client acks gain Δseq.
    Translate,
    /// §5 step 1: while holding, no failover segment escapes toward
    /// the client.
    EgressHold,
    /// §5: takeover runs egress hold → translation off → ARP takeover,
    /// and the timeline phases are monotone.
    FailoverOrder,
    /// §1 daisy-chain generalisation of §5: a chain promotion commits
    /// only after the audit journal has recorded the decision
    /// (log-before-act), and decision/commit stamps are monotone.
    PromotionOrder,
}

impl Rule {
    /// Every rule, in ledger display order.
    pub const ALL: [Rule; 12] = [
        Rule::SeqSpace,
        Rule::AckMin,
        Rule::WinMin,
        Rule::MssMin,
        Rule::MatchedOnly,
        Rule::QueueAgree,
        Rule::BareAck,
        Rule::Checksum,
        Rule::Translate,
        Rule::EgressHold,
        Rule::FailoverOrder,
        Rule::PromotionOrder,
    ];

    /// Stable short identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SeqSpace => "seq_space",
            Rule::AckMin => "ack_min",
            Rule::WinMin => "win_min",
            Rule::MssMin => "mss_min",
            Rule::MatchedOnly => "matched_only",
            Rule::QueueAgree => "queue_agree",
            Rule::BareAck => "bare_ack",
            Rule::Checksum => "checksum",
            Rule::Translate => "translate",
            Rule::EgressHold => "egress_hold",
            Rule::FailoverOrder => "failover_order",
            Rule::PromotionOrder => "promotion_order",
        }
    }

    /// Paper section the rule encodes.
    pub fn paper_ref(self) -> &'static str {
        match self {
            Rule::SeqSpace => "§3.2",
            Rule::AckMin => "§3.2",
            Rule::WinMin => "§3.2",
            Rule::MssMin => "§7",
            Rule::MatchedOnly => "§3.2",
            Rule::QueueAgree => "§3.2",
            Rule::BareAck => "§3.4",
            Rule::Checksum => "RFC 1624",
            Rule::Translate => "§3.1/§3.3",
            Rule::EgressHold => "§5",
            Rule::FailoverOrder => "§5",
            Rule::PromotionOrder => "§1/§5",
        }
    }

    fn index(self) -> usize {
        Rule::ALL.iter().position(|r| *r == self).expect("in ALL")
    }
}

/// Per-rule check/violation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStat {
    /// Times the rule was evaluated.
    pub checks: u64,
    /// Times it failed.
    pub violations: u64,
}

/// The auditor's per-rule ledger.
#[derive(Debug, Clone, Default)]
pub struct RuleLedger {
    stats: [RuleStat; Rule::ALL.len()],
}

impl RuleLedger {
    /// Counters for one rule.
    pub fn stat(&self, rule: Rule) -> RuleStat {
        self.stats[rule.index()]
    }

    /// Total evaluations across all rules.
    pub fn total_checks(&self) -> u64 {
        self.stats.iter().map(|s| s.checks).sum()
    }

    /// Total violations across all rules.
    pub fn total_violations(&self) -> u64 {
        self.stats.iter().map(|s| s.violations).sum()
    }

    fn note_check(&mut self, rule: Rule) {
        self.stats[rule.index()].checks += 1;
    }

    fn note_violation(&mut self, rule: Rule) {
        self.stats[rule.index()].violations += 1;
    }

    /// Aligned text table of the ledger.
    pub fn to_table(&self) -> String {
        let mut out = String::from("rule            paper      checks  violations\n");
        for rule in Rule::ALL {
            let s = self.stat(rule);
            out.push_str(&format!(
                "{:<15} {:<9} {:>8}  {:>10}\n",
                rule.id(),
                rule.paper_ref(),
                s.checks,
                s.violations
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Trace ring + recent-segment ring
// ---------------------------------------------------------------------

/// What a trace-ring entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEventKind {
    /// Segment from the unreplicated peer entered the bridge.
    ClientIngress,
    /// The primary replica's stack emitted a segment.
    PrimaryOut,
    /// A diverted secondary segment arrived (S→P leg).
    SecondaryDiverted,
    /// The bridge released a client-facing segment.
    Release,
    /// The bridge handed a segment up to the local stack.
    DeliverUp,
    /// Bytes entered a shadow replica stream (queue insert).
    QueueInsert,
    /// Secondary-side egress (diverted, held, or post-takeover).
    SecondaryEgress,
    /// A mode or §5 takeover step transition.
    Phase,
    /// Anything else worth remembering.
    Note,
}

impl fmt::Display for AuditEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditEventKind::ClientIngress => "client_in",
            AuditEventKind::PrimaryOut => "primary_out",
            AuditEventKind::SecondaryDiverted => "diverted_in",
            AuditEventKind::Release => "release",
            AuditEventKind::DeliverUp => "deliver_up",
            AuditEventKind::QueueInsert => "queue_insert",
            AuditEventKind::SecondaryEgress => "secondary_out",
            AuditEventKind::Phase => "phase",
            AuditEventKind::Note => "note",
        };
        f.write_str(s)
    }
}

/// Decoded header scalars of a ring-entry segment. Kept unformatted so
/// a steady-state ring push is a field copy; rendering happens only
/// when a human (or a violation) asks for the ring.
#[derive(Debug, Clone, Copy)]
pub struct SegSummary {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Advertised window.
    pub win: u16,
    /// Payload length.
    pub len: u32,
    /// Original-destination option, when the segment carries one.
    pub orig_dest: Option<(Ipv4Addr, u16)>,
}

impl fmt::Display for SegSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}→{}:{} {} seq={} ack={} win={} len={}",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.win,
            self.len
        )?;
        if let Some((oip, oport)) = self.orig_dest {
            write!(f, " orig-dest={oip}:{oport}")?;
        }
        Ok(())
    }
}

/// A ring entry's payload: raw segment or queue-insert scalars on the
/// hot path, pre-rendered text for cold phase notes.
#[derive(Debug, Clone)]
pub enum AuditDetail {
    /// Pre-rendered text (phase transitions, takeover steps).
    Text(String),
    /// Segment header scalars, rendered lazily.
    Seg(SegSummary),
    /// A shadow-stream (queue) insert, rendered lazily.
    QueueInsert {
        /// Connection the bytes belong to.
        key: AuditKey,
        /// Primary (`true`) or secondary replica stream.
        primary: bool,
        /// Offset relative to the stream base.
        rel: u64,
        /// Inserted byte count.
        len: u32,
        /// Release watermark at insert time.
        watermark: u64,
    },
}

impl fmt::Display for AuditDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditDetail::Text(s) => f.write_str(s),
            AuditDetail::Seg(s) => s.fmt(f),
            AuditDetail::QueueInsert {
                key,
                primary,
                rel,
                len,
                watermark,
            } => write!(
                f,
                "conn {key} {}q insert rel={rel} len={len} (watermark {watermark})",
                if *primary { "p" } else { "s" }
            ),
        }
    }
}

impl From<String> for AuditDetail {
    fn from(s: String) -> Self {
        AuditDetail::Text(s)
    }
}

impl From<&str> for AuditDetail {
    fn from(s: &str) -> Self {
        AuditDetail::Text(s.to_string())
    }
}

impl From<SegSummary> for AuditDetail {
    fn from(s: SegSummary) -> Self {
        AuditDetail::Seg(s)
    }
}

/// One entry of the causal trace ring.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Sim time of the event.
    pub at_ns: u64,
    /// Trace id of the segment involved (if any).
    pub trace: TraceId,
    /// Event class.
    pub kind: AuditEventKind,
    /// Details (addresses, seq/ack, lengths), rendered on demand.
    pub detail: AuditDetail,
}

impl AuditEvent {
    /// One-line rendering.
    pub fn summary(&self) -> String {
        format!(
            "[{:>10}] {:<6} {:<13} {}",
            fmt_nanos(self.at_ns),
            self.trace.to_string(),
            self.kind.to_string(),
            self.detail
        )
    }
}

/// A recently-seen raw segment, kept so the flight recorder can dump a
/// pcapng slice around the violation.
#[derive(Debug, Clone)]
struct SegmentRecord {
    at_ns: u64,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    bytes: Bytes,
    trace: TraceId,
    tag: &'static str,
}

// ---------------------------------------------------------------------
// Shadow replica streams
// ---------------------------------------------------------------------

/// One interval of replica payload in the shadow stream, keyed by its
/// offset relative to the stream base (S's ISN + 1).
#[derive(Debug, Clone)]
struct ShadowSeg {
    data: Vec<u8>,
    trace: TraceId,
}

/// An independent reassembly buffer for one replica's byte stream,
/// normalised into S's sequence space. Mirrors the bridge's output
/// queue semantics: inserts clip below the released watermark, and
/// overlapping re-sends must carry identical bytes.
#[derive(Debug, Clone, Default)]
struct ShadowStream {
    segs: BTreeMap<u64, ShadowSeg>,
    /// Everything below this relative offset was released and trimmed.
    trimmed: u64,
}

impl ShadowStream {
    /// Inserts `data` at relative offset `at`. Returns the offset of
    /// the first mismatching overlapped byte, if any.
    fn insert(&mut self, at: u64, data: &[u8], trace: TraceId) -> Result<(), u64> {
        let mut start = at;
        let mut buf = data;
        if start < self.trimmed {
            let skip = (self.trimmed - start).min(buf.len() as u64) as usize;
            buf = &buf[skip..];
            start += skip as u64;
        }
        let mut pos = start;
        let end = start + buf.len() as u64;
        while pos < end {
            // An existing interval covering `pos`?
            let covering = self
                .segs
                .range(..=pos)
                .next_back()
                .map(|(s, seg)| (*s, s + seg.data.len() as u64))
                .filter(|(_, e)| *e > pos);
            if let Some((estart, eend)) = covering {
                let upto = eend.min(end);
                let existing =
                    &self.segs[&estart].data[(pos - estart) as usize..(upto - estart) as usize];
                let fresh = &buf[(pos - start) as usize..(upto - start) as usize];
                if existing != fresh {
                    let off = existing
                        .iter()
                        .zip(fresh)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0) as u64;
                    return Err(pos + off);
                }
                pos = upto;
                continue;
            }
            // Gap: insert up to the next interval (or `end`).
            let gap_end = self
                .segs
                .range(pos..)
                .next()
                .map(|(s, _)| *s)
                .unwrap_or(end)
                .min(end);
            self.segs.insert(
                pos,
                ShadowSeg {
                    data: buf[(pos - start) as usize..(gap_end - start) as usize].to_vec(),
                    trace,
                },
            );
            pos = gap_end;
        }
        Ok(())
    }

    /// The bytes of `[at, at+len)` if fully present, else `None`.
    fn get(&self, at: u64, len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut pos = at;
        let end = at + len as u64;
        while pos < end {
            let (estart, seg) = self
                .segs
                .range(..=pos)
                .next_back()
                .filter(|(s, seg)| *s + (seg.data.len() as u64) > pos)?;
            let eend = estart + seg.data.len() as u64;
            let upto = eend.min(end);
            out.extend_from_slice(&seg.data[(pos - estart) as usize..(upto - estart) as usize]);
            pos = upto;
        }
        Some(out)
    }

    /// Whether `[at, at+data.len())` is fully present — and if so,
    /// whether it equals `data` — without copying.
    fn matches(&self, at: u64, data: &[u8]) -> Option<bool> {
        let mut pos = at;
        let end = at + data.len() as u64;
        let mut eq = true;
        while pos < end {
            let (estart, seg) = self
                .segs
                .range(..=pos)
                .next_back()
                .filter(|(s, seg)| *s + (seg.data.len() as u64) > pos)?;
            let eend = estart + seg.data.len() as u64;
            let upto = eend.min(end);
            eq &= seg.data[(pos - estart) as usize..(upto - estart) as usize]
                == data[(pos - at) as usize..(upto - at) as usize];
            pos = upto;
        }
        Some(eq)
    }

    /// Trace ids contributing to `[at, at+len)`.
    fn traces(&self, at: u64, len: usize) -> Vec<TraceId> {
        let end = at + len as u64;
        let mut out = Vec::new();
        for (s, seg) in self.segs.range(..end) {
            if s + (seg.data.len() as u64) > at && !out.contains(&seg.trace) {
                out.push(seg.trace);
            }
        }
        out
    }

    /// Drops everything below relative offset `upto` (released bytes).
    fn trim(&mut self, upto: u64) {
        if upto <= self.trimmed {
            return;
        }
        let mut reinsert = None;
        let keys: Vec<u64> = self.segs.range(..upto).map(|(s, _)| *s).collect();
        for s in keys {
            let seg = self.segs.remove(&s).expect("key present");
            let eend = s + seg.data.len() as u64;
            if eend > upto {
                reinsert = Some((
                    upto,
                    ShadowSeg {
                        data: seg.data[(upto - s) as usize..].to_vec(),
                        trace: seg.trace,
                    },
                ));
            }
        }
        if let Some((s, seg)) = reinsert {
            self.segs.insert(s, seg);
        }
        self.trimmed = upto;
    }

    /// Buffered byte count (diagnostics).
    fn buffered(&self) -> usize {
        self.segs.values().map(|s| s.data.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Per-connection shadow state
// ---------------------------------------------------------------------

/// Connection key in the auditor's tables: the unreplicated peer plus
/// the replicated server port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuditKey {
    /// Peer (client) address.
    pub peer_ip: Ipv4Addr,
    /// Peer (client) port.
    pub peer_port: u16,
    /// Server-side port of the replicated service.
    pub server_port: u16,
}

impl fmt::Display for AuditKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}→:{}",
            self.peer_ip, self.peer_port, self.server_port
        )
    }
}

#[derive(Debug, Clone, Default)]
struct AuditConn {
    p_isn: Option<u32>,
    s_isn: Option<u32>,
    mss_p: Option<u16>,
    mss_s: Option<u16>,
    ack_p: Option<u32>,
    ack_s: Option<u32>,
    win_p: u16,
    win_s: u16,
    /// SYN+ACK acknowledgment values (client-initiated handshakes).
    syn_ack_p: Option<u32>,
    syn_ack_s: Option<u32>,
    /// Shadow streams in S-space relative offsets (base = s_isn + 1).
    p_stream: ShadowStream,
    s_stream: ShadowStream,
    p_fin: Option<u64>,
    s_fin: Option<u64>,
    /// Next relative offset the bridge should release.
    send_next: u64,
    /// Merged SYN released — the connection is established.
    syn_released: bool,
    fin_released: bool,
    /// Highest acknowledgment the bridge has released to the client.
    last_ack_released: Option<u32>,
    /// Client teardown mirror (absolute, S space).
    client_acked: Option<u32>,
    client_fin: Option<u32>,
    closed: bool,
}

impl AuditConn {
    fn delta(&self) -> Option<u32> {
        Some(self.p_isn?.wrapping_sub(self.s_isn?))
    }

    fn base(&self) -> Option<u32> {
        Some(self.s_isn?.wrapping_add(1))
    }

    /// Relative offset of an absolute S-space sequence number.
    fn rel(&self, seq: u32) -> Option<u64> {
        Some(seq.wrapping_sub(self.base()?) as u64)
    }

    fn min_ack(&self) -> Option<u32> {
        match (self.ack_p, self.ack_s) {
            (Some(p), Some(s)) => Some(seq_min(p, s)),
            _ => None,
        }
    }

    fn min_win(&self) -> u16 {
        self.win_p.min(self.win_s)
    }

    /// Mirror of the bridge's §8 teardown condition.
    fn teardown_reached(&self) -> bool {
        let Some(client_acked) = self.client_acked else {
            return false;
        };
        let server_done = self.fin_released
            && self
                .base()
                .is_some_and(|b| seq_ge(client_acked, b.wrapping_add(self.send_next as u32)));
        let client_done = match (self.client_fin, self.min_ack()) {
            (Some(f), Some(m)) => seq_gt(m, f),
            _ => false,
        };
        server_done && client_done
    }
}

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that failed.
    pub rule: Rule,
    /// Sim time.
    pub at_ns: u64,
    /// Trace id of the offending segment.
    pub trace: TraceId,
    /// What went wrong (expected vs observed).
    pub detail: String,
    /// The causal chain: trace-ring entries related to the violation.
    pub chain: Vec<String>,
}

impl Violation {
    /// Multi-line human rendering, including the causal chain.
    pub fn render(&self) -> String {
        let mut out = format!(
            "invariant violation [{} {}] at {} ({}): {}\n",
            self.rule.id(),
            self.rule.paper_ref(),
            fmt_nanos(self.at_ns),
            self.trace,
            self.detail
        );
        if !self.chain.is_empty() {
            out.push_str("causal chain:\n");
            for line in &self.chain {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// §5 takeover steps the secondary-side auditor sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TakeoverStep {
    /// Step 1: hold client-bound egress.
    EgressHold,
    /// Steps 3–4: both address translations disabled.
    TranslationOff,
}

/// The secondary bridge's mode as seen by the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondaryPhase {
    /// Normal replica operation (egress diverted to the upstream).
    Active,
    /// §5 step 1: holding.
    Holding,
    /// Takeover complete: bridge is a pass-through.
    Disabled,
}

static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------
// The auditor
// ---------------------------------------------------------------------

/// An independent online checker for the paper's bridge invariants.
/// One instance is attached per bridge; the bridge reports every
/// ingress/egress event and the auditor re-derives the connection
/// state (Δseq, acks, windows, shadow byte streams) and checks each
/// release against the [`Rule`] catalogue. See the module docs.
pub struct InvariantAuditor {
    cfg: AuditConfig,
    hub: Option<Telemetry>,
    ledger: RuleLedger,
    ring: VecDeque<AuditEvent>,
    ring_dropped: u64,
    pcap: VecDeque<SegmentRecord>,
    conns: HashMap<AuditKey, AuditConn>,
    violations: Vec<Violation>,
    bundle: Option<PathBuf>,
    releases_seen: u64,
    /// §6 degraded mode: per-connection checks are suspended.
    degraded: bool,
    /// §5 takeover steps observed, in order.
    steps: Vec<TakeoverStep>,
    first_takeover_byte_checked: bool,
    now_ns: u64,
    /// Connection touched by the current event (for the §3.4 check).
    touched: Option<AuditKey>,
    /// Client-ingress ack awaiting the Δseq-translated deliver-up.
    pending_ack: Option<(AuditKey, u32)>,
    /// Secondary ingress awaiting the a_p→a_s rewrite.
    pending_translate: Option<AuditKey>,
    /// Chain promotion decision stamp (log-before-act): set when the
    /// controller journals the promotion decision, cleared when the
    /// commit is checked against it.
    promotion_decided_at: Option<u64>,
    /// Latest replica health / replication-lag JSON snapshot, pushed
    /// by the bridge's telemetry sync when the health observatory is
    /// also attached; lands in flight-recorder bundles as
    /// `health.json` so every invariant violation captures replica
    /// health at fault time.
    health_snapshot: Option<String>,
}

impl fmt::Debug for InvariantAuditor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvariantAuditor")
            .field("label", &self.cfg.label)
            .field("conns", &self.conns.len())
            .field("checks", &self.ledger.total_checks())
            .field("violations", &self.ledger.total_violations())
            .finish()
    }
}

impl InvariantAuditor {
    /// Creates a detached-from-telemetry auditor.
    pub fn new(cfg: AuditConfig) -> Self {
        InvariantAuditor {
            cfg,
            hub: None,
            ledger: RuleLedger::default(),
            ring: VecDeque::new(),
            ring_dropped: 0,
            pcap: VecDeque::new(),
            conns: HashMap::new(),
            violations: Vec::new(),
            bundle: None,
            releases_seen: 0,
            degraded: false,
            steps: Vec::new(),
            first_takeover_byte_checked: false,
            now_ns: 0,
            touched: None,
            pending_ack: None,
            pending_translate: None,
            promotion_decided_at: None,
            health_snapshot: None,
        }
    }

    /// Stores the latest replica health / replication-lag snapshot for
    /// inclusion in flight-recorder bundles. Called from the bridge's
    /// host-tick telemetry sync, never from the per-packet path.
    pub fn set_health_snapshot(&mut self, json: String) {
        self.health_snapshot = Some(json);
    }

    /// Connects the telemetry hub so violations reach the journal and
    /// the flight recorder can bundle the timeline.
    pub fn with_hub(mut self, hub: &Telemetry) -> Self {
        self.hub = Some(hub.clone());
        self
    }

    /// The rule ledger.
    pub fn ledger(&self) -> &RuleLedger {
        &self.ledger
    }

    /// Recorded violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The flight-recorder bundle directory, once one was written.
    pub fn bundle_path(&self) -> Option<&PathBuf> {
        self.bundle.as_ref()
    }

    /// The last `n` trace-ring entries.
    pub fn ring_tail(&self, n: usize) -> Vec<AuditEvent> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip).cloned().collect()
    }

    /// Human-readable auditor state: ledger, shadow connections, and
    /// any violations.
    pub fn report(&self) -> String {
        let mut out = format!(
            "auditor [{}]: {} checks, {} violations, {} shadow conns, ring {} (+{} dropped)\n",
            self.cfg.label,
            self.ledger.total_checks(),
            self.ledger.total_violations(),
            self.conns.len(),
            self.ring.len(),
            self.ring_dropped
        );
        out.push_str(&self.ledger.to_table());
        for (key, c) in &self.conns {
            out.push_str(&format!(
                "conn {key}: delta={:?} established={} send_next={} pq={}B sq={}B ack_p={:?} ack_s={:?} win=({},{}) last_ack_released={:?}\n",
                c.delta(),
                c.syn_released,
                c.send_next,
                c.p_stream.buffered(),
                c.s_stream.buffered(),
                c.ack_p,
                c.ack_s,
                c.win_p,
                c.win_s,
                c.last_ack_released,
            ));
        }
        for v in &self.violations {
            out.push_str(&v.render());
        }
        out
    }

    // -----------------------------------------------------------------
    // Ring + recording plumbing
    // -----------------------------------------------------------------

    fn push_event(&mut self, kind: AuditEventKind, trace: TraceId, detail: impl Into<AuditDetail>) {
        if self.ring.len() >= self.cfg.ring_capacity {
            self.ring.pop_front();
            self.ring_dropped += 1;
        }
        self.ring.push_back(AuditEvent {
            at_ns: self.now_ns,
            trace,
            kind,
            detail: detail.into(),
        });
    }

    fn push_pcap(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
        tag: &'static str,
    ) {
        if self.pcap.len() >= self.cfg.pcap_capacity {
            self.pcap.pop_front();
        }
        self.pcap.push_back(SegmentRecord {
            at_ns: self.now_ns,
            src,
            dst,
            bytes: bytes.clone(),
            trace,
            tag,
        });
    }

    fn seg_detail(src: Ipv4Addr, dst: Ipv4Addr, view: &TcpView<'_>) -> SegSummary {
        SegSummary {
            src,
            dst,
            src_port: view.src_port(),
            dst_port: view.dst_port(),
            flags: view.flags(),
            seq: view.seq(),
            ack: view.ack(),
            win: view.window(),
            len: view.payload().len() as u32,
            orig_dest: view.orig_dest(),
        }
    }

    fn key_for_egress(dst: Ipv4Addr, view: &TcpView<'_>) -> AuditKey {
        AuditKey {
            peer_ip: dst,
            peer_port: view.dst_port(),
            server_port: view.src_port(),
        }
    }

    fn key_for_ingress(src: Ipv4Addr, view: &TcpView<'_>) -> AuditKey {
        AuditKey {
            peer_ip: src,
            peer_port: view.src_port(),
            server_port: view.dst_port(),
        }
    }

    // -----------------------------------------------------------------
    // Violation path
    // -----------------------------------------------------------------

    fn check(&mut self, rule: Rule, ok: bool, trace: TraceId, detail: impl FnOnce() -> String) {
        self.ledger.note_check(rule);
        if ok {
            return;
        }
        self.ledger.note_violation(rule);
        let chain = self.chain_for(trace);
        let v = Violation {
            rule,
            at_ns: self.now_ns,
            trace,
            detail: detail(),
            chain,
        };
        if let Some(hub) = &self.hub {
            hub.journal.record(
                self.now_ns,
                &format!("audit.{}", self.cfg.label),
                "violation",
                &[
                    ("rule", rule.id().to_string()),
                    ("detail", v.detail.clone()),
                ],
            );
        }
        eprintln!("{}", v.render());
        self.violations.push(v);
        if self.bundle.is_none() {
            match self.write_bundle() {
                Ok(path) => {
                    eprintln!(
                        "audit[{}]: flight-recorder bundle written to {}",
                        self.cfg.label,
                        path.display()
                    );
                    self.bundle = Some(path);
                }
                Err(e) => eprintln!("audit[{}]: bundle write failed: {e}", self.cfg.label),
            }
        }
        if self.cfg.panic_on_violation {
            let last = self.violations.last().expect("just pushed");
            panic!(
                "{}(flight-recorder bundle: {})",
                last.render(),
                self.bundle
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "unavailable".into())
            );
        }
    }

    /// Trace-ring entries sharing the violating trace id, plus the
    /// event tail for context.
    fn chain_for(&self, trace: TraceId) -> Vec<String> {
        let mut chain: Vec<String> = self
            .ring
            .iter()
            .filter(|e| trace.is_some() && e.trace == trace)
            .map(|e| e.summary())
            .collect();
        let tail_from = self.ring.len().saturating_sub(12);
        for e in self.ring.iter().skip(tail_from) {
            let line = e.summary();
            if !chain.contains(&line) {
                chain.push(line);
            }
        }
        chain
    }

    // -----------------------------------------------------------------
    // Flight recorder
    // -----------------------------------------------------------------

    /// Writes the flight-recorder bundle (rule ledger + violations,
    /// trace ring, pcapng slice, timeline + journal) and returns its
    /// directory.
    pub fn write_bundle(&self) -> std::io::Result<PathBuf> {
        let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            self.cfg
                .bundle_dir
                .join(format!("{}-{}-{}", self.cfg.label, std::process::id(), seq));
        std::fs::create_dir_all(&dir)?;
        let mut ledger = self.ledger.to_table();
        ledger.push('\n');
        for v in &self.violations {
            ledger.push_str(&v.render());
        }
        std::fs::write(dir.join("ledger.txt"), ledger)?;
        let ring: String = self.ring.iter().map(|e| e.summary() + "\n").collect();
        std::fs::write(dir.join("trace_ring.txt"), ring)?;
        std::fs::write(dir.join("capture.pcapng"), self.pcap_slice())?;
        if let Some(hub) = &self.hub {
            std::fs::write(dir.join("timeline.json"), hub.timeline.to_json())?;
            std::fs::write(dir.join("journal.json"), hub.journal.to_json())?;
            // PR 10: the failover span dump rides in every bundle —
            // machine-readable spans plus the Chrome/Perfetto-loadable
            // trace with the exact MTTR waterfall merged in.
            if hub.trace.is_attached() {
                std::fs::write(dir.join("spans.json"), hub.trace.to_json())?;
                let waterfall = crate::span::waterfall_records(&hub.timeline, &hub.redundancy);
                std::fs::write(
                    dir.join("trace.chrome.json"),
                    hub.trace.chrome_trace(&waterfall),
                )?;
            }
        }
        if let Some(health) = &self.health_snapshot {
            std::fs::write(dir.join("health.json"), health)?;
        }
        Ok(dir)
    }

    /// The recent-segment ring as a pcapng capture. Every packet
    /// carries a comment block with its trace id and direction; the
    /// diverted S→P leg is annotated with the decoded orig-dest option
    /// so captures are self-describing.
    pub fn pcap_slice(&self) -> Vec<u8> {
        let mut w = PcapngWriter::new(&format!("audit-{}", self.cfg.label));
        for rec in &self.pcap {
            let ip = Ipv4Packet::new(rec.src, rec.dst, PROTO_TCP, rec.bytes.clone());
            let frame = EthernetFrame::new(
                MacAddr::from_index(u32::from(rec.dst.octets()[3])),
                MacAddr::from_index(u32::from(rec.src.octets()[3])),
                EtherType::Ipv4,
                ip.encode(),
            )
            .encode();
            let mut comment = format!("{} {}", rec.tag, rec.trace);
            if let Ok(view) = TcpView::new(&rec.bytes) {
                if let Some((oip, oport)) = view.orig_dest() {
                    comment.push_str(&format!(" diverted S→P leg, orig-dest={oip}:{oport}"));
                }
            }
            w.packet_with_comment(rec.at_ns, &frame, Some(&comment));
        }
        w.finish()
    }

    // -----------------------------------------------------------------
    // Event lifecycle (called by the bridges)
    // -----------------------------------------------------------------

    /// Starts one filter event (one segment through the bridge).
    pub fn begin_event(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.touched = None;
        self.pending_ack = None;
        self.pending_translate = None;
    }

    /// Ends the event: runs the deferred §3.4 bare-ACK rule for the
    /// touched connection.
    pub fn end_event(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        let Some(key) = self.touched.take() else {
            return;
        };
        let Some(conn) = self.conns.get(&key) else {
            return;
        };
        if self.degraded || !conn.syn_released || conn.closed {
            return;
        }
        let (Some(m), last) = (conn.min_ack(), conn.last_ack_released) else {
            return;
        };
        let ok = last.is_some_and(|l| seq_ge(l, m));
        let lastv = last;
        self.check(Rule::BareAck, ok, TraceId::NONE, || {
            format!(
                "conn {key}: min(ack_P, ack_S)={m} advanced but last released ack is {lastv:?} — \
                 no bare ACK was synthesised before the event ended"
            )
        });
        // Mirror the bridge's §8 teardown so late-FIN tombstone ACKs
        // are not misjudged against a dead connection's state.
        if let Some(conn) = self.conns.get_mut(&key) {
            if conn.teardown_reached() {
                conn.closed = true;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Primary-side observations
// ---------------------------------------------------------------------

impl InvariantAuditor {
    /// §6: the bridge degraded to Δ-adjusted pass-through — suspend
    /// per-connection checking (the min/matched rules no longer apply).
    pub fn note_degraded(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.degraded = true;
        self.conns.clear();
        self.push_event(
            AuditEventKind::Phase,
            TraceId::NONE,
            "degraded: secondary failed, per-conn rules suspended (§6)",
        );
    }

    /// The secondary reintegrated: new connections replicate again.
    pub fn note_reintegrated(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.degraded = false;
        self.push_event(
            AuditEventKind::Phase,
            TraceId::NONE,
            "reintegrated: new connections audited again",
        );
    }

    /// A segment from the unreplicated peer entered the bridge.
    pub fn note_client_ingress(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
        designated: bool,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::ClientIngress, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "client_in");
        if !designated {
            return;
        }
        let key = Self::key_for_ingress(src, &view);
        let flags = view.flags();
        if flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::ACK) && !self.degraded {
            self.conns.entry(key).or_default();
        }
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.closed {
            return;
        }
        self.touched = Some(key);
        if flags.contains(TcpFlags::ACK) {
            let ack = view.ack();
            conn.client_acked = Some(match conn.client_acked {
                Some(a) if seq_gt(a, ack) => a,
                _ => ack,
            });
            if conn.delta().is_some() && !flags.contains(TcpFlags::SYN) {
                self.pending_ack = Some((key, ack));
            }
        }
        if flags.contains(TcpFlags::FIN) {
            conn.client_fin = Some(view.seq().wrapping_add(view.payload().len() as u32));
        }
    }

    /// The primary replica's stack emitted a designated segment.
    pub fn note_primary_out(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::PrimaryOut, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "primary_out");
        if self.degraded {
            return;
        }
        let key = Self::key_for_egress(dst, &view);
        self.observe_replica(key, true, bytes, trace);
    }

    /// A diverted secondary segment (with orig-dest option) arrived.
    pub fn note_secondary_diverted(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::SecondaryDiverted, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "diverted_in");
        if self.degraded {
            return;
        }
        let Some((orig_ip, orig_port)) = view.orig_dest() else {
            return;
        };
        let key = AuditKey {
            peer_ip: orig_ip,
            peer_port: orig_port,
            server_port: view.src_port(),
        };
        self.observe_replica(key, false, bytes, trace);
    }

    /// Shared replica-segment shadowing: ISNs, acks, windows, FIN
    /// positions, and the shadow byte stream (queue-insert mirror).
    fn observe_replica(&mut self, key: AuditKey, is_primary: bool, bytes: &Bytes, trace: TraceId) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let flags = view.flags();
        if flags.contains(TcpFlags::SYN) {
            // Learn the replica ISN and handshake parameters. MSS needs
            // the options, so take the full decode (cold path).
            let mss = TcpSegment::decode(bytes).ok().and_then(|s| s.mss());
            let conn = self.conns.entry(key).or_default();
            if is_primary {
                conn.p_isn = Some(view.seq());
                conn.win_p = view.window();
                conn.mss_p = mss;
                if flags.contains(TcpFlags::ACK) {
                    conn.syn_ack_p = Some(view.ack());
                    conn.ack_p = Some(view.ack());
                }
            } else {
                conn.s_isn = Some(view.seq());
                conn.win_s = view.window();
                conn.mss_s = mss;
                if flags.contains(TcpFlags::ACK) {
                    conn.syn_ack_s = Some(view.ack());
                    conn.ack_s = Some(view.ack());
                }
            }
            self.touched = Some(key);
            return;
        }
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.closed {
            return;
        }
        self.touched = Some(key);
        if flags.contains(TcpFlags::ACK) {
            if is_primary {
                conn.ack_p = Some(view.ack());
                conn.win_p = view.window();
            } else {
                conn.ack_s = Some(view.ack());
                conn.win_s = view.window();
            }
        }
        let Some(delta) = conn.delta() else {
            return;
        };
        // Normalise into S (client-facing) space.
        let seq = if is_primary {
            view.seq().wrapping_sub(delta)
        } else {
            view.seq()
        };
        if flags.contains(TcpFlags::RST) {
            // The bridge forwards a translated RST and drops state.
            conn.closed = true;
            return;
        }
        let Some(rel) = conn.rel(seq) else { return };
        let payload = view.payload();
        if flags.contains(TcpFlags::FIN) {
            let fin_rel = rel + payload.len() as u64;
            if is_primary {
                conn.p_fin = Some(fin_rel);
            } else {
                conn.s_fin = Some(fin_rel);
            }
        }
        if !payload.is_empty() {
            let stream = if is_primary {
                &mut conn.p_stream
            } else {
                &mut conn.s_stream
            };
            let watermark = conn.send_next;
            if stream.trimmed < watermark {
                stream.trimmed = watermark;
            }
            let res = stream.insert(rel, payload, trace);
            self.push_event(
                AuditEventKind::QueueInsert,
                trace,
                AuditDetail::QueueInsert {
                    key,
                    primary: is_primary,
                    rel,
                    len: payload.len() as u32,
                    watermark,
                },
            );
            if let Err(off) = res {
                let who = if is_primary { "primary" } else { "secondary" };
                self.check(Rule::QueueAgree, false, trace, || {
                    format!(
                        "conn {key}: {who} replica re-sent different bytes at stream offset {off} \
                         (overlapping retransmission diverged from the recorded stream)"
                    )
                });
            }
        }
    }

    /// A client-facing segment left the bridge: the main rule gate.
    pub fn check_release(&mut self, src: Ipv4Addr, dst: Ipv4Addr, bytes: &Bytes, trace: TraceId) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::Release, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "release");
        self.releases_seen += 1;
        if self.cfg.checksum_sample > 0
            && self.releases_seen.is_multiple_of(self.cfg.checksum_sample)
        {
            let ok = verify_segment_checksum(src, dst, bytes);
            self.check(Rule::Checksum, ok, trace, || {
                format!(
                    "released segment {src}→{dst} fails full checksum recomputation \
                     (incremental RFC 1624 update drifted)"
                )
            });
        }
        if self.degraded {
            return;
        }
        let key = Self::key_for_egress(dst, &view);
        if !self.conns.contains_key(&key) {
            return; // tombstone/late-FIN traffic: no shadow state left.
        }
        let flags = view.flags();
        if flags.contains(TcpFlags::RST) {
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.closed = true;
            }
            return;
        }
        if self.conns[&key].closed {
            return;
        }
        if flags.contains(TcpFlags::SYN) {
            self.check_syn_release(key, bytes, &view, trace);
            return;
        }
        self.check_data_release(key, &view, trace);
    }

    /// Rules on the merged SYN / SYN+ACK (§7): S's ISN, min window,
    /// min MSS, min ack.
    fn check_syn_release(
        &mut self,
        key: AuditKey,
        bytes: &Bytes,
        view: &TcpView<'_>,
        trace: TraceId,
    ) {
        let conn = &self.conns[&key];
        let (Some(p_isn), Some(s_isn)) = (conn.p_isn, conn.s_isn) else {
            // A merged SYN released before the auditor saw both replica
            // SYNs — it cannot have been merged from both.
            let seen = (conn.p_isn, conn.s_isn);
            self.check(Rule::MatchedOnly, false, trace, || {
                format!(
                    "conn {key}: SYN released before both replica SYNs were observed \
                     (p_isn, s_isn)={seen:?}"
                )
            });
            return;
        };
        let seq = view.seq();
        self.check(Rule::SeqSpace, seq == s_isn, trace, || {
            format!(
                "conn {key}: merged SYN uses seq={seq}, expected the secondary's ISN {s_isn} \
                 (primary ISN was {p_isn}; client-facing bytes must live in S's space)"
            )
        });
        let conn = &self.conns[&key];
        let (win, exp_win) = (view.window(), conn.min_win());
        self.check(Rule::WinMin, win == exp_win, trace, || {
            format!("conn {key}: merged SYN win={win}, expected min(win_P, win_S)={exp_win}")
        });
        let conn = &self.conns[&key];
        let mss = TcpSegment::decode(bytes).ok().and_then(|s| s.mss());
        let exp_mss = conn.mss_p.unwrap_or(536).min(conn.mss_s.unwrap_or(536));
        self.check(Rule::MssMin, mss == Some(exp_mss), trace, || {
            format!("conn {key}: merged SYN advertises MSS {mss:?}, expected min(MSS_P, MSS_S)={exp_mss}")
        });
        let conn = &self.conns[&key];
        if view.flags().contains(TcpFlags::ACK) {
            if let (Some(ap), Some(as_)) = (conn.syn_ack_p, conn.syn_ack_s) {
                let (ack, exp) = (view.ack(), seq_min(ap, as_));
                self.check(Rule::AckMin, ack == exp, trace, || {
                    format!(
                        "conn {key}: merged SYN+ACK acks {ack}, expected min(ack_P, ack_S)={exp}"
                    )
                });
            }
        }
        let conn = self.conns.get_mut(&key).expect("conn present");
        conn.syn_released = true;
        conn.send_next = 0;
        if view.flags().contains(TcpFlags::ACK) {
            conn.last_ack_released = Some(view.ack());
        }
    }

    /// Rules on data / FIN / bare-ACK releases.
    fn check_data_release(&mut self, key: AuditKey, view: &TcpView<'_>, trace: TraceId) {
        let conn = &self.conns[&key];
        if !conn.syn_released {
            self.check(Rule::MatchedOnly, false, trace, || {
                format!("conn {key}: data released before the merged SYN")
            });
            return;
        }
        let Some(rel) = conn.rel(view.seq()) else {
            return;
        };
        let len = view.payload().len();
        let has_fin = view.flags().contains(TcpFlags::FIN);
        let sn = conn.send_next;
        let end = rel + len as u64 + u64::from(has_fin);
        let pure_ack = len == 0 && !has_fin;
        // --- SeqSpace (§3.2 / §4) ---
        let seq_ok = if pure_ack {
            rel <= sn
        } else if end <= sn {
            true // §4 retransmission: entirely below the watermark.
        } else {
            rel == sn
        };
        let seqv = view.seq();
        self.check(Rule::SeqSpace, seq_ok, trace, || {
            format!(
                "conn {key}: released seq={seqv} (stream offset {rel}, len {len}, fin {has_fin}) \
                 is neither at the matched watermark ({sn}) nor a §4 retransmission below it"
            )
        });
        let retransmission = !pure_ack && end <= sn;
        // --- MatchedOnly + QueueAgree (§3.2) on fresh payload ---
        if len > 0 && !retransmission && rel == sn {
            let conn = &self.conns[&key];
            let released = view.payload();
            // Non-copying presence + equality probes; the expensive
            // diagnostics (contributor traces, first divergent byte)
            // are computed only when a rule is about to fail.
            let p_match = conn.p_stream.matches(rel, released);
            let s_match = conn.s_stream.matches(rel, released);
            let (p_has, s_has) = (p_match.is_some(), s_match.is_some());
            let agree = p_match.unwrap_or(false) && s_match.unwrap_or(false);
            let contributors: Vec<TraceId> = if p_has && s_has && agree {
                Vec::new()
            } else {
                conn.p_stream
                    .traces(rel, len)
                    .into_iter()
                    .chain(conn.s_stream.traces(rel, len))
                    .collect()
            };
            let first_div = if p_has && s_has && !agree {
                let p = conn.p_stream.get(rel, len).unwrap_or_default();
                let s = conn.s_stream.get(rel, len).unwrap_or_default();
                released
                    .iter()
                    .enumerate()
                    .find(|(i, b)| p.get(*i) != Some(b) || s.get(*i) != Some(b))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                0
            };
            self.check(Rule::MatchedOnly, p_has && s_has, trace, || {
                format!(
                    "conn {key}: released {len}B at offset {rel} not matched in both replica \
                     streams (primary has it: {p_has}, secondary has it: {s_has}; \
                     contributors {contributors:?})"
                )
            });
            if p_has && s_has {
                self.check(Rule::QueueAgree, agree, trace, || {
                    format!(
                        "conn {key}: released bytes diverge from the replica streams at \
                         offset {rel}+{first_div} (contributors {contributors:?})"
                    )
                });
            }
        }
        // --- FIN merge (§3.2/§8): both replicas closed here ---
        if has_fin && !retransmission {
            let conn = &self.conns[&key];
            let fin_at = rel + len as u64;
            let (pf, sf) = (conn.p_fin, conn.s_fin);
            self.check(
                Rule::MatchedOnly,
                pf == Some(fin_at) && sf == Some(fin_at),
                trace,
                || {
                    format!(
                        "conn {key}: FIN released at stream offset {fin_at} but replica FINs are \
                         p_fin={pf:?}, s_fin={sf:?} — a FIN may only be released once both \
                         replicas closed at the same position"
                    )
                },
            );
        }
        // --- AckMin / WinMin (§3.2) ---
        if view.flags().contains(TcpFlags::ACK) {
            let conn = &self.conns[&key];
            if let Some(exp) = conn.min_ack() {
                let ack = view.ack();
                let (ap, as_) = (conn.ack_p, conn.ack_s);
                self.check(Rule::AckMin, ack == exp, trace, || {
                    format!(
                        "conn {key}: released ack={ack}, expected min(ack_P, ack_S)=\
                         min({ap:?}, {as_:?})={exp}"
                    )
                });
            }
        }
        {
            let conn = &self.conns[&key];
            let (win, exp_win) = (view.window(), conn.min_win());
            self.check(Rule::WinMin, win == exp_win, trace, || {
                format!("conn {key}: released win={win}, expected min(win_P, win_S)={exp_win}")
            });
        }
        // --- advance the shadow watermark ---
        let conn = self.conns.get_mut(&key).expect("conn present");
        if !retransmission && rel == sn && (len > 0 || has_fin) {
            conn.send_next = end;
            conn.p_stream.trim(rel + len as u64);
            conn.s_stream.trim(rel + len as u64);
            if has_fin {
                conn.fin_released = true;
            }
        }
        if view.flags().contains(TcpFlags::ACK) {
            let ack = view.ack();
            conn.last_ack_released = Some(match conn.last_ack_released {
                Some(l) if seq_gt(l, ack) => l,
                _ => ack,
            });
        }
    }

    /// A segment was handed up to the local stack (Δseq ack
    /// translation on the primary, §3.3).
    pub fn check_deliver_up(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::DeliverUp, trace, detail);
        let Some((key, ingress_ack)) = self.pending_ack.take() else {
            return;
        };
        if self.degraded {
            return;
        }
        let Some(conn) = self.conns.get(&key) else {
            return;
        };
        let Some(delta) = conn.delta() else { return };
        if view.src_port() != key.peer_port || !view.flags().contains(TcpFlags::ACK) {
            return;
        }
        let exp = ingress_ack.wrapping_add(delta);
        let ack = view.ack();
        self.check(Rule::Translate, ack == exp, trace, || {
            format!(
                "conn {key}: client ack {ingress_ack} delivered up as {ack}, expected \
                 {ingress_ack}+Δseq({delta})={exp}"
            )
        });
    }

    /// A non-release segment left the bridge (e.g. a late-FIN ACK back
    /// to the secondary): ring entry only.
    pub fn note_other_egress(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        if let Ok(view) = TcpView::new(bytes) {
            let detail = Self::seg_detail(src, dst, &view);
            self.push_event(AuditEventKind::Note, trace, detail);
        }
    }
}

// ---------------------------------------------------------------------
// Secondary-side observations
// ---------------------------------------------------------------------

impl InvariantAuditor {
    /// §5: the secondary bridge stepped through its takeover sequence.
    /// Steps must arrive in order (egress hold before translation off).
    pub fn note_takeover_step(&mut self, step: TakeoverStep, now_ns: u64) {
        self.now_ns = now_ns;
        self.push_event(
            AuditEventKind::Phase,
            TraceId::NONE,
            format!("takeover step {step:?}"),
        );
        let ok = match step {
            TakeoverStep::EgressHold => true,
            TakeoverStep::TranslationOff => self.steps.contains(&TakeoverStep::EgressHold),
        };
        let steps = self.steps.clone();
        self.check(Rule::FailoverOrder, ok, TraceId::NONE, || {
            format!(
                "takeover step {step:?} arrived out of order (steps so far: {steps:?}); \
                 §5 requires egress hold → translation off → ARP takeover"
            )
        });
        self.steps.push(step);
    }

    /// Chain control plane: the controller decided to promote this
    /// replica and journaled the decision. Log-before-act: this must
    /// precede [`InvariantAuditor::note_promotion_committed`].
    pub fn note_promotion_decision(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.push_event(
            AuditEventKind::Phase,
            TraceId::NONE,
            format!("promotion decided at {now_ns}ns"),
        );
        self.promotion_decided_at = Some(now_ns);
    }

    /// Chain control plane: the promotion was committed (topology
    /// mutated, VIP taken). Checks the N-way §5 generalisation: a
    /// decision record must already exist and must not postdate the
    /// commit.
    pub fn note_promotion_committed(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.push_event(
            AuditEventKind::Phase,
            TraceId::NONE,
            format!("promotion committed at {now_ns}ns"),
        );
        let decided = self.promotion_decided_at;
        let ok = decided.is_some_and(|d| d <= now_ns);
        self.check(Rule::PromotionOrder, ok, TraceId::NONE, || {
            format!(
                "promotion committed at {now_ns}ns without a prior journaled \
                 decision (decided_at: {decided:?}); the chain rule requires \
                 audit-log-before-act"
            )
        });
    }

    /// A segment from the client arrived at the secondary bridge.
    #[allow(clippy::too_many_arguments)]
    pub fn note_secondary_ingress(
        &mut self,
        a_p: Ipv4Addr,
        a_s: Ipv4Addr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
        designated: bool,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::ClientIngress, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "client_in");
        if dst != a_p || src == a_s || !designated {
            return;
        }
        let key = Self::key_for_ingress(src, &view);
        if view.flags().contains(TcpFlags::SYN) {
            self.conns.entry(key).or_default();
        }
        if self.conns.contains_key(&key) {
            // Mirror of the bridge's seen-gate: witnessed connections
            // must be claimed (rewritten to a_s).
            self.pending_translate = Some(key);
        }
    }

    /// The a_p→a_s ingress rewrite result reached the local stack.
    pub fn check_secondary_deliver_up(
        &mut self,
        a_s: Ipv4Addr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::DeliverUp, trace, detail);
        let Some(key) = self.pending_translate.take() else {
            return;
        };
        self.check(Rule::Translate, dst == a_s, trace, || {
            format!(
                "conn {key}: designated client ingress delivered up addressed to {dst}, \
                 expected the a_p→a_s rewrite to {a_s} (§3.1)"
            )
        });
        self.releases_seen += 1;
        if self.cfg.checksum_sample > 0
            && self.releases_seen.is_multiple_of(self.cfg.checksum_sample)
        {
            let ok = verify_segment_checksum(src, dst, bytes);
            self.check(Rule::Checksum, ok, trace, || {
                format!("conn {key}: a_p→a_s rewritten segment fails full checksum recomputation")
            });
        }
    }

    /// A segment left the secondary bridge toward the wire. `phase` is
    /// the bridge's mode when the event ran; `upstream` the divert
    /// target.
    #[allow(clippy::too_many_arguments)]
    pub fn check_secondary_egress(
        &mut self,
        phase: SecondaryPhase,
        a_p: Ipv4Addr,
        a_s: Ipv4Addr,
        upstream: Ipv4Addr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
        trace: TraceId,
    ) {
        let Ok(view) = TcpView::new(bytes) else {
            return;
        };
        let detail = Self::seg_detail(src, dst, &view);
        self.push_event(AuditEventKind::SecondaryEgress, trace, detail);
        self.push_pcap(src, dst, bytes, trace, "secondary_out");
        let diverted = view.orig_dest().is_some();
        // Does this egress belong to a witnessed failover connection?
        let conn_key = if let Some((oip, oport)) = view.orig_dest() {
            Some(AuditKey {
                peer_ip: oip,
                peer_port: oport,
                server_port: view.src_port(),
            })
        } else {
            let k = Self::key_for_egress(dst, &view);
            self.conns.contains_key(&k).then_some(k)
        };
        match phase {
            SecondaryPhase::Active => {
                if let Some(key) = conn_key {
                    let ok = diverted && dst == upstream;
                    self.check(Rule::Translate, ok, trace, || {
                        format!(
                            "conn {key}: active-mode failover egress must be diverted to the \
                             upstream bridge {upstream} with the orig-dest option \
                             (diverted={diverted}, dst={dst})"
                        )
                    });
                    self.releases_seen += 1;
                    if self.cfg.checksum_sample > 0
                        && self.releases_seen.is_multiple_of(self.cfg.checksum_sample)
                    {
                        let ok = verify_segment_checksum(src, dst, bytes);
                        self.check(Rule::Checksum, ok, trace, || {
                            format!(
                                "conn {key}: diverted egress fails full checksum recomputation \
                                 after the orig-dest push + pseudo-header rewrite"
                            )
                        });
                    }
                }
            }
            SecondaryPhase::Holding => {
                // §5 step 1: nothing belonging to a failover connection
                // may escape (the bridge must drop it).
                let escaped = conn_key.is_some() && src == a_s && dst != a_p;
                let key = conn_key;
                self.check(Rule::EgressHold, !escaped, trace, || {
                    format!(
                        "conn {key:?}: failover egress escaped toward {dst} while the bridge \
                         was holding (§5 step 1 requires dropping client-bound egress)"
                    )
                });
            }
            SecondaryPhase::Disabled => {
                if !self.first_takeover_byte_checked
                    && !view.payload().is_empty()
                    && dst != a_p
                    && dst != a_s
                {
                    self.first_takeover_byte_checked = true;
                    self.check_takeover_order(trace);
                }
            }
        }
    }

    /// §5 ordering at the first post-takeover client byte: both local
    /// steps happened (in order) and the shared timeline is monotone
    /// with the ARP takeover marked.
    fn check_takeover_order(&mut self, trace: TraceId) {
        let steps_ok = self.steps == vec![TakeoverStep::EgressHold, TakeoverStep::TranslationOff]
            || self.steps.windows(2).all(|w| w[0] <= w[1]);
        let steps = self.steps.clone();
        let have_both = steps.contains(&TakeoverStep::EgressHold)
            && steps.contains(&TakeoverStep::TranslationOff);
        self.check(Rule::FailoverOrder, steps_ok && have_both, trace, || {
            format!(
                "first post-takeover client byte sent, but the §5 step sequence was {steps:?} \
                 (need egress hold, then translation off, before serving the client)"
            )
        });
        if let Some(hub) = self.hub.clone() {
            let hold = hub.timeline.at(FailoverPhase::EgressHold);
            let arp = hub.timeline.at(FailoverPhase::ArpTakeover);
            let monotone = hub.timeline.is_monotone();
            let ok = monotone
                && match (hold, arp) {
                    (Some(h), Some(a)) => h <= a,
                    _ => false,
                };
            self.check(Rule::FailoverOrder, ok, trace, || {
                format!(
                    "first post-takeover client byte sent with timeline egress_hold={hold:?} \
                     arp_takeover={arp:?} monotone={monotone} — §5 order not respected"
                )
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_unique_and_display() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a, b);
        assert!(a.is_some());
        assert!(TraceId::NONE.is_none());
        assert_eq!(TraceId::NONE.to_string(), "t-");
        assert_eq!(TraceId(7).to_string(), "t7");
    }

    #[test]
    fn shadow_stream_inserts_and_matches() {
        let mut s = ShadowStream::default();
        s.insert(0, b"hello", TraceId(1)).unwrap();
        s.insert(5, b" world", TraceId(2)).unwrap();
        assert_eq!(s.get(0, 11), Some(b"hello world".to_vec()));
        assert_eq!(s.get(3, 4), Some(b"lo w".to_vec()));
        assert_eq!(s.get(8, 10), None);
        // Identical overlap is fine; divergent overlap reports offset.
        s.insert(0, b"hello", TraceId(3)).unwrap();
        assert_eq!(s.insert(4, b"X", TraceId(4)), Err(4));
        let traces = s.traces(0, 11);
        assert!(traces.contains(&TraceId(1)) && traces.contains(&TraceId(2)));
        s.trim(5);
        assert_eq!(s.get(0, 5), None);
        assert_eq!(s.get(5, 6), Some(b" world".to_vec()));
        // Inserts below the trim watermark are clipped silently.
        s.insert(0, b"XXXXX", TraceId(5)).unwrap();
        assert_eq!(s.get(5, 6), Some(b" world".to_vec()));
    }

    #[test]
    fn shadow_stream_gap_then_fill() {
        let mut s = ShadowStream::default();
        s.insert(10, b"cd", TraceId(1)).unwrap();
        assert_eq!(s.get(8, 4), None);
        s.insert(8, b"ab", TraceId(2)).unwrap();
        assert_eq!(s.get(8, 4), Some(b"abcd".to_vec()));
        // Straddling insert verifies the overlapped middle.
        s.insert(9, b"bcde", TraceId(3)).unwrap();
        assert_eq!(s.get(8, 5), Some(b"abcde".to_vec()));
    }

    #[test]
    fn ledger_counts_and_rule_metadata() {
        let mut l = RuleLedger::default();
        l.note_check(Rule::AckMin);
        l.note_check(Rule::AckMin);
        l.note_violation(Rule::AckMin);
        assert_eq!(l.stat(Rule::AckMin).checks, 2);
        assert_eq!(l.stat(Rule::AckMin).violations, 1);
        assert_eq!(l.total_checks(), 2);
        let table = l.to_table();
        assert!(table.contains("ack_min"));
        assert!(table.contains("§3.2"));
        for r in Rule::ALL {
            assert!(!r.id().is_empty());
            assert!(!r.paper_ref().is_empty());
        }
    }

    #[test]
    fn env_capacity_parses() {
        assert_eq!(env_capacity("TCPFO_DEFINITELY_UNSET_KNOB", 42), 42);
    }

    #[test]
    fn takeover_out_of_order_is_flagged() {
        let cfg = AuditConfig::new("test").panic_on_violation(false);
        let mut a = InvariantAuditor::new(cfg);
        a.note_takeover_step(TakeoverStep::TranslationOff, 1_000);
        assert_eq!(a.ledger().stat(Rule::FailoverOrder).violations, 1);
        assert!(!a.violations().is_empty());
        assert!(a.violations()[0].render().contains("out of order"));
    }

    #[test]
    fn takeover_in_order_is_clean() {
        let cfg = AuditConfig::new("test").panic_on_violation(false);
        let mut a = InvariantAuditor::new(cfg);
        a.note_takeover_step(TakeoverStep::EgressHold, 1_000);
        a.note_takeover_step(TakeoverStep::TranslationOff, 2_000);
        assert_eq!(a.ledger().stat(Rule::FailoverOrder).violations, 0);
        assert_eq!(a.ledger().stat(Rule::FailoverOrder).checks, 2);
    }
}
