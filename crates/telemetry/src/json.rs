//! A tiny hand-rolled JSON writer.
//!
//! The build environment has no registry access, so instead of a
//! `serde_json` dependency the exposition layer emits JSON through
//! this module: string escaping plus a small object/array builder.
//! Output is deterministic (insertion order is preserved).

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An object builder producing pretty-printed JSON with two-space
/// indentation. Values are pre-rendered JSON fragments.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a field whose value is already rendered JSON.
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, quote(value))
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Renders the object, indenting nested fragments one level.
    pub fn render(&self) -> String {
        if self.fields.is_empty() {
            return "{}".to_string();
        }
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&quote(key));
            out.push_str(": ");
            out.push_str(&reindent(value));
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered element fragments.
pub fn array(elements: &[String]) -> String {
    if elements.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, e) in elements.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&reindent(e));
        if i + 1 < elements.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Shifts the continuation lines of a nested fragment right by one
/// indentation level so nesting stays aligned.
fn reindent(fragment: &str) -> String {
    let mut lines = fragment.lines();
    let mut out = lines.next().unwrap_or_default().to_string();
    for line in lines {
        out.push('\n');
        out.push_str("  ");
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_and_array_render() {
        let mut inner = JsonObject::new();
        inner.u64("n", 3);
        let mut obj = JsonObject::new();
        obj.string("name", "x").raw("inner", inner.render());
        let doc = obj.render();
        assert!(doc.contains("\"name\": \"x\""), "{doc}");
        assert!(doc.contains("\"n\": 3"), "{doc}");
        assert_eq!(array(&[]), "[]");
        let arr = array(&["1".to_string(), "2".to_string()]);
        assert!(arr.starts_with("[\n  1,\n  2\n]"), "{arr}");
    }
}
