//! The latency observatory (PR 5).
//!
//! The paper's headline claims are *temporal* — bounded client-visible
//! interruption (§5) and negligible bridge overhead (§6) — so the
//! datapath needs latency distributions, not just throughput counters.
//! This module provides the measurement primitives:
//!
//! * [`LogHistogram`] — a fixed-size, zero-allocation log2-bucket
//!   histogram (HDR-style). Plain `u64` arrays, no atomics, no heap:
//!   recording is an array increment, so shard workers keep private
//!   copies and [`LogHistogram::merge`] combines them losslessly.
//!   The const-generic bucket count picks the dynamic range;
//!   [`HostHistogram`] (host nanoseconds, per-stage CPU cost) and
//!   [`SimHistogram`] (simulated nanoseconds, e.g. MTTR samples) are
//!   the two time-base variants.
//! * [`Stage`] / [`StageLatency`] — the five hot-path stages every
//!   bridge segment passes through (ingress parse, flow-table lookup,
//!   queue match, checksum fixup, egress emit), each with its own
//!   histogram.
//! * [`HostClock`] — a monotonic host-time source anchored at first
//!   use. The simulated clock does not advance *within* one segment's
//!   processing, so per-stage cost must be host time; everything else
//!   in this crate stays on sim time.
//! * [`LatencyObservatory`] — the per-bridge aggregate, attached
//!   behind the same one-`Option` branch as the invariant auditor so
//!   the detached hot path stays allocation- and clock-read-free
//!   (the PR 2 zero-alloc proof covers it).
//!
//! # Example
//!
//! ```
//! use tcpfo_telemetry::latency::{HostHistogram, Stage, StageLatency};
//!
//! let mut a = StageLatency::new();
//! let mut b = StageLatency::new();
//! a.record(Stage::IngressParse, 120);
//! b.record(Stage::IngressParse, 90);
//! a.merge(&b); // shard-local copies merge losslessly
//! assert_eq!(a.stage(Stage::IngressParse).count(), 2);
//! let mut h = HostHistogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! assert!(h.quantile(0.5) >= 500 && h.quantile(0.5) <= 1000);
//! ```

use std::sync::OnceLock;
use std::time::Instant;

use crate::json::JsonObject;
use crate::registry::{Gauge, Histogram, Scope};

/// Bucket count for host-time (per-stage CPU cost) histograms: covers
/// 0 .. ~2^38 ns ≈ 4.6 minutes, far beyond any per-segment cost.
pub const HOST_LAT_BUCKETS: usize = 40;

/// Bucket count for sim-time histograms (MTTR phases, stalls): covers
/// 0 .. ~2^46 ns ≈ 19.5 hours of simulated time.
pub const SIM_LAT_BUCKETS: usize = 48;

/// Host-time latency histogram (nanoseconds from [`HostClock`]).
pub type HostHistogram = LogHistogram<HOST_LAT_BUCKETS>;

/// Sim-time latency histogram (nanoseconds of simulated time).
pub type SimHistogram = LogHistogram<SIM_LAT_BUCKETS>;

/// A fixed-size log2-bucket histogram. Value 0 lands in bucket 0,
/// value `v > 0` in bucket `64 - leading_zeros(v)` (i.e. values in
/// `[2^(i-1), 2^i)` share bucket `i`), and everything at or above
/// `2^(N-2)` saturates into the top bucket. No heap, no atomics:
/// `record` is two array writes, so the struct is `Copy` and shard
/// workers merge private copies with [`LogHistogram::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHistogram<const N: usize> {
    buckets: [u64; N],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl<const N: usize> Default for LogHistogram<N> {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl<const N: usize> LogHistogram<N> {
    /// An empty histogram. `N` must be at least 2 (one bucket for
    /// zero, one for everything else).
    pub const fn new() -> Self {
        assert!(N >= 2, "LogHistogram needs at least 2 buckets");
        LogHistogram {
            buckets: [0; N],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `v` falls into (top bucket saturates).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(N - 1)
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1).min(63)
        }
    }

    /// Inclusive upper bound of bucket `i` (the top bucket is open:
    /// it reports `u64::MAX`).
    pub fn bucket_high(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= N - 1 || i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value in one step — the
    /// bulk form the under-load recorder uses to re-base whole bucket
    /// populations onto an intended-time axis.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges `other` into `self`. Loses nothing: bucket counts,
    /// count, sum, min and max all combine exactly, so merging is
    /// associative and commutative across shard-local copies.
    pub fn merge(&mut self, other: &Self) {
        for i in 0..N {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts (index `i` as in [`LogHistogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; N] {
        &self.buckets
    }

    /// Clears every bucket.
    pub fn reset(&mut self) {
        *self = LogHistogram::new();
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound
    /// of the bucket holding the rank-`⌈q·count⌉` observation, clamped
    /// to the recorded maximum. For any observation set this brackets
    /// the exact quantile `x` as `x ≤ quantile(q) ≤ max(2·x, 1)` —
    /// the log2-bucket resolution guarantee the proptests pin down.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for i in 0..N {
            seen += self.buckets[i];
            if seen >= rank {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// The `q`-quantile together with its trustworthiness: when the
    /// rank lands in the open top bucket, the log2 bracketing
    /// guarantee is gone — the only honest statement is "the true
    /// quantile is ≥ the bucket floor". [`Quantile::saturated`] flags
    /// exactly that, so under-load tail reports can say "≥ 274s"
    /// instead of silently presenting the clamped value as resolved.
    pub fn quantile_report(&self, q: f64) -> Quantile {
        if self.count == 0 {
            return Quantile {
                value: 0,
                floor: 0,
                saturated: false,
            };
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut bucket = N - 1;
        for i in 0..N {
            seen += self.buckets[i];
            if seen >= rank {
                bucket = i;
                break;
            }
        }
        Quantile {
            value: Self::bucket_high(bucket).min(self.max),
            floor: Self::bucket_low(bucket),
            saturated: bucket == N - 1,
        }
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Renders the histogram as a JSON object: summary scalars, the
    /// three headline quantiles (with top-bucket saturation flags),
    /// and the non-empty `[low, high, count]` buckets.
    pub fn to_json(&self) -> String {
        let p99 = self.quantile_report(0.99);
        let p999 = self.quantile_report(0.999);
        let mut obj = JsonObject::new();
        obj.u64("count", self.count)
            .u64("sum", self.sum)
            .u64("min", self.min())
            .u64("max", self.max)
            .u64("p50", self.p50())
            .u64("p99", p99.value)
            .u64("p999", p999.value)
            .raw("p99_saturated", p99.saturated.to_string())
            .raw("p999_saturated", p999.saturated.to_string());
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| format!("[{}, {}, {c}]", Self::bucket_low(i), Self::bucket_high(i)))
            .collect();
        obj.raw("buckets", crate::json::array(&buckets));
        obj.render()
    }
}

/// A quantile estimate with its resolution caveat. Produced by
/// [`LogHistogram::quantile_report`]: `value` is the usual
/// bucket-upper-bound estimate clamped to the observed maximum, and
/// `floor` the inclusive lower bound of the bucket the rank landed in.
/// When `saturated` is set the rank fell into the *open* top bucket,
/// where the factor-of-two bracketing guarantee no longer holds — the
/// honest reading is then "≥ `floor`", which is exactly how
/// [`Quantile::fmt_ns`] renders it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantile {
    /// Bucket upper bound clamped to the observed maximum.
    pub value: u64,
    /// Inclusive lower bound of the selected bucket.
    pub floor: u64,
    /// Whether the rank landed in the open (saturated) top bucket.
    pub saturated: bool,
}

impl Quantile {
    /// Human rendering: the value in time units, prefixed with `≥` and
    /// demoted to the bucket floor when the top bucket saturated.
    pub fn fmt_ns(&self) -> String {
        if self.saturated {
            format!("≥{}", crate::fmt_nanos(self.floor))
        } else {
            crate::fmt_nanos(self.value)
        }
    }
}

/// The five hot-path stages a segment passes through inside a bridge,
/// in datapath order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Frame decode + TCP header parse on bridge entry.
    IngressParse,
    /// Flow-table shard lookup (and LRU touch) for the segment's key.
    FlowLookup,
    /// §3.2 shadow-queue matching: P/S watermark merge and release
    /// decision.
    QueueMatch,
    /// Address / sequence translation and incremental checksum fixup.
    ChecksumFixup,
    /// Serialising the released segment into the output rope.
    EgressEmit,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 5;

    /// All stages in datapath order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::IngressParse,
        Stage::FlowLookup,
        Stage::QueueMatch,
        Stage::ChecksumFixup,
        Stage::EgressEmit,
    ];

    /// Stable lowercase name used in metric names and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngressParse => "ingress_parse",
            Stage::FlowLookup => "flow_lookup",
            Stage::QueueMatch => "queue_match",
            Stage::ChecksumFixup => "checksum_fixup",
            Stage::EgressEmit => "egress_emit",
        }
    }

    /// Dense index (position in [`Stage::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Stage::IngressParse => 0,
            Stage::FlowLookup => 1,
            Stage::QueueMatch => 2,
            Stage::ChecksumFixup => 3,
            Stage::EgressEmit => 4,
        }
    }
}

/// One host-time histogram per [`Stage`]. `Copy` and heap-free like
/// its histograms, so parallel shard workers record into private
/// copies that merge back deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageLatency {
    stages: [HostHistogram; Stage::COUNT],
}

impl Default for StageLatency {
    fn default() -> Self {
        StageLatency::new()
    }
}

impl StageLatency {
    /// All-empty stage histograms.
    pub const fn new() -> Self {
        StageLatency {
            stages: [HostHistogram::new(); Stage::COUNT],
        }
    }

    /// Records `ns` into `stage`'s histogram.
    #[inline]
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    /// The histogram for `stage`.
    pub fn stage(&self, stage: Stage) -> &HostHistogram {
        &self.stages[stage.index()]
    }

    /// Merges another stage set (e.g. a shard worker's private copy).
    pub fn merge(&mut self, other: &StageLatency) {
        for i in 0..Stage::COUNT {
            self.stages[i].merge(&other.stages[i]);
        }
    }

    /// Total observations across all stages.
    pub fn total_count(&self) -> u64 {
        self.stages.iter().map(|h| h.count()).sum()
    }

    /// Clears every stage histogram.
    pub fn reset(&mut self) {
        *self = StageLatency::new();
    }

    /// Renders all stages as one JSON object keyed by stage name.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for s in Stage::ALL {
            obj.raw(s.name(), self.stage(s).to_json());
        }
        obj.render()
    }

    /// Aligned text table (one row per stage) for the human exports.
    /// Quantiles that land in the saturated top bucket render as
    /// `≥<bucket floor>` rather than a fabricated point estimate.
    pub fn report(&self) -> String {
        let mut out =
            String::from("stage              count        p50        p99       p999        max\n");
        for s in Stage::ALL {
            let h = self.stage(s);
            out.push_str(&format!(
                "{:<18} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                s.name(),
                h.count(),
                h.quantile_report(0.5).fmt_ns(),
                h.quantile_report(0.99).fmt_ns(),
                h.quantile_report(0.999).fmt_ns(),
                crate::fmt_nanos(h.max()),
            ));
        }
        out
    }
}

/// Whether the `TCPFO_LATENCY` environment knob asks for the latency
/// observatory to be attached (any non-empty value other than `0`),
/// mirroring [`crate::audit::env_audit_enabled`].
pub fn env_latency_enabled() -> bool {
    std::env::var("TCPFO_LATENCY").is_ok_and(|v| !v.is_empty() && v != "0")
}

static HOST_ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic host-time source for per-stage cost measurement, anchored
/// at first use. Only read when an observatory is *attached*: the
/// detached hot path never touches it, so deterministic runs never
/// observe wall time.
#[derive(Debug, Clone, Copy)]
pub struct HostClock;

impl HostClock {
    /// Nanoseconds since the process-wide anchor (first call).
    #[inline]
    pub fn now_ns() -> u64 {
        HOST_ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Registry handles for one stage's published quantiles.
#[derive(Debug, Clone)]
struct StageGauges {
    p50: Gauge,
    p99: Gauge,
    p999: Gauge,
    max: Gauge,
    count: Gauge,
    hist: Histogram,
}

/// The per-bridge latency aggregate: per-stage host-time histograms
/// plus the registry plumbing that mirrors them out on every telemetry
/// sync. Boxed behind `Option` on the bridges (detached by default),
/// exactly like the invariant auditor, so the detached datapath pays
/// one branch and the PR 2 zero-alloc proof still holds.
#[derive(Debug, Default)]
pub struct LatencyObservatory {
    stages: StageLatency,
    /// High-water copy already mirrored into the registry; `publish`
    /// absorbs only the delta so registry histograms never double
    /// count.
    published: StageLatency,
    gauges: Option<Vec<StageGauges>>,
}

impl LatencyObservatory {
    /// An empty observatory.
    pub fn new() -> Self {
        LatencyObservatory::default()
    }

    /// Records `ns` of host time spent in `stage`.
    #[inline]
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages.record(stage, ns);
    }

    /// The accumulated per-stage histograms.
    pub fn stages(&self) -> &StageLatency {
        &self.stages
    }

    /// Mutable access to the per-stage histograms, for datapath code
    /// that records through a borrowed `&mut StageLatency` (the bridge
    /// engines) rather than the observatory handle itself.
    pub fn stages_mut(&mut self) -> &mut StageLatency {
        &mut self.stages
    }

    /// Merges a shard worker's private [`StageLatency`] copy.
    pub fn merge_stages(&mut self, other: &StageLatency) {
        self.stages.merge(other);
    }

    /// Mirrors the per-stage state into the registry under
    /// `scope.lat.<stage>.*`: quantile gauges (`p50_ns`, `p99_ns`,
    /// `p999_ns`, `max_ns`, `count`) plus a registry [`Histogram`]
    /// fed incrementally (delta since the previous publish) so the
    /// Prometheus exposition carries real bucket series.
    pub fn publish(&mut self, scope: &Scope, now_ns: u64) {
        let gauges = self.gauges.get_or_insert_with(|| {
            let lat = scope.scope("lat");
            Stage::ALL
                .iter()
                .map(|s| {
                    let sc = lat.scope(s.name());
                    StageGauges {
                        p50: sc.gauge("p50_ns"),
                        p99: sc.gauge("p99_ns"),
                        p999: sc.gauge("p999_ns"),
                        max: sc.gauge("max_ns"),
                        count: sc.gauge("count"),
                        hist: lat.histogram(s.name()),
                    }
                })
                .collect()
        });
        for s in Stage::ALL {
            let h = self.stages.stage(s);
            let g = &gauges[s.index()];
            g.p50.set_at(h.p50(), now_ns);
            g.p99.set_at(h.p99(), now_ns);
            g.p999.set_at(h.p999(), now_ns);
            g.max.set_at(h.max(), now_ns);
            g.count.set_at(h.count(), now_ns);
            let prev = self.published.stage(s);
            if h.count() > prev.count() {
                let delta_buckets: Vec<(usize, u64)> = h
                    .buckets()
                    .iter()
                    .zip(prev.buckets().iter())
                    .enumerate()
                    .filter(|(_, (now, before))| *now > *before)
                    .map(|(i, (now, before))| (i, now - before))
                    .collect();
                g.hist.absorb(
                    &delta_buckets,
                    h.count() - prev.count(),
                    h.sum().wrapping_sub(prev.sum()),
                    h.min(),
                    h.max(),
                );
            }
        }
        self.published = self.stages;
    }

    /// Human-readable per-stage table.
    pub fn report(&self) -> String {
        self.stages.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping() {
        type H = LogHistogram<8>;
        assert_eq!(H::bucket_of(0), 0);
        assert_eq!(H::bucket_of(1), 1);
        assert_eq!(H::bucket_of(2), 2);
        assert_eq!(H::bucket_of(3), 2);
        assert_eq!(H::bucket_of(4), 3);
        // Top-bucket saturation: bucket 7 holds everything >= 2^6.
        assert_eq!(H::bucket_of(64), 7);
        assert_eq!(H::bucket_of(u64::MAX), 7);
        assert_eq!(H::bucket_low(0), 0);
        assert_eq!(H::bucket_high(0), 0);
        assert_eq!(H::bucket_low(3), 4);
        assert_eq!(H::bucket_high(3), 7);
        assert_eq!(H::bucket_high(7), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = HostHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 500);
        // Exact p50 = 500 → bucket [512, 1023] upper bound clamped by
        // the max? No: 500 is in [256, 511], so p50 reports 511.
        assert_eq!(h.p50(), 511);
        // Exact p99 = 990 → bucket [512, 1023], clamped to max 1000.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = HostHistogram::new();
        let mut b = HostHistogram::new();
        let mut whole = HostHistogram::new();
        for v in 0..100u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = LogHistogram::<4>::new();
        h.record(u64::MAX);
        h.record(1 << 40);
        h.record(4); // 2^(N-2) = 4 is already the top bucket
        assert_eq!(h.buckets()[3], 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX, "open top bucket reports max");
    }

    #[test]
    fn stage_latency_roundtrip() {
        let mut sl = StageLatency::new();
        sl.record(Stage::IngressParse, 100);
        sl.record(Stage::EgressEmit, 50);
        sl.record(Stage::EgressEmit, 60);
        assert_eq!(sl.stage(Stage::EgressEmit).count(), 2);
        assert_eq!(sl.total_count(), 3);
        let mut other = StageLatency::new();
        other.record(Stage::QueueMatch, 9);
        sl.merge(&other);
        assert_eq!(sl.total_count(), 4);
        let json = sl.to_json();
        for s in Stage::ALL {
            assert!(json.contains(s.name()), "{json}");
        }
        assert!(sl.report().contains("queue_match"), "{}", sl.report());
    }

    #[test]
    fn quantile_report_flags_saturation() {
        let mut h = LogHistogram::<4>::new();
        h.record(3); // bucket 2, resolved
        let q = h.quantile_report(0.5);
        assert_eq!(q.value, 3, "clamped to max");
        assert_eq!(q.floor, 2);
        assert!(!q.saturated);
        // Pile the tail into the open top bucket (>= 2^(N-2) = 4).
        for _ in 0..100 {
            h.record(1 << 40);
        }
        let q = h.quantile_report(0.999);
        assert!(q.saturated, "rank in the open top bucket must flag");
        assert_eq!(q.floor, 4, "floor is the top bucket's lower bound");
        assert_eq!(q.value, 1 << 40, "value still clamps to max");
        assert!(q.fmt_ns().starts_with('≥'), "{}", q.fmt_ns());
        let json = h.to_json();
        assert!(json.contains("\"p999_saturated\": true"), "{json}");
        assert!(json.contains("\"p99_saturated\": true"), "{json}");
        // An unsaturated histogram keeps the flags false.
        let mut ok = HostHistogram::new();
        ok.record(100);
        assert!(
            ok.to_json().contains("\"p999_saturated\": false"),
            "{}",
            ok.to_json()
        );
        assert_eq!(ok.quantile_report(0.999).fmt_ns(), "100ns");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = HostHistogram::new();
        bulk.record_n(77, 5);
        bulk.record_n(9, 0);
        let mut single = HostHistogram::new();
        for _ in 0..5 {
            single.record(77);
        }
        assert_eq!(bulk, single, "record_n(v, 0) must be a no-op too");
    }

    #[test]
    fn saturated_report_uses_floor_marker() {
        let mut sl = StageLatency::new();
        sl.record(Stage::FlowLookup, u64::MAX);
        let report = sl.report();
        assert!(report.contains('≥'), "{report}");
    }

    #[test]
    fn host_clock_is_monotone() {
        let a = HostClock::now_ns();
        let b = HostClock::now_ns();
        assert!(b >= a);
    }

    #[test]
    fn observatory_publishes_gauges_and_histogram_deltas() {
        use crate::registry::Registry;
        let r = Registry::new();
        let mut obs = LatencyObservatory::new();
        obs.record(Stage::FlowLookup, 300);
        obs.publish(&r.scope("core.primary"), 1_000);
        obs.record(Stage::FlowLookup, 300);
        obs.publish(&r.scope("core.primary"), 2_000);
        let snap = r.snapshot(2_000);
        let g = snap.gauge("core.primary.lat.flow_lookup.count").unwrap();
        assert_eq!(g.value, 2);
        let h = snap.histogram("core.primary.lat.flow_lookup").unwrap();
        assert_eq!(h.count, 2, "delta publish must not double count");
        assert_eq!(h.sum, 600);
        let p50 = snap.gauge("core.primary.lat.flow_lookup.p50_ns").unwrap();
        assert_eq!(p50.value, 300, "quantile clamps to observed max");
    }
}
