#![warn(missing_docs)]

//! # tcpfo-telemetry
//!
//! The unified observability layer of the reproduction. The paper's
//! headline claims are *measurements* — client-visible failover time
//! (§5, Fig. 5), matched-release throughput (§3.2), empty-ACK
//! behaviour under delayed ACKs (§3.4) — so every layer of the stack
//! reports into one place:
//!
//! * [`registry`] — a sim-time-aware metrics registry: monotone
//!   [`Counter`]s, [`Gauge`]s with high-water marks, and
//!   [`Histogram`]s with fixed log2 buckets. No wall clock anywhere:
//!   every instrument is keyed by the simulated clock (nanoseconds
//!   since simulation start, i.e. `SimTime::as_nanos()`).
//! * [`journal`] — a bounded structured event journal for discrete
//!   occurrences (mode changes, Δseq sync, takeover steps).
//! * [`timeline`] — the §5 failover timeline: one timestamp per phase
//!   from failure to the first post-takeover client-bound byte.
//!
//! Exposition is JSON (machines) and an aligned text table (humans);
//! both are derived from [`MetricsSnapshot`].
//!
//! # Example
//!
//! ```
//! use tcpfo_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! let scope = t.registry.scope("net");
//! scope.counter("drops.loss").inc_at(1_000);
//! scope.gauge("queue_delay_ns").set_at(250, 1_000);
//! let snap = t.registry.snapshot(2_000);
//! assert_eq!(snap.counter("net.drops.loss"), Some(1));
//! assert!(snap.to_json().contains("net.drops.loss"));
//! ```

pub mod audit;
pub mod health;
pub mod journal;
pub mod json;
pub mod latency;
pub mod registry;
pub mod span;
pub mod table;
pub mod timeline;
pub mod underload;

pub use audit::{AuditConfig, InvariantAuditor, Rule, RuleLedger, TraceId, Violation};
pub use health::{
    env_health_enabled, AlertEvent, AlertJournal, AlertMachine, AlertState, BurnWindow, Ewma,
    FlowClass, HealthConfig, HealthMonitor, HealthObservatory, HealthScore, ReplicaHealth,
    ReplicationLag, SloMonitor, WindowCounts,
};
pub use journal::{Event, Journal};
pub use latency::{
    HostClock, HostHistogram, LatencyObservatory, LogHistogram, Quantile, SimHistogram, Stage,
    StageLatency,
};
pub use registry::{
    escape_help_text, escape_label_value, prom_family, prom_sample, Counter, Gauge, GaugeSnapshot,
    Histogram, HistogramSnapshot, MetricsSnapshot, Registry, Scope,
};
pub use span::{
    chrome_trace_json, env_trace_enabled, waterfall_records, ActiveSpan, Exemplar,
    ExemplarHistogram, SpanContext, SpanId, SpanKind, SpanRecord, SpanSampler, SpanTrack,
    TailExemplars, Tracer,
};
pub use timeline::{
    FailoverPhase, FailoverTimeline, MttrBreakdown, RedundancyBreakdown, RedundancyPhase,
    RedundancyTimeline,
};
pub use underload::{
    LagTracker, ShardSample, UnderLoadHistogram, UnderLoadRecorder, WindowedHistogram,
};

/// Formats sim-nanoseconds with the same unit scaling the simulator's
/// `SimTime` display uses.
pub fn fmt_nanos(ns: u64) -> String {
    if ns == 0 {
        "0ns".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}µs", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// The bundle every layer threads around: registry + journal +
/// timeline. Cloning is cheap (shared handles).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// The metrics registry.
    pub registry: Registry,
    /// The structured event journal.
    pub journal: Journal,
    /// The §5 failover timeline.
    pub timeline: FailoverTimeline,
    /// The PR9 redundancy-restoration timeline (tail reprovisioning
    /// after a chain takeover).
    pub redundancy: RedundancyTimeline,
    /// The PR10 failover span recorder. Dormant (one-branch no-op) by
    /// default; `Tracer::attach` arms the shared ring so every layer
    /// of the replica records into one coherent trace.
    pub trace: Tracer,
}

impl Telemetry {
    /// Creates an empty telemetry hub.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A hub whose journal capacity honours the `TCPFO_JOURNAL_CAP`
    /// environment knob (default [`journal::DEFAULT_CAPACITY`]) and
    /// whose span tracer honours `TCPFO_TRACE` / `TCPFO_TRACE_CAP`.
    pub fn from_env() -> Self {
        let t = Telemetry::with_journal_capacity(audit::env_capacity(
            "TCPFO_JOURNAL_CAP",
            journal::DEFAULT_CAPACITY,
        ));
        if span::env_trace_enabled() {
            t.trace.attach(span::env_trace_capacity());
        }
        t
    }

    /// A hub with an explicit journal ring capacity.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Telemetry {
            journal: Journal::with_capacity(capacity),
            ..Telemetry::default()
        }
    }

    /// One JSON document combining the metrics snapshot (taken at
    /// `now_ns`), the failover timeline, and the journal tail.
    pub fn export_json(&self, now_ns: u64) -> String {
        let mut out = String::from("{\n  \"at_ns\": ");
        out.push_str(&now_ns.to_string());
        out.push_str(",\n  \"metrics\": ");
        out.push_str(&indent(&self.registry.snapshot(now_ns).to_json(), 2));
        out.push_str(",\n  \"timeline\": ");
        out.push_str(&indent(&self.timeline.to_json(), 2));
        out.push_str(",\n  \"redundancy\": ");
        out.push_str(&indent(&self.redundancy.to_json(), 2));
        out.push_str(",\n  \"events\": ");
        out.push_str(&indent(&self.journal.to_json(), 2));
        // Ring saturation must be visible, not silent: how many
        // events each bounded ring dropped before this export. The
        // span ring additionally counts `end`s whose begin record was
        // already evicted (their duration is lost).
        out.push_str(",\n  \"journal_dropped\": ");
        out.push_str(&self.journal.dropped().to_string());
        out.push_str(",\n  \"trace_spans\": ");
        out.push_str(&self.trace.len().to_string());
        out.push_str(",\n  \"trace_dropped\": ");
        out.push_str(&self.trace.dropped().to_string());
        out.push_str(",\n  \"trace_lost_ends\": ");
        out.push_str(&self.trace.lost_ends().to_string());
        out.push_str("\n}\n");
        out
    }
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(0), "0ns");
        assert_eq!(fmt_nanos(1_500), "1500ns");
        assert_eq!(fmt_nanos(2_000), "2µs");
        assert_eq!(fmt_nanos(3_000_000), "3ms");
        assert_eq!(fmt_nanos(4_000_000_000), "4s");
    }

    #[test]
    fn export_json_combines_sections() {
        let t = Telemetry::new();
        t.registry.scope("core").counter("matched_bytes").add(512);
        t.journal
            .record(10, "core.primary", "sync", &[("delta_seq", "4000".into())]);
        t.timeline.mark(FailoverPhase::Failure, 5);
        let doc = t.export_json(100);
        assert!(doc.contains("\"metrics\""), "{doc}");
        assert!(doc.contains("core.matched_bytes"), "{doc}");
        assert!(doc.contains("\"timeline\""), "{doc}");
        assert!(doc.contains("\"events\""), "{doc}");
        assert!(doc.contains("\"journal_dropped\": 0"), "{doc}");
    }

    #[test]
    fn export_json_reports_journal_drops() {
        let t = Telemetry::with_journal_capacity(2);
        for i in 0..5 {
            t.journal.record(i, "core", "tick", &[]);
        }
        let doc = t.export_json(10);
        assert!(doc.contains("\"journal_dropped\": 3"), "{doc}");
        assert!(doc.contains("\"trace_dropped\": 0"), "{doc}");
    }

    #[test]
    fn export_json_reports_span_ring_drops() {
        let t = Telemetry::new();
        t.trace.attach(2);
        for i in 0..5 {
            t.trace.instant(span::SpanTrack::Control, "test", "tick", i);
        }
        let doc = t.export_json(10);
        assert!(doc.contains("\"trace_spans\": 2"), "{doc}");
        assert!(doc.contains("\"trace_dropped\": 3"), "{doc}");
        assert!(doc.contains("\"trace_lost_ends\": 0"), "{doc}");
    }
}
