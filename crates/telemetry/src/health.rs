//! Replica health & replication-lag observatory (PR8).
//!
//! The paper's fault detector is binary: a peer is alive until
//! heartbeats stop for `timeout`, then it is dead. The PR5 MTTR
//! decomposition showed detection dominates the takeover latency, and
//! ROADMAP item 2 (health-scored N-way failover) needs a *continuous*
//! measure of replica quality before any control loop can act early.
//! This module supplies it:
//!
//! * [`ReplicaHealth`] — per-replica signal estimators: heartbeat RTT
//!   and jitter EWMAs, consecutive-miss counts, ingress loss/
//!   retransmit rates, and backlog/occupancy pressure — composed into
//!   a 0–100 [`HealthScore`]. The score bands follow the gf-health
//!   orchestration contract: **< 50 is Critical** (the failover
//!   trigger condition), **≥ 70 is a healthy, promotable standby**.
//! * [`ReplicationLag`] — a first-class replication-lag metric: bytes
//!   and segments of Δseq-normalised primary output still unmatched by
//!   the secondary witness, maintained *exactly* (event-driven, O(1)
//!   per queue mutation) so it can be read every detector tick without
//!   sweeping a million-flow table; plus per-flow-class log2
//!   histograms of lag and time-at-head-of-queue sampled at each
//!   release.
//! * [`SloMonitor`] — multi-window burn-rate evaluation (5 s/60 s of
//!   sim time by default) over the "replica is healthy" SLO, feeding a
//!   hysteretic [`AlertMachine`] (`Ok → Warn → Critical`) whose
//!   transitions land in a bounded [`AlertJournal`].
//! * [`HealthMonitor`] — the detector-side composite the
//!   `ReplicaController` drives: publishes the score *alongside* the
//!   binary heartbeat decision, making the eventual policy swap a
//!   one-line change.
//!
//! Everything here is sim-time (`u64` nanoseconds); nothing reads a
//! wall clock, so attached runs stay deterministic. All hot-path state
//! is flat (`u64` fields and fixed arrays) — recording allocates
//! nothing, preserving the PR2 zero-alloc proof with the observatory
//! attached.

use crate::json::{array, JsonObject};
use crate::latency::LogHistogram;
use crate::registry::{Counter, Gauge, Scope};
use std::collections::VecDeque;

/// Buckets for lag/wait histograms: log2 over `u64` values up to
/// 2⁴⁸ (≈ 281 TB of lag or ~78 h of waiting — saturation is a signal
/// in itself).
pub const HEALTH_BUCKETS: usize = 48;

// ---------------------------------------------------------------------
// EWMA
// ---------------------------------------------------------------------

/// Integer exponentially-weighted moving average with rational
/// smoothing factor `num/den` (the weight given to each new sample).
///
/// The update is `v += (sample - v) * num / den` in 128-bit signed
/// arithmetic, truncated toward zero, so under constant input the
/// value moves monotonically toward the input and never overshoots
/// (property-tested in `health_props.rs`).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    num: u32,
    den: u32,
    value: Option<u64>,
}

impl Ewma {
    /// An EWMA giving each new sample weight `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `num == 0`, `den == 0` or `num > den`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0 && num <= den, "invalid EWMA weight");
        Ewma {
            num,
            den,
            value: None,
        }
    }

    /// Folds in a sample and returns the updated value. The first
    /// sample primes the average directly.
    pub fn observe(&mut self, sample: u64) -> u64 {
        let v = match self.value {
            None => sample,
            Some(v) => {
                let delta = (sample as i128 - v as i128) * self.num as i128 / self.den as i128;
                (v as i128 + delta).clamp(0, u64::MAX as i128) as u64
            }
        };
        self.value = Some(v);
        v
    }

    /// The current average, or 0 before the first sample.
    pub fn get(&self) -> u64 {
        self.value.unwrap_or(0)
    }

    /// Whether at least one sample has been folded in.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }

    /// Clears back to the unprimed state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Tunables for scoring, burn-rate windows and alert hysteresis.
///
/// The weights sum to 100 so axis subscores (each 0–100) compose into
/// a 0–100 total. Threshold defaults reproduce the gf-health bands:
/// Critical below 50, healthy/promotable at 70 and above.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Heartbeat RTT at/above this scores 0 on the RTT axis.
    pub rtt_ceiling_ns: u64,
    /// Heartbeat jitter (mean deviation) at/above this scores 0 on
    /// the jitter axis.
    pub jitter_ceiling_ns: u64,
    /// Consecutive missed heartbeat intervals at which the liveness
    /// axis reaches 0 (aligned with `timeout / interval` of the
    /// binary detector).
    pub miss_limit: u32,
    /// Loss/retransmit rate (parts per million of forwarded segments)
    /// at/above which the loss axis scores 0.
    pub loss_ceiling_ppm: u64,
    /// Replication lag in bytes at/above which the backlog axis
    /// scores 0.
    pub backlog_ceiling_bytes: u64,
    /// Axis weights (must sum to 100): liveness, RTT, jitter, loss,
    /// backlog. Liveness additionally scales the weighted composite —
    /// see [`ReplicaHealth::score`].
    pub weights: [u32; 5],
    /// Score below this (from `Ok`) raises `Warn`.
    pub warn_enter: u64,
    /// Score at/above this (plus a calm fast window) clears `Warn`.
    pub warn_exit: u64,
    /// Score below this raises `Critical`.
    pub crit_enter: u64,
    /// Score at/above this demotes `Critical` back to `Warn`.
    pub crit_exit: u64,
    /// Fast burn-rate window slot width; the window spans
    /// [`SLO_SLOTS`] slots.
    pub fast_slot_ns: u64,
    /// Slow burn-rate window slot width.
    pub slow_slot_ns: u64,
    /// Fast-window bad-observation fraction (ppm) that raises `Warn`
    /// even while the instantaneous score still looks fine.
    pub burn_warn_ppm: u64,
    /// Fast-window bad fraction (ppm) below which `Warn` may clear.
    pub burn_clear_ppm: u64,
    /// Bounded alert-journal capacity; older events are dropped and
    /// counted.
    pub journal_cap: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            rtt_ceiling_ns: 20_000_000,     // 20 ms — 2× detector interval
            jitter_ceiling_ns: 5_000_000,   // 5 ms
            miss_limit: 5,                  // timeout/interval default
            loss_ceiling_ppm: 100_000,      // 10% retransmit rate
            backlog_ceiling_bytes: 1 << 20, // 1 MiB unmatched
            weights: [30, 20, 20, 15, 15],
            warn_enter: 70,
            warn_exit: 80,
            crit_enter: 50,
            crit_exit: 60,
            fast_slot_ns: 625_000_000,   // 8 slots → 5 s window
            slow_slot_ns: 7_500_000_000, // 8 slots → 60 s window
            burn_warn_ppm: 200_000,      // 20% bad observations
            burn_clear_ppm: 50_000,      // 5%
            journal_cap: 64,
        }
    }
}

// ---------------------------------------------------------------------
// Score
// ---------------------------------------------------------------------

/// A composed 0–100 health score with its per-axis breakdown (each
/// axis also 0–100) and the raw signals it was derived from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthScore {
    /// Weighted total, 0–100.
    pub total: u64,
    /// Liveness axis (consecutive heartbeat misses).
    pub liveness: u64,
    /// Heartbeat RTT axis.
    pub rtt: u64,
    /// Heartbeat jitter axis.
    pub jitter: u64,
    /// Ingress loss/retransmit axis.
    pub loss: u64,
    /// Replication backlog axis.
    pub backlog: u64,
    /// Raw smoothed RTT (ns).
    pub rtt_ns: u64,
    /// Raw smoothed jitter (ns).
    pub jitter_ns: u64,
    /// Raw consecutive misses.
    pub misses: u32,
    /// Raw smoothed loss rate (ppm).
    pub loss_ppm: u64,
    /// Raw replication lag (bytes).
    pub lag_bytes: u64,
}

/// Linear axis: full marks at 0, zero at/above `ceiling`.
fn axis(value: u64, ceiling: u64) -> u64 {
    if ceiling == 0 || value >= ceiling {
        return 0;
    }
    100 - value * 100 / ceiling
}

// ---------------------------------------------------------------------
// Per-replica signal estimators
// ---------------------------------------------------------------------

/// Signal estimators for one monitored replica. Fed by the detector
/// (heartbeats, misses) and the bridge (loss, backlog), read back as a
/// [`HealthScore`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicaHealth {
    rtt: Ewma,
    jitter: Ewma,
    loss: Ewma,
    /// Consecutive missed heartbeat intervals, as counted by the
    /// detector (resets on any arrival).
    pub misses: u32,
    /// Heartbeats seen (any form).
    pub heartbeats: u64,
    /// Heartbeats that carried a measurable RTT echo.
    pub rtt_samples: u64,
    /// Heartbeats arriving after a committed failover (ignored for
    /// liveness, counted for forensics).
    pub late_heartbeats: u64,
    /// Latest replication lag (bytes), as sampled from the bridge.
    pub lag_bytes: u64,
    /// Latest replication lag (segments).
    pub lag_segments: u64,
    /// Latest flow-table occupancy / capacity, in ppm.
    pub occupancy_ppm: u64,
}

impl Default for ReplicaHealth {
    fn default() -> Self {
        ReplicaHealth {
            // 1/8 — TCP SRTT's classic gain.
            rtt: Ewma::new(1, 8),
            // 1/4 — TCP RTTVAR's gain, over mean deviation.
            jitter: Ewma::new(1, 4),
            loss: Ewma::new(1, 4),
            misses: 0,
            heartbeats: 0,
            rtt_samples: 0,
            late_heartbeats: 0,
            lag_bytes: 0,
            lag_segments: 0,
            occupancy_ppm: 0,
        }
    }
}

impl ReplicaHealth {
    /// A heartbeat arrived carrying a measurable round-trip time.
    pub fn on_heartbeat_rtt(&mut self, rtt_ns: u64) {
        self.heartbeats += 1;
        self.rtt_samples += 1;
        self.misses = 0;
        let srtt = self.rtt.get();
        if self.rtt.is_primed() {
            self.jitter.observe(rtt_ns.abs_diff(srtt));
        } else {
            self.jitter.observe(0);
        }
        self.rtt.observe(rtt_ns);
    }

    /// A heartbeat arrived without RTT information (legacy payload).
    pub fn on_heartbeat_seen(&mut self) {
        self.heartbeats += 1;
        self.misses = 0;
    }

    /// A heartbeat arrived after the local failover already committed;
    /// it no longer affects liveness.
    pub fn on_late_heartbeat(&mut self) {
        self.late_heartbeats += 1;
    }

    /// The detector's current consecutive-miss count (elapsed silent
    /// intervals).
    pub fn set_misses(&mut self, misses: u32) {
        self.misses = misses;
    }

    /// Folds in an ingress loss observation: `losses` loss-ish events
    /// (retransmissions forwarded + drops) out of `total` segments
    /// since the last observation.
    pub fn observe_loss(&mut self, losses: u64, total: u64) {
        let ppm = (losses.min(total) * 1_000_000)
            .checked_div(total)
            .unwrap_or(0);
        self.loss.observe(ppm);
    }

    /// Updates the backlog pressure signals from the bridge.
    pub fn observe_backlog(&mut self, lag_bytes: u64, lag_segments: u64, occupancy_ppm: u64) {
        self.lag_bytes = lag_bytes;
        self.lag_segments = lag_segments;
        self.occupancy_ppm = occupancy_ppm;
    }

    /// Smoothed heartbeat RTT (ns).
    pub fn rtt_ns(&self) -> u64 {
        self.rtt.get()
    }

    /// Smoothed heartbeat jitter (ns).
    pub fn jitter_ns(&self) -> u64 {
        self.jitter.get()
    }

    /// Smoothed loss rate (ppm).
    pub fn loss_ppm(&self) -> u64 {
        self.loss.get()
    }

    /// Composes the current [`HealthScore`] under `cfg`.
    ///
    /// The liveness axis is special: besides contributing its weight,
    /// it *scales* the weighted composite (`total = weighted ×
    /// liveness / 100`). Consecutive silence discredits every other
    /// signal — a replica whose heartbeats have stopped cannot be
    /// vouched for by a stale RTT estimate — so the composite reaches
    /// `Warn`/`Critical` several missed intervals before the binary
    /// detector's timeout, which is exactly the lead time the staged-
    /// degradation gate measures.
    ///
    /// Before the first heartbeat the replica is presumed healthy on
    /// the axes it has no data for (matching the binary detector's
    /// first-tick grace period).
    pub fn score(&self, cfg: &HealthConfig) -> HealthScore {
        let liveness = if cfg.miss_limit == 0 {
            100
        } else {
            100u64.saturating_sub(
                u64::from(self.misses.min(cfg.miss_limit)) * 100 / u64::from(cfg.miss_limit),
            )
        };
        let rtt = if self.rtt.is_primed() {
            axis(self.rtt.get(), cfg.rtt_ceiling_ns)
        } else {
            100
        };
        let jitter = if self.jitter.is_primed() {
            axis(self.jitter.get(), cfg.jitter_ceiling_ns)
        } else {
            100
        };
        let loss = axis(self.loss.get(), cfg.loss_ceiling_ppm);
        let backlog = axis(self.lag_bytes, cfg.backlog_ceiling_bytes);
        let [wl, wr, wj, wo, wb] = cfg.weights;
        let weighted = (liveness * u64::from(wl)
            + rtt * u64::from(wr)
            + jitter * u64::from(wj)
            + loss * u64::from(wo)
            + backlog * u64::from(wb))
            / 100;
        let total = weighted * liveness / 100;
        HealthScore {
            total,
            liveness,
            rtt,
            jitter,
            loss,
            backlog,
            rtt_ns: self.rtt.get(),
            jitter_ns: self.jitter.get(),
            misses: self.misses,
            loss_ppm: self.loss.get(),
            lag_bytes: self.lag_bytes,
        }
    }
}

// ---------------------------------------------------------------------
// Burn-rate windows
// ---------------------------------------------------------------------

/// Slots per sliding burn-rate window.
pub const SLO_SLOTS: usize = 8;

/// Good/bad observation counts; merging windows is plain addition, so
/// a merge over any partition of the observations is lossless
/// (property-tested).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Observations meeting the SLO.
    pub good: u64,
    /// Observations violating the SLO.
    pub bad: u64,
}

impl WindowCounts {
    /// Adds another window's counts into this one.
    pub fn merge(&mut self, other: &WindowCounts) {
        self.good += other.good;
        self.bad += other.bad;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Bad-observation fraction in parts per million (0 when empty).
    pub fn bad_ppm(&self) -> u64 {
        (self.bad * 1_000_000)
            .checked_div(self.total())
            .unwrap_or(0)
    }
}

/// A sliding window of good/bad counts over [`SLO_SLOTS`] slots of
/// `slot_ns` sim time each, following the `WindowedHistogram` rotation
/// idiom: silent periods don't burn slots, and `sliding` merges every
/// slot still inside the horizon.
#[derive(Debug, Clone, Copy)]
pub struct BurnWindow {
    slot_ns: u64,
    slots: [(u64, WindowCounts); SLO_SLOTS],
}

impl BurnWindow {
    /// A window whose slots each span `slot_ns` (total horizon
    /// `SLO_SLOTS * slot_ns`).
    pub fn new(slot_ns: u64) -> Self {
        BurnWindow {
            slot_ns: slot_ns.max(1),
            slots: [(u64::MAX, WindowCounts::default()); SLO_SLOTS],
        }
    }

    fn slot_index(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Records one observation at sim time `now_ns`.
    pub fn record(&mut self, now_ns: u64, good: bool) {
        let wi = self.slot_index(now_ns);
        let slot = &mut self.slots[(wi % SLO_SLOTS as u64) as usize];
        if slot.0 != wi {
            *slot = (wi, WindowCounts::default());
        }
        if good {
            slot.1.good += 1;
        } else {
            slot.1.bad += 1;
        }
    }

    /// Merged counts over every slot still within the sliding horizon
    /// at `now_ns`.
    pub fn sliding(&self, now_ns: u64) -> WindowCounts {
        let current = self.slot_index(now_ns);
        let mut total = WindowCounts::default();
        for (wi, counts) in &self.slots {
            if *wi != u64::MAX && wi.saturating_add(SLO_SLOTS as u64) > current {
                total.merge(counts);
            }
        }
        total
    }

    /// The window's full horizon in sim nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.slot_ns * SLO_SLOTS as u64
    }
}

/// The two-window burn-rate evaluator over the "replica is healthy"
/// SLO (score ≥ `warn_enter`).
#[derive(Debug, Clone, Copy)]
pub struct SloMonitor {
    /// Fast window (default 5 s of sim time).
    pub fast: BurnWindow,
    /// Slow window (default 60 s of sim time).
    pub slow: BurnWindow,
}

impl SloMonitor {
    /// A monitor with the config's fast/slow slot widths.
    pub fn new(cfg: &HealthConfig) -> Self {
        SloMonitor {
            fast: BurnWindow::new(cfg.fast_slot_ns),
            slow: BurnWindow::new(cfg.slow_slot_ns),
        }
    }

    /// Records one SLO observation into both windows.
    pub fn record(&mut self, now_ns: u64, good: bool) {
        self.fast.record(now_ns, good);
        self.slow.record(now_ns, good);
    }
}

// ---------------------------------------------------------------------
// Alert state machine + journal
// ---------------------------------------------------------------------

/// Hysteretic alert level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Healthy.
    Ok,
    /// Degraded: the score dropped below `warn_enter`, or the fast
    /// burn window exceeded `burn_warn_ppm`.
    Warn,
    /// Takeover-worthy: the score dropped below `crit_enter` (the
    /// gf-health failover trigger band).
    Critical,
}

impl AlertState {
    /// Stable lower-case name (journal/JSON/Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warn => "warn",
            AlertState::Critical => "critical",
        }
    }

    /// Numeric encoding for gauges (0 = ok, 1 = warn, 2 = critical).
    pub fn as_u64(self) -> u64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warn => 1,
            AlertState::Critical => 2,
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Sim time of the transition.
    pub at_ns: u64,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Score total at the transition.
    pub score: u64,
    /// Which condition moved the machine.
    pub reason: &'static str,
}

/// Bounded ring of alert transitions; overflow drops the oldest event
/// and counts it.
#[derive(Debug)]
pub struct AlertJournal {
    events: VecDeque<AlertEvent>,
    cap: usize,
    /// Events dropped to stay within `cap`.
    pub dropped: u64,
}

impl AlertJournal {
    /// A journal holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        AlertJournal {
            events: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: AlertEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AlertEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sim time of the first transition *into* `state`, if any
    /// retained event records one.
    pub fn first_entered(&self, state: AlertState) -> Option<u64> {
        self.events.iter().find(|e| e.to == state).map(|e| e.at_ns)
    }

    /// JSON array of the retained events.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                let mut o = JsonObject::new();
                o.u64("at_ns", e.at_ns)
                    .string("from", e.from.name())
                    .string("to", e.to.name())
                    .u64("score", e.score)
                    .string("reason", e.reason);
                o.render()
            })
            .collect();
        array(&rows)
    }
}

/// The hysteretic `Ok → Warn → Critical` machine.
///
/// Raise and clear use *different* thresholds (`warn_enter < warn_exit`,
/// `crit_enter < crit_exit`), so inputs oscillating anywhere inside a
/// hysteresis band move the machine at most once — no Warn↔Critical
/// flapping on boundary inputs (property-tested). Recovery from
/// `Critical` always passes through `Warn`.
#[derive(Debug, Clone, Copy)]
pub struct AlertMachine {
    state: AlertState,
}

impl Default for AlertMachine {
    fn default() -> Self {
        AlertMachine {
            state: AlertState::Ok,
        }
    }
}

impl AlertMachine {
    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Evaluates one observation; returns the transition if the state
    /// moved, with the condition that moved it.
    pub fn step(
        &mut self,
        cfg: &HealthConfig,
        score: u64,
        fast_bad_ppm: u64,
        slow_bad_ppm: u64,
    ) -> Option<(AlertState, AlertState, &'static str)> {
        let from = self.state;
        let (to, reason) = match from {
            AlertState::Ok => {
                if score < cfg.crit_enter {
                    (AlertState::Critical, "score_critical")
                } else if score < cfg.warn_enter {
                    (AlertState::Warn, "score_warn")
                } else if fast_bad_ppm >= cfg.burn_warn_ppm && slow_bad_ppm > 0 {
                    (AlertState::Warn, "burn_rate")
                } else {
                    (from, "")
                }
            }
            AlertState::Warn => {
                if score < cfg.crit_enter {
                    (AlertState::Critical, "score_critical")
                } else if score >= cfg.warn_exit && fast_bad_ppm < cfg.burn_clear_ppm {
                    (AlertState::Ok, "recovered")
                } else {
                    (from, "")
                }
            }
            AlertState::Critical => {
                if score >= cfg.crit_exit {
                    (AlertState::Warn, "improving")
                } else {
                    (from, "")
                }
            }
        };
        if to == from {
            return None;
        }
        self.state = to;
        Some((from, to, reason))
    }
}

// ---------------------------------------------------------------------
// Replication lag (bridge-side)
// ---------------------------------------------------------------------

/// Workload class a lag sample is filed under: short flows (mice,
/// < 64 KiB released so far) versus bulk transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// A young/short flow (< 64 KiB released).
    Short,
    /// A bulk flow.
    Bulk,
}

impl FlowClass {
    /// Classifies a flow by the bytes it has released so far.
    pub fn of_released(released_bytes: u64) -> Self {
        if released_bytes < 64 * 1024 {
            FlowClass::Short
        } else {
            FlowClass::Bulk
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FlowClass::Short => "short",
            FlowClass::Bulk => "bulk",
        }
    }

    fn index(self) -> usize {
        match self {
            FlowClass::Short => 0,
            FlowClass::Bulk => 1,
        }
    }

    /// Both classes, in index order.
    pub const ALL: [FlowClass; 2] = [FlowClass::Short, FlowClass::Bulk];
}

/// The exact replication-lag ledger: bytes and segments of
/// Δseq-normalised primary output not yet matched by the secondary
/// witness, maintained incrementally at every primary-output-queue
/// mutation (the bench oracle re-derives both from the queues and
/// requires equality), plus per-class log2 histograms sampled at each
/// release.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicationLag {
    unmatched_bytes: u64,
    unmatched_segments: u64,
    peak_bytes: u64,
    releases: u64,
    hist_bytes: [LogHistogram<HEALTH_BUCKETS>; 2],
    hist_segments: [LogHistogram<HEALTH_BUCKETS>; 2],
    hist_head_wait: [LogHistogram<HEALTH_BUCKETS>; 2],
}

/// Segments needed to carry `bytes` at `mss` (0 for an empty queue).
fn segments_of(bytes: u64, mss: u16) -> u64 {
    let m = u64::from(mss.max(1));
    bytes.div_ceil(m)
}

impl ReplicationLag {
    /// Accounts a primary-output-queue length change on one flow:
    /// `before`/`after` are the queue's buffered byte counts around
    /// the mutation, `mss` the flow's effective MSS (for the segment
    /// ledger).
    #[inline]
    pub fn update(&mut self, before: usize, after: usize, mss: u16) {
        let (before, after) = (before as u64, after as u64);
        self.unmatched_bytes = self.unmatched_bytes + after - before.min(self.unmatched_bytes);
        // The subtraction above can't underflow when accounting is
        // complete (after ≥ 0, before ≤ total); the min is a safety
        // net that keeps a missed site from wrapping the gauge.
        self.unmatched_segments = self
            .unmatched_segments
            .saturating_sub(segments_of(before, mss))
            + segments_of(after, mss);
        self.peak_bytes = self.peak_bytes.max(self.unmatched_bytes);
    }

    /// Accounts a flow dropped with `bytes` still unmatched (teardown,
    /// eviction, reap, RST, degradation).
    #[inline]
    pub fn drop_flow(&mut self, bytes: usize, mss: u16) {
        self.update(bytes, 0, mss);
    }

    /// Samples a release event: the flow had `lag_bytes` unmatched
    /// when the match landed, and its head byte had waited
    /// `head_wait_ns` of sim time.
    #[inline]
    pub fn record_release(
        &mut self,
        class: FlowClass,
        lag_bytes: u64,
        mss: u16,
        head_wait_ns: u64,
    ) {
        let i = class.index();
        self.releases += 1;
        self.hist_bytes[i].record(lag_bytes);
        self.hist_segments[i].record(segments_of(lag_bytes, mss));
        self.hist_head_wait[i].record(head_wait_ns);
    }

    /// Current unmatched bytes (the first-class lag gauge).
    pub fn unmatched_bytes(&self) -> u64 {
        self.unmatched_bytes
    }

    /// Current unmatched segments.
    pub fn unmatched_segments(&self) -> u64 {
        self.unmatched_segments
    }

    /// High-water unmatched bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Release events sampled.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Per-class lag-in-bytes histogram.
    pub fn bytes_hist(&self, class: FlowClass) -> &LogHistogram<HEALTH_BUCKETS> {
        &self.hist_bytes[class.index()]
    }

    /// Per-class lag-in-segments histogram.
    pub fn segments_hist(&self, class: FlowClass) -> &LogHistogram<HEALTH_BUCKETS> {
        &self.hist_segments[class.index()]
    }

    /// Per-class time-at-head-of-queue histogram (sim ns).
    pub fn head_wait_hist(&self, class: FlowClass) -> &LogHistogram<HEALTH_BUCKETS> {
        &self.hist_head_wait[class.index()]
    }
}

/// Registry handles for one bridge's published lag metrics.
#[derive(Debug)]
struct LagGauges {
    bytes: Gauge,
    segments: Gauge,
    peak_bytes: Gauge,
    releases: Counter,
    class_p99_bytes: [Gauge; 2],
    class_p99_wait: [Gauge; 2],
}

/// The bridge-side observatory: the exact lag ledger plus its
/// registry mirror. Attached behind `Option<Box<...>>` on each bridge
/// (one branch when detached); recording never allocates.
#[derive(Debug, Default)]
pub struct HealthObservatory {
    /// The replication-lag ledger.
    pub lag: ReplicationLag,
    gauges: Option<LagGauges>,
}

impl HealthObservatory {
    /// A fresh observatory with zeroed state.
    pub fn new() -> Self {
        HealthObservatory::default()
    }

    /// Mirrors the lag state into the registry under
    /// `scope.health.lag.*`.
    pub fn publish(&mut self, scope: &Scope, now_ns: u64) {
        let g = self.gauges.get_or_insert_with(|| {
            let lag = scope.scope("health.lag");
            LagGauges {
                bytes: lag.gauge("bytes"),
                segments: lag.gauge("segments"),
                peak_bytes: lag.gauge("peak_bytes"),
                releases: lag.counter("releases"),
                class_p99_bytes: [lag.gauge("short.p99_bytes"), lag.gauge("bulk.p99_bytes")],
                class_p99_wait: [
                    lag.gauge("short.p99_head_wait_ns"),
                    lag.gauge("bulk.p99_head_wait_ns"),
                ],
            }
        });
        g.bytes.set_at(self.lag.unmatched_bytes(), now_ns);
        g.segments.set_at(self.lag.unmatched_segments(), now_ns);
        g.peak_bytes.set_at(self.lag.peak_bytes(), now_ns);
        g.releases.set_at_least(self.lag.releases());
        for class in FlowClass::ALL {
            let i = class.index();
            g.class_p99_bytes[i].set_at(self.lag.bytes_hist(class).p99(), now_ns);
            g.class_p99_wait[i].set_at(self.lag.head_wait_hist(class).p99(), now_ns);
        }
    }

    /// JSON snapshot of the lag state.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("unmatched_bytes", self.lag.unmatched_bytes())
            .u64("unmatched_segments", self.lag.unmatched_segments())
            .u64("peak_bytes", self.lag.peak_bytes())
            .u64("releases", self.lag.releases());
        for class in FlowClass::ALL {
            let mut c = JsonObject::new();
            c.raw("bytes", self.lag.bytes_hist(class).to_json())
                .raw("segments", self.lag.segments_hist(class).to_json())
                .raw("head_wait_ns", self.lag.head_wait_hist(class).to_json());
            o.raw(class.name(), c.render());
        }
        o.render()
    }
}

// ---------------------------------------------------------------------
// Detector-side monitor
// ---------------------------------------------------------------------

/// Registry handles for one monitor's published health metrics.
#[derive(Debug)]
struct HealthGauges {
    score: Gauge,
    state: Gauge,
    liveness: Gauge,
    rtt_ns: Gauge,
    jitter_ns: Gauge,
    misses: Gauge,
    loss_ppm: Gauge,
    lag_bytes: Gauge,
    burn_fast_ppm: Gauge,
    burn_slow_ppm: Gauge,
    warns: Counter,
    criticals: Counter,
    recoveries: Counter,
}

/// The detector-side composite: per-replica estimators, SLO burn-rate
/// windows, the alert machine and its journal. The `ReplicaController`
/// owns one behind `Option<Box<...>>` and publishes its score
/// *alongside* the binary heartbeat decision.
#[derive(Debug)]
pub struct HealthMonitor {
    /// Scoring/alerting tunables.
    pub cfg: HealthConfig,
    /// The monitored peer's signal estimators.
    pub replica: ReplicaHealth,
    slo: SloMonitor,
    machine: AlertMachine,
    journal: AlertJournal,
    last_score: HealthScore,
    warns: u64,
    criticals: u64,
    recoveries: u64,
    gauges: Option<HealthGauges>,
}

impl HealthMonitor {
    /// A monitor with the given tunables.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            replica: ReplicaHealth::default(),
            slo: SloMonitor::new(&cfg),
            machine: AlertMachine::default(),
            journal: AlertJournal::new(cfg.journal_cap),
            last_score: HealthScore {
                total: 100,
                liveness: 100,
                rtt: 100,
                jitter: 100,
                loss: 100,
                backlog: 100,
                ..HealthScore::default()
            },
            warns: 0,
            criticals: 0,
            recoveries: 0,
            gauges: None,
        }
    }

    /// Re-evaluates the score, records the SLO observation in both
    /// burn windows, and steps the alert machine. Returns the alert
    /// transition, if one fired.
    pub fn tick(&mut self, now_ns: u64) -> Option<(AlertState, AlertState)> {
        let score = self.replica.score(&self.cfg);
        self.last_score = score;
        self.slo.record(now_ns, score.total >= self.cfg.warn_enter);
        let fast = self.slo.fast.sliding(now_ns).bad_ppm();
        let slow = self.slo.slow.sliding(now_ns).bad_ppm();
        let (from, to, reason) = self.machine.step(&self.cfg, score.total, fast, slow)?;
        match to {
            AlertState::Warn if from == AlertState::Ok => self.warns += 1,
            AlertState::Critical => self.criticals += 1,
            AlertState::Ok => self.recoveries += 1,
            _ => {}
        }
        self.journal.push(AlertEvent {
            at_ns: now_ns,
            from,
            to,
            score: score.total,
            reason,
        });
        Some((from, to))
    }

    /// The most recent composed score.
    pub fn score(&self) -> HealthScore {
        self.last_score
    }

    /// Current alert state.
    pub fn state(&self) -> AlertState {
        self.machine.state()
    }

    /// The bounded alert journal.
    pub fn journal(&self) -> &AlertJournal {
        &self.journal
    }

    /// Sim time the machine first raised at least `Warn`, if it did.
    pub fn first_warn_at(&self) -> Option<u64> {
        self.journal
            .events()
            .find(|e| e.to >= AlertState::Warn)
            .map(|e| e.at_ns)
    }

    /// Mirrors score/state/signals into the registry under
    /// `scope.health.*`.
    pub fn publish(&mut self, scope: &Scope, now_ns: u64) {
        let g = self.gauges.get_or_insert_with(|| {
            let h = scope.scope("health");
            HealthGauges {
                score: h.gauge("score"),
                state: h.gauge("state"),
                liveness: h.gauge("liveness"),
                rtt_ns: h.gauge("rtt_ns"),
                jitter_ns: h.gauge("jitter_ns"),
                misses: h.gauge("misses"),
                loss_ppm: h.gauge("loss_ppm"),
                lag_bytes: h.gauge("lag_bytes"),
                burn_fast_ppm: h.gauge("burn_fast_ppm"),
                burn_slow_ppm: h.gauge("burn_slow_ppm"),
                warns: h.counter("alerts_warn"),
                criticals: h.counter("alerts_critical"),
                recoveries: h.counter("alerts_recovered"),
            }
        });
        let s = self.last_score;
        g.score.set_at(s.total, now_ns);
        g.state.set_at(self.machine.state().as_u64(), now_ns);
        g.liveness.set_at(s.liveness, now_ns);
        g.rtt_ns.set_at(s.rtt_ns, now_ns);
        g.jitter_ns.set_at(s.jitter_ns, now_ns);
        g.misses.set_at(u64::from(s.misses), now_ns);
        g.loss_ppm.set_at(s.loss_ppm, now_ns);
        g.lag_bytes.set_at(s.lag_bytes, now_ns);
        g.burn_fast_ppm
            .set_at(self.slo.fast.sliding(now_ns).bad_ppm(), now_ns);
        g.burn_slow_ppm
            .set_at(self.slo.slow.sliding(now_ns).bad_ppm(), now_ns);
        g.warns.set_at_least(self.warns);
        g.criticals.set_at_least(self.criticals);
        g.recoveries.set_at_least(self.recoveries);
    }

    /// JSON snapshot: score breakdown, raw signals, burn windows,
    /// alert state and journal.
    pub fn to_json(&self, now_ns: u64) -> String {
        let s = self.last_score;
        let mut score = JsonObject::new();
        score
            .u64("total", s.total)
            .u64("liveness", s.liveness)
            .u64("rtt", s.rtt)
            .u64("jitter", s.jitter)
            .u64("loss", s.loss)
            .u64("backlog", s.backlog);
        let mut raw = JsonObject::new();
        raw.u64("rtt_ns", s.rtt_ns)
            .u64("jitter_ns", s.jitter_ns)
            .u64("misses", u64::from(s.misses))
            .u64("loss_ppm", s.loss_ppm)
            .u64("lag_bytes", s.lag_bytes)
            .u64("heartbeats", self.replica.heartbeats)
            .u64("rtt_samples", self.replica.rtt_samples)
            .u64("late_heartbeats", self.replica.late_heartbeats)
            .u64("occupancy_ppm", self.replica.occupancy_ppm);
        let fast = self.slo.fast.sliding(now_ns);
        let slow = self.slo.slow.sliding(now_ns);
        let mut slo = JsonObject::new();
        slo.u64("fast_window_ns", self.slo.fast.horizon_ns())
            .u64("fast_good", fast.good)
            .u64("fast_bad", fast.bad)
            .u64("fast_bad_ppm", fast.bad_ppm())
            .u64("slow_window_ns", self.slo.slow.horizon_ns())
            .u64("slow_good", slow.good)
            .u64("slow_bad", slow.bad)
            .u64("slow_bad_ppm", slow.bad_ppm());
        let mut o = JsonObject::new();
        o.u64("now_ns", now_ns)
            .raw("score", score.render())
            .raw("raw", raw.render())
            .raw("slo", slo.render())
            .string("alert_state", self.machine.state().name())
            .u64("alerts_warn", self.warns)
            .u64("alerts_critical", self.criticals)
            .u64("alerts_recovered", self.recoveries)
            .u64("alert_journal_dropped", self.journal.dropped)
            .raw("alert_journal", self.journal.to_json());
        o.render()
    }

    /// Prometheus exposition of the alert state and transition
    /// counters, with `# HELP`/`# TYPE` lines and escaped labels
    /// (labelled series are outside the registry's name-only model, so
    /// the monitor emits them directly).
    pub fn alerts_prometheus(&self, scope: &str) -> String {
        use crate::registry::{prom_family, prom_sample};
        let mut out = String::new();
        prom_family(
            &mut out,
            "tcpfo_health_alert_state",
            "current alert state (0=ok, 1=warn, 2=critical)",
            "gauge",
        );
        prom_sample(
            &mut out,
            "tcpfo_health_alert_state",
            &[("scope", scope)],
            &self.machine.state().as_u64().to_string(),
            None,
        );
        prom_family(
            &mut out,
            "tcpfo_health_alert_transitions_total",
            "alert state machine transitions by severity",
            "counter",
        );
        for (to, n) in [
            ("warn", self.warns),
            ("critical", self.criticals),
            ("ok", self.recoveries),
        ] {
            prom_sample(
                &mut out,
                "tcpfo_health_alert_transitions_total",
                &[("scope", scope), ("to", to)],
                &n.to_string(),
                None,
            );
        }
        prom_family(
            &mut out,
            "tcpfo_health_alert_journal_dropped",
            "alert journal events dropped at capacity",
            "counter",
        );
        prom_sample(
            &mut out,
            "tcpfo_health_alert_journal_dropped",
            &[("scope", scope)],
            &self.journal.dropped.to_string(),
            None,
        );
        out
    }
}

/// Whether the `TCPFO_HEALTH` environment knob asks for the health
/// observatory to be attached (any non-empty value other than `0`),
/// mirroring [`crate::latency::env_latency_enabled`].
pub fn env_health_enabled() -> bool {
    std::env::var("TCPFO_HEALTH").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn ewma_primes_and_converges() {
        let mut e = Ewma::new(1, 8);
        assert!(!e.is_primed());
        assert_eq!(e.observe(800), 800);
        // Moves 1/8 of the gap per sample.
        assert_eq!(e.observe(0), 700);
        assert_eq!(e.observe(0), 613);
    }

    #[test]
    fn axis_is_linear_and_clamped() {
        assert_eq!(axis(0, 100), 100);
        assert_eq!(axis(50, 100), 50);
        assert_eq!(axis(100, 100), 0);
        assert_eq!(axis(1000, 100), 0);
        assert_eq!(axis(5, 0), 0);
    }

    #[test]
    fn fresh_replica_scores_perfect() {
        let h = ReplicaHealth::default();
        let s = h.score(&HealthConfig::default());
        assert_eq!(s.total, 100, "{s:?}");
    }

    #[test]
    fn misses_drive_liveness_to_zero_at_limit() {
        let cfg = HealthConfig::default();
        let mut h = ReplicaHealth::default();
        h.set_misses(cfg.miss_limit - 1);
        assert!(h.score(&cfg).liveness > 0);
        h.set_misses(cfg.miss_limit);
        assert_eq!(h.score(&cfg).liveness, 0);
        // Liveness multiplies the composite: at the limit the score is
        // exactly 0, unconditionally Critical.
        assert_eq!(h.score(&cfg).total, 0);
        // Two misses (20 ms of silence at defaults) already reach
        // Warn — well before the 50 ms binary timeout.
        h.set_misses(2);
        let s = h.score(&cfg).total;
        assert!(s < cfg.warn_enter && s >= cfg.crit_enter, "score {s}");
    }

    #[test]
    fn jitter_only_degradation_lowers_score_without_misses() {
        let cfg = HealthConfig::default();
        let mut h = ReplicaHealth::default();
        // Steady 1 ms heartbeats first…
        for _ in 0..32 {
            h.on_heartbeat_rtt(1_000_000);
        }
        let calm = h.score(&cfg).total;
        // …then wildly alternating RTTs: misses stay 0 but jitter and
        // RTT axes collapse.
        for i in 0..64 {
            h.on_heartbeat_rtt(if i % 2 == 0 { 1_000_000 } else { 30_000_000 });
        }
        let jittery = h.score(&cfg).total;
        assert_eq!(h.misses, 0);
        assert!(
            jittery < calm && jittery < cfg.warn_enter,
            "calm {calm} jittery {jittery}"
        );
    }

    #[test]
    fn burn_window_rotates_and_slides() {
        let mut w = BurnWindow::new(1_000);
        w.record(0, true);
        w.record(500, false);
        let c = w.sliding(500);
        assert_eq!(c, WindowCounts { good: 1, bad: 1 });
        // 8 slots later the first slot has aged out.
        w.record(8_500, true);
        let c = w.sliding(8_500);
        assert_eq!(c, WindowCounts { good: 1, bad: 0 });
    }

    #[test]
    fn alert_machine_hysteresis_bands() {
        let cfg = HealthConfig::default();
        let mut m = AlertMachine::default();
        assert!(m.step(&cfg, 90, 0, 0).is_none());
        // Drop into Warn…
        let (from, to, _) = m.step(&cfg, 65, 0, 0).unwrap();
        assert_eq!((from, to), (AlertState::Ok, AlertState::Warn));
        // …recovery to 75 is inside the band: no transition.
        assert!(m.step(&cfg, 75, 0, 0).is_none());
        assert_eq!(m.state(), AlertState::Warn);
        // Clear needs warn_exit.
        let (_, to, _) = m.step(&cfg, 85, 0, 0).unwrap();
        assert_eq!(to, AlertState::Ok);
        // Critical path: straight down, then stepwise recovery.
        let (_, to, _) = m.step(&cfg, 10, 0, 0).unwrap();
        assert_eq!(to, AlertState::Critical);
        assert!(m.step(&cfg, 55, 0, 0).is_none(), "inside the crit band");
        let (_, to, _) = m.step(&cfg, 62, 0, 0).unwrap();
        assert_eq!(to, AlertState::Warn, "recovery passes through Warn");
    }

    #[test]
    fn burn_rate_raises_warn_without_score_drop() {
        let cfg = HealthConfig::default();
        let mut m = AlertMachine::default();
        // Score fine, but 30% of fast-window observations were bad.
        let t = m.step(&cfg, 95, 300_000, 10_000);
        assert_eq!(t.unwrap().1, AlertState::Warn);
        // Doesn't clear until the fast window calms down.
        assert!(m.step(&cfg, 95, 100_000, 10_000).is_none());
        assert_eq!(m.step(&cfg, 95, 10_000, 10_000).unwrap().1, AlertState::Ok);
    }

    #[test]
    fn alert_journal_bounds_and_counts_drops() {
        let mut j = AlertJournal::new(2);
        for i in 0..5u64 {
            j.push(AlertEvent {
                at_ns: i,
                from: AlertState::Ok,
                to: AlertState::Warn,
                score: 60,
                reason: "t",
            });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped, 3);
        assert_eq!(j.events().next().unwrap().at_ns, 3);
    }

    #[test]
    fn lag_ledger_update_and_drop_are_exact() {
        let mut lag = ReplicationLag::default();
        lag.update(0, 3000, 1460); // enqueue 3000 bytes
        assert_eq!(lag.unmatched_bytes(), 3000);
        assert_eq!(lag.unmatched_segments(), 3); // ceil(3000/1460)
        lag.update(3000, 1540, 1460); // release 1460
        assert_eq!(lag.unmatched_bytes(), 1540);
        assert_eq!(lag.unmatched_segments(), 2);
        lag.drop_flow(1540, 1460);
        assert_eq!(lag.unmatched_bytes(), 0);
        assert_eq!(lag.unmatched_segments(), 0);
        assert_eq!(lag.peak_bytes(), 3000);
    }

    #[test]
    fn release_samples_file_under_flow_class() {
        let mut lag = ReplicationLag::default();
        lag.record_release(FlowClass::Short, 512, 1460, 2_000_000);
        lag.record_release(FlowClass::Bulk, 1 << 20, 1460, 9_000_000);
        assert_eq!(lag.bytes_hist(FlowClass::Short).count(), 1);
        assert_eq!(lag.bytes_hist(FlowClass::Bulk).count(), 1);
        assert_eq!(lag.segments_hist(FlowClass::Bulk).max(), 719); // ceil(2^20/1460)
        assert!(lag.head_wait_hist(FlowClass::Bulk).max() >= 8_000_000);
    }

    #[test]
    fn monitor_tick_warn_precedes_detector_style_timeline() {
        // Staged degradation: rising misses long before total silence.
        let cfg = HealthConfig::default();
        let mut m = HealthMonitor::new(cfg);
        let mut first_warn = None;
        for tick in 0..100u64 {
            let now = tick * 10_000_000; // 10 ms cadence
            if tick < 50 {
                m.replica.on_heartbeat_rtt(1_000_000);
            } else {
                m.replica.set_misses((tick - 50) as u32);
            }
            if let Some((_, to)) = m.tick(now) {
                if to >= AlertState::Warn && first_warn.is_none() {
                    first_warn = Some(now);
                }
            }
        }
        let warn = first_warn.expect("degradation must raise an alert");
        assert_eq!(m.first_warn_at(), Some(warn));
        assert!(m.state() >= AlertState::Warn);
    }

    #[test]
    fn monitor_publishes_and_exports_json() {
        let reg = Registry::new();
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.replica.on_heartbeat_rtt(2_000_000);
        m.tick(1_000_000);
        m.publish(&reg.scope("core.detector.primary"), 1_000_000);
        let snap = reg.snapshot(1_000_000);
        assert_eq!(
            snap.gauge("core.detector.primary.health.score")
                .map(|g| g.value),
            Some(98) // rtt axis 90 at 2 ms / 20 ms ceiling, rest 100
        );
        let json = m.to_json(1_000_000);
        assert!(json.contains("\"alert_state\": \"ok\""), "{json}");
        assert!(json.contains("\"fast_window_ns\""), "{json}");
    }

    #[test]
    fn alerts_prometheus_escapes_labels_and_has_help_type() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.replica.set_misses(10);
        m.tick(0);
        let text = m.alerts_prometheus("weird\"scope\\with\nnewline");
        assert!(text.contains("# HELP tcpfo_health_alert_state"));
        assert!(text.contains("# TYPE tcpfo_health_alert_state gauge"));
        assert!(text.contains("weird\\\"scope\\\\with\\nnewline"));
        assert!(text.contains("tcpfo_health_alert_transitions_total{scope="));
        assert!(text.contains(",to=\"critical\"} 1"));
    }

    #[test]
    fn observatory_publish_mirrors_lag_gauges() {
        let reg = Registry::new();
        let mut obs = HealthObservatory::new();
        obs.lag.update(0, 4096, 1460);
        obs.lag
            .record_release(FlowClass::Short, 4096, 1460, 1_000_000);
        obs.publish(&reg.scope("core.primary"), 5);
        let snap = reg.snapshot(5);
        assert_eq!(
            snap.gauge("core.primary.health.lag.bytes").map(|g| g.value),
            Some(4096)
        );
        assert_eq!(snap.counter("core.primary.health.lag.releases"), Some(1));
        let json = obs.to_json();
        assert!(json.contains("\"unmatched_bytes\": 4096"), "{json}");
    }
}
