//! The §5 failover timeline.
//!
//! The paper's Fig. 5 decomposes client-visible failover time into
//! phases; this module captures one sim timestamp per
//! [`FailoverPhase`], first mark wins. [`FailoverTimeline::breakdown`]
//! renders the phase-to-phase deltas the experiments report.

use std::sync::{Arc, Mutex};

use crate::json::JsonObject;

/// The phases of a §5 takeover, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailoverPhase {
    /// The primary stopped responding (injected failure).
    Failure,
    /// The secondary's heartbeat monitor declared the primary dead.
    Detection,
    /// The secondary began holding egress while reconfiguring.
    EgressHold,
    /// The secondary claimed the primary's IP (gratuitous ARP, TCB
    /// rekey) and resumed egress.
    ArpTakeover,
    /// First client-bound payload byte sent by the promoted secondary.
    FirstClientByte,
}

impl FailoverPhase {
    /// All phases in causal order.
    pub const ALL: [FailoverPhase; 5] = [
        FailoverPhase::Failure,
        FailoverPhase::Detection,
        FailoverPhase::EgressHold,
        FailoverPhase::ArpTakeover,
        FailoverPhase::FirstClientByte,
    ];

    /// Stable lowercase name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            FailoverPhase::Failure => "failure",
            FailoverPhase::Detection => "detection",
            FailoverPhase::EgressHold => "egress_hold",
            FailoverPhase::ArpTakeover => "arp_takeover",
            FailoverPhase::FirstClientByte => "first_client_byte",
        }
    }

    fn index(self) -> usize {
        match self {
            FailoverPhase::Failure => 0,
            FailoverPhase::Detection => 1,
            FailoverPhase::EgressHold => 2,
            FailoverPhase::ArpTakeover => 3,
            FailoverPhase::FirstClientByte => 4,
        }
    }
}

/// Shared record of when each failover phase first occurred.
#[derive(Debug, Clone, Default)]
pub struct FailoverTimeline {
    marks: Arc<Mutex<[Option<u64>; 5]>>,
}

impl FailoverTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        FailoverTimeline::default()
    }

    /// Records `phase` at sim time `now_ns`. The first mark for a
    /// phase wins; later marks are ignored, so "first client byte"
    /// can be marked on every candidate send.
    pub fn mark(&self, phase: FailoverPhase, now_ns: u64) {
        let mut marks = self.marks.lock().unwrap();
        if marks[phase.index()].is_none() {
            marks[phase.index()] = Some(now_ns);
        }
    }

    /// When `phase` first occurred, if it has.
    pub fn at(&self, phase: FailoverPhase) -> Option<u64> {
        self.marks.lock().unwrap()[phase.index()]
    }

    /// Whether every phase has been marked.
    pub fn is_complete(&self) -> bool {
        self.marks.lock().unwrap().iter().all(Option::is_some)
    }

    /// Whether the marked phases are in causal order (each marked
    /// phase's timestamp is ≥ every earlier marked phase's).
    pub fn is_monotone(&self) -> bool {
        let marks = self.marks.lock().unwrap();
        let mut last = 0u64;
        for t in marks.iter().flatten() {
            if *t < last {
                return false;
            }
            last = *t;
        }
        true
    }

    /// Client-visible failover time: first client byte − failure.
    pub fn total_ns(&self) -> Option<u64> {
        let start = self.at(FailoverPhase::Failure)?;
        let end = self.at(FailoverPhase::FirstClientByte)?;
        end.checked_sub(start)
    }

    /// Clears all marks (for reuse across repeated failovers).
    pub fn reset(&self) {
        *self.marks.lock().unwrap() = [None; 5];
    }

    /// Human-readable per-phase breakdown with deltas, e.g.
    /// `detection          52ms  (+50ms)`.
    pub fn breakdown(&self) -> String {
        let mut out = String::from("failover timeline:\n");
        let mut prev: Option<u64> = None;
        for phase in FailoverPhase::ALL {
            let line = match self.at(phase) {
                Some(t) => {
                    let delta = prev
                        .map(|p| format!("  (+{})", crate::fmt_nanos(t.saturating_sub(p))))
                        .unwrap_or_default();
                    prev = Some(t);
                    format!("  {:<18} {:>12}{delta}", phase.name(), crate::fmt_nanos(t))
                }
                None => format!("  {:<18} {:>12}", phase.name(), "-"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(total) = self.total_ns() {
            out.push_str(&format!(
                "  {:<18} {:>12}\n",
                "client_visible",
                crate::fmt_nanos(total)
            ));
        }
        out
    }

    /// Renders the timeline as a JSON object (unmarked phases are
    /// `null`).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for phase in FailoverPhase::ALL {
            match self.at(phase) {
                Some(t) => obj.u64(phase.name(), t),
                None => obj.raw(phase.name(), "null"),
            };
        }
        match self.total_ns() {
            Some(t) => obj.u64("client_visible_ns", t),
            None => obj.raw("client_visible_ns", "null"),
        };
        obj.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_mark_wins() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::FirstClientByte, 100);
        t.mark(FailoverPhase::FirstClientByte, 200);
        assert_eq!(t.at(FailoverPhase::FirstClientByte), Some(100));
    }

    #[test]
    fn completeness_monotonicity_total() {
        let t = FailoverTimeline::new();
        assert!(!t.is_complete());
        assert!(t.is_monotone(), "vacuously monotone when empty");
        t.mark(FailoverPhase::Failure, 10);
        t.mark(FailoverPhase::Detection, 60);
        t.mark(FailoverPhase::EgressHold, 60);
        t.mark(FailoverPhase::ArpTakeover, 61);
        t.mark(FailoverPhase::FirstClientByte, 90);
        assert!(t.is_complete());
        assert!(t.is_monotone());
        assert_eq!(t.total_ns(), Some(80));
        t.reset();
        assert!(!t.is_complete());
    }

    #[test]
    fn out_of_order_detected() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::Failure, 100);
        t.mark(FailoverPhase::Detection, 50);
        assert!(!t.is_monotone());
    }

    #[test]
    fn renders() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::Failure, 1_000_000);
        let text = t.breakdown();
        assert!(text.contains("failure"), "{text}");
        assert!(text.contains("1ms"), "{text}");
        let json = t.to_json();
        assert!(json.contains("\"failure\": 1000000"), "{json}");
        assert!(json.contains("\"detection\": null"), "{json}");
    }
}
