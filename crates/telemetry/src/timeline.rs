//! The §5 failover timeline.
//!
//! The paper's Fig. 5 decomposes client-visible failover time into
//! phases; this module captures one sim timestamp per
//! [`FailoverPhase`], first mark wins. [`FailoverTimeline::breakdown`]
//! renders the phase-to-phase deltas the experiments report.

use std::sync::{Arc, Mutex};

use crate::json::JsonObject;

/// The phases of a §5 takeover, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailoverPhase {
    /// The primary stopped responding (injected failure).
    Failure,
    /// The secondary's heartbeat monitor declared the primary dead.
    Detection,
    /// The secondary began holding egress while reconfiguring.
    EgressHold,
    /// Both address translations (ingress a_p→a_s, egress diversion)
    /// were switched off — §5 steps 3–4.
    TranslationOff,
    /// The secondary claimed the primary's IP (gratuitous ARP, TCB
    /// rekey) and resumed egress.
    ArpTakeover,
    /// First client-bound payload byte sent by the promoted secondary.
    FirstClientByte,
}

/// Number of [`FailoverPhase`]s.
const PHASES: usize = 6;

impl FailoverPhase {
    /// All phases in causal order.
    pub const ALL: [FailoverPhase; PHASES] = [
        FailoverPhase::Failure,
        FailoverPhase::Detection,
        FailoverPhase::EgressHold,
        FailoverPhase::TranslationOff,
        FailoverPhase::ArpTakeover,
        FailoverPhase::FirstClientByte,
    ];

    /// Stable lowercase name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            FailoverPhase::Failure => "failure",
            FailoverPhase::Detection => "detection",
            FailoverPhase::EgressHold => "egress_hold",
            FailoverPhase::TranslationOff => "translation_off",
            FailoverPhase::ArpTakeover => "arp_takeover",
            FailoverPhase::FirstClientByte => "first_client_byte",
        }
    }

    fn index(self) -> usize {
        match self {
            FailoverPhase::Failure => 0,
            FailoverPhase::Detection => 1,
            FailoverPhase::EgressHold => 2,
            FailoverPhase::TranslationOff => 3,
            FailoverPhase::ArpTakeover => 4,
            FailoverPhase::FirstClientByte => 5,
        }
    }
}

/// Shared record of when each failover phase first occurred.
#[derive(Debug, Clone, Default)]
pub struct FailoverTimeline {
    marks: Arc<Mutex<[Option<u64>; PHASES]>>,
}

impl FailoverTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        FailoverTimeline::default()
    }

    /// Records `phase` at sim time `now_ns`. The first mark for a
    /// phase wins; later marks are ignored, so "first client byte"
    /// can be marked on every candidate send.
    pub fn mark(&self, phase: FailoverPhase, now_ns: u64) {
        let mut marks = self.marks.lock().unwrap();
        if marks[phase.index()].is_none() {
            marks[phase.index()] = Some(now_ns);
        }
    }

    /// When `phase` first occurred, if it has.
    pub fn at(&self, phase: FailoverPhase) -> Option<u64> {
        self.marks.lock().unwrap()[phase.index()]
    }

    /// Whether every phase has been marked.
    pub fn is_complete(&self) -> bool {
        self.marks.lock().unwrap().iter().all(Option::is_some)
    }

    /// Whether the marked phases are in causal order (each marked
    /// phase's timestamp is ≥ every earlier marked phase's).
    pub fn is_monotone(&self) -> bool {
        let marks = self.marks.lock().unwrap();
        let mut last = 0u64;
        for t in marks.iter().flatten() {
            if *t < last {
                return false;
            }
            last = *t;
        }
        true
    }

    /// Client-visible failover time: first client byte − failure.
    pub fn total_ns(&self) -> Option<u64> {
        let start = self.at(FailoverPhase::Failure)?;
        let end = self.at(FailoverPhase::FirstClientByte)?;
        end.checked_sub(start)
    }

    /// Clears all marks (for reuse across repeated failovers).
    pub fn reset(&self) {
        *self.marks.lock().unwrap() = [None; PHASES];
    }

    /// The §5 MTTR decomposition, when the timeline is complete.
    pub fn mttr(&self) -> Option<MttrBreakdown> {
        MttrBreakdown::from_timeline(self)
    }

    /// Human-readable per-phase breakdown with deltas, e.g.
    /// `detection          52ms  (+50ms)`.
    pub fn breakdown(&self) -> String {
        let mut out = String::from("failover timeline:\n");
        let mut prev: Option<u64> = None;
        for phase in FailoverPhase::ALL {
            let line = match self.at(phase) {
                Some(t) => {
                    let delta = prev
                        .map(|p| format!("  (+{})", crate::fmt_nanos(t.saturating_sub(p))))
                        .unwrap_or_default();
                    prev = Some(t);
                    format!("  {:<18} {:>12}{delta}", phase.name(), crate::fmt_nanos(t))
                }
                None => format!("  {:<18} {:>12}", phase.name(), "-"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(total) = self.total_ns() {
            out.push_str(&format!(
                "  {:<18} {:>12}\n",
                "client_visible",
                crate::fmt_nanos(total)
            ));
        }
        out
    }

    /// Renders the timeline as a JSON object (unmarked phases are
    /// `null`); a complete timeline also carries the `mttr`
    /// decomposition object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for phase in FailoverPhase::ALL {
            match self.at(phase) {
                Some(t) => obj.u64(phase.name(), t),
                None => obj.raw(phase.name(), "null"),
            };
        }
        match self.total_ns() {
            Some(t) => obj.u64("client_visible_ns", t),
            None => obj.raw("client_visible_ns", "null"),
        };
        match self.mttr() {
            Some(m) => obj.raw("mttr", m.to_json()),
            None => obj.raw("mttr", "null"),
        };
        obj.render()
    }
}

/// The §5 MTTR decomposition: phase-to-phase deltas (sim nanoseconds)
/// of a complete [`FailoverTimeline`]. Each field is the time spent
/// *in* that step, so the fields sum to `total_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MttrBreakdown {
    /// Failure injected → heartbeat monitor declared the primary dead.
    pub detection_ns: u64,
    /// Detection → client-bound egress held.
    pub hold_ns: u64,
    /// Egress hold → both address translations disabled.
    pub translation_ns: u64,
    /// Translation off → gratuitous ARP sent (IP claimed).
    pub arp_ns: u64,
    /// ARP takeover → first client-visible payload byte from S.
    pub first_byte_ns: u64,
    /// Failure → first client-visible byte (the client-side MTTR).
    pub total_ns: u64,
}

impl MttrBreakdown {
    /// Field names in phase order, matching the JSON keys.
    pub const FIELDS: [&'static str; 5] = [
        "detection_ns",
        "hold_ns",
        "translation_ns",
        "arp_ns",
        "first_byte_ns",
    ];

    /// Derives the decomposition from a complete, monotone timeline;
    /// `None` if any phase is unmarked or out of order.
    pub fn from_timeline(t: &FailoverTimeline) -> Option<MttrBreakdown> {
        if !t.is_monotone() {
            return None;
        }
        let mut stamps = [0u64; PHASES];
        for (i, phase) in FailoverPhase::ALL.into_iter().enumerate() {
            stamps[i] = t.at(phase)?;
        }
        Some(MttrBreakdown {
            detection_ns: stamps[1] - stamps[0],
            hold_ns: stamps[2] - stamps[1],
            translation_ns: stamps[3] - stamps[2],
            arp_ns: stamps[4] - stamps[3],
            first_byte_ns: stamps[5] - stamps[4],
            total_ns: stamps[5] - stamps[0],
        })
    }

    /// The deltas in phase order (same order as [`MttrBreakdown::FIELDS`]).
    pub fn deltas(&self) -> [u64; 5] {
        [
            self.detection_ns,
            self.hold_ns,
            self.translation_ns,
            self.arp_ns,
            self.first_byte_ns,
        ]
    }

    /// Renders the decomposition as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for (name, v) in Self::FIELDS.into_iter().zip(self.deltas()) {
            obj.u64(name, v);
        }
        obj.u64("total_ns", self.total_ns);
        obj.render()
    }
}

/// The phases of PR9 tail reprovisioning after a chain takeover, in
/// causal order. Kept separate from [`FailoverPhase`] — the §5 MTTR
/// decomposition is a closed six-phase contract — so redundancy
/// restoration gates independently of client-visible MTTR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RedundancyPhase {
    /// The control plane began provisioning a replacement tail.
    ReprovisionStart,
    /// Per-flow TCB + Δseq + cursor snapshots were handed to the new
    /// tail (it can now participate in the chain).
    HandoffDone,
    /// The replication-lag ledger drained to zero backlog — full
    /// redundancy restored.
    CatchupDone,
}

/// Number of [`RedundancyPhase`]s.
const REDUNDANCY_PHASES: usize = 3;

impl RedundancyPhase {
    /// All phases in causal order.
    pub const ALL: [RedundancyPhase; REDUNDANCY_PHASES] = [
        RedundancyPhase::ReprovisionStart,
        RedundancyPhase::HandoffDone,
        RedundancyPhase::CatchupDone,
    ];

    /// Stable lowercase name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            RedundancyPhase::ReprovisionStart => "reprovision_start",
            RedundancyPhase::HandoffDone => "handoff_done",
            RedundancyPhase::CatchupDone => "catchup_done",
        }
    }

    fn index(self) -> usize {
        match self {
            RedundancyPhase::ReprovisionStart => 0,
            RedundancyPhase::HandoffDone => 1,
            RedundancyPhase::CatchupDone => 2,
        }
    }
}

/// Shared record of when each reprovisioning phase first occurred,
/// same first-mark-wins discipline as [`FailoverTimeline`].
#[derive(Debug, Clone, Default)]
pub struct RedundancyTimeline {
    marks: Arc<Mutex<[Option<u64>; REDUNDANCY_PHASES]>>,
}

impl RedundancyTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        RedundancyTimeline::default()
    }

    /// Records `phase` at sim time `now_ns`; first mark wins.
    pub fn mark(&self, phase: RedundancyPhase, now_ns: u64) {
        let mut marks = self.marks.lock().unwrap();
        if marks[phase.index()].is_none() {
            marks[phase.index()] = Some(now_ns);
        }
    }

    /// When `phase` first occurred, if it has.
    pub fn at(&self, phase: RedundancyPhase) -> Option<u64> {
        self.marks.lock().unwrap()[phase.index()]
    }

    /// Whether every phase has been marked.
    pub fn is_complete(&self) -> bool {
        self.marks.lock().unwrap().iter().all(Option::is_some)
    }

    /// Whether the marked phases are in causal order.
    pub fn is_monotone(&self) -> bool {
        let marks = self.marks.lock().unwrap();
        let mut last = 0u64;
        for t in marks.iter().flatten() {
            if *t < last {
                return false;
            }
            last = *t;
        }
        true
    }

    /// Clears all marks (for repeated reprovisioning rounds).
    pub fn reset(&self) {
        *self.marks.lock().unwrap() = [None; REDUNDANCY_PHASES];
    }

    /// The redundancy-restoration decomposition, when complete.
    pub fn restoration(&self) -> Option<RedundancyBreakdown> {
        RedundancyBreakdown::from_timeline(self)
    }

    /// Renders the timeline as a JSON object (unmarked phases `null`);
    /// a complete timeline also carries the `restoration` object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for phase in RedundancyPhase::ALL {
            match self.at(phase) {
                Some(t) => obj.u64(phase.name(), t),
                None => obj.raw(phase.name(), "null"),
            };
        }
        match self.restoration() {
            Some(r) => obj.raw("restoration", r.to_json()),
            None => obj.raw("restoration", "null"),
        };
        obj.render()
    }
}

/// Phase-to-phase deltas (sim nanoseconds) of a complete
/// [`RedundancyTimeline`]: how long reprovisioning spent spawning the
/// standby versus catching it up, and the time-to-restored-redundancy
/// total BENCH_PR9 gates alongside client-visible MTTR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyBreakdown {
    /// Reprovision start → per-flow handoff complete.
    pub reprovision_ns: u64,
    /// Handoff complete → replication-lag ledger drained to zero.
    pub catchup_ns: u64,
    /// Reprovision start → redundancy restored (fields sum to this).
    pub total_ns: u64,
}

impl RedundancyBreakdown {
    /// Field names in phase order, matching the JSON keys.
    pub const FIELDS: [&'static str; 2] = ["reprovision_ns", "catchup_ns"];

    /// Derives the decomposition from a complete, monotone timeline.
    pub fn from_timeline(t: &RedundancyTimeline) -> Option<RedundancyBreakdown> {
        if !t.is_monotone() {
            return None;
        }
        let start = t.at(RedundancyPhase::ReprovisionStart)?;
        let handoff = t.at(RedundancyPhase::HandoffDone)?;
        let done = t.at(RedundancyPhase::CatchupDone)?;
        Some(RedundancyBreakdown {
            reprovision_ns: handoff - start,
            catchup_ns: done - handoff,
            total_ns: done - start,
        })
    }

    /// Renders the decomposition as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.u64("reprovision_ns", self.reprovision_ns);
        obj.u64("catchup_ns", self.catchup_ns);
        obj.u64("total_ns", self.total_ns);
        obj.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_mark_wins() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::FirstClientByte, 100);
        t.mark(FailoverPhase::FirstClientByte, 200);
        assert_eq!(t.at(FailoverPhase::FirstClientByte), Some(100));
    }

    #[test]
    fn completeness_monotonicity_total() {
        let t = FailoverTimeline::new();
        assert!(!t.is_complete());
        assert!(t.is_monotone(), "vacuously monotone when empty");
        t.mark(FailoverPhase::Failure, 10);
        t.mark(FailoverPhase::Detection, 60);
        t.mark(FailoverPhase::EgressHold, 60);
        t.mark(FailoverPhase::TranslationOff, 60);
        t.mark(FailoverPhase::ArpTakeover, 61);
        t.mark(FailoverPhase::FirstClientByte, 90);
        assert!(t.is_complete());
        assert!(t.is_monotone());
        assert_eq!(t.total_ns(), Some(80));
        let m = t.mttr().expect("complete timeline decomposes");
        assert_eq!(m.detection_ns, 50);
        assert_eq!(m.hold_ns, 0);
        assert_eq!(m.translation_ns, 0);
        assert_eq!(m.arp_ns, 1);
        assert_eq!(m.first_byte_ns, 29);
        assert_eq!(m.total_ns, 80);
        assert_eq!(m.deltas().iter().sum::<u64>(), m.total_ns);
        assert!(
            t.to_json().contains("\"translation_ns\": 0"),
            "{}",
            t.to_json()
        );
        t.reset();
        assert!(!t.is_complete());
        assert_eq!(t.mttr(), None);
    }

    #[test]
    fn out_of_order_detected() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::Failure, 100);
        t.mark(FailoverPhase::Detection, 50);
        assert!(!t.is_monotone());
    }

    #[test]
    fn renders() {
        let t = FailoverTimeline::new();
        t.mark(FailoverPhase::Failure, 1_000_000);
        let text = t.breakdown();
        assert!(text.contains("failure"), "{text}");
        assert!(text.contains("1ms"), "{text}");
        let json = t.to_json();
        assert!(json.contains("\"failure\": 1000000"), "{json}");
        assert!(json.contains("\"detection\": null"), "{json}");
    }

    #[test]
    fn redundancy_first_mark_wins_and_decomposes() {
        let t = RedundancyTimeline::new();
        assert!(!t.is_complete());
        assert!(t.is_monotone());
        t.mark(RedundancyPhase::ReprovisionStart, 100);
        t.mark(RedundancyPhase::ReprovisionStart, 500);
        assert_eq!(t.at(RedundancyPhase::ReprovisionStart), Some(100));
        t.mark(RedundancyPhase::HandoffDone, 130);
        t.mark(RedundancyPhase::CatchupDone, 190);
        assert!(t.is_complete());
        let r = t.restoration().expect("complete timeline decomposes");
        assert_eq!(r.reprovision_ns, 30);
        assert_eq!(r.catchup_ns, 60);
        assert_eq!(r.total_ns, 90);
        let json = t.to_json();
        assert!(json.contains("\"handoff_done\": 130"), "{json}");
        assert!(json.contains("\"total_ns\": 90"), "{json}");
        t.reset();
        assert!(!t.is_complete());
        assert_eq!(t.restoration(), None);
    }

    #[test]
    fn redundancy_out_of_order_detected() {
        let t = RedundancyTimeline::new();
        t.mark(RedundancyPhase::ReprovisionStart, 100);
        t.mark(RedundancyPhase::HandoffDone, 50);
        assert!(!t.is_monotone());
        assert_eq!(t.restoration(), None);
        let json = t.to_json();
        assert!(json.contains("\"catchup_done\": null"), "{json}");
    }
}
