//! Under-load recording (PR 6): coordinated-omission-free latency.
//!
//! Closed-loop benchmarks time an operation from the moment it was
//! *issued* — but when the system under test backs up, the harness
//! issues later, and the wait it imposed on the would-be request
//! silently disappears from the distribution (coordinated omission).
//! The open-loop harness fixes the measurement model: every injected
//! segment carries an **intended** arrival time drawn from the load
//! schedule, and this module records latency on both axes —
//!
//! * **naive**: completion − actual injection (what a closed-loop
//!   harness would report), and
//! * **corrected**: completion − intended arrival = injection lag +
//!   service time (what the traffic actually experienced).
//!
//! Around that core sit the companions an under-load run needs:
//!
//! * [`WindowedHistogram`] — a ring of log2 sub-histograms rotated by
//!   time, so "p99.9 over the last ~second" is a merge of live
//!   windows instead of a run-to-date aggregate that dilutes bursts.
//! * [`LagTracker`] — injection lag (actual − intended) and backlog
//!   (segments due but not yet injected) as first-class metrics: lag
//!   *is* the coordinated-omission correction term, so it is reported,
//!   gated, and exported rather than buried.
//! * [`UnderLoadRecorder`] — the per-run aggregate: end-to-end naive
//!   vs. corrected histograms, per-[`Stage`] corrected histograms
//!   (re-based from the PR 5 observatory's service-time deltas),
//!   sliding-window quantiles, and per-shard occupancy sampling with
//!   a capacity bound check.
//!
//! All values are nanoseconds on one caller-chosen monotone clock
//! (the load harness uses [`crate::latency::HostClock`]); nothing in
//! here reads a clock itself, so the module stays deterministic and
//! unit-testable.

use crate::json::JsonObject;
use crate::latency::{LogHistogram, Quantile, Stage, StageLatency};
use crate::registry::Scope;
use crate::span::{ExemplarHistogram, SpanContext, TailExemplars};

/// Bucket count for under-load histograms: lag and corrected latency
/// can reach seconds-to-minutes when the generator outruns the bridge,
/// so use the wide 48-bucket range (~19.5 hours).
pub const UNDERLOAD_BUCKETS: usize = 48;

/// The histogram type every under-load series uses.
pub type UnderLoadHistogram = LogHistogram<UNDERLOAD_BUCKETS>;

/// A ring of log2 sub-histograms rotated by time: observations land in
/// the sub-window covering their timestamp, and [`WindowedHistogram::sliding`]
/// merges only the windows still inside the horizon. That yields
/// sliding-window quantiles (p99/p99.9 "over the last N windows") with
/// zero per-record allocation — rotation just resets one slot.
#[derive(Debug, Clone)]
pub struct WindowedHistogram<const N: usize> {
    window_ns: u64,
    /// `(window index, histogram)` per slot; a slot is live when its
    /// window index is within `slots.len()` of the current window.
    slots: Vec<(u64, LogHistogram<N>)>,
    cursor: usize,
}

impl<const N: usize> WindowedHistogram<N> {
    /// A ring of `windows` sub-histograms, each covering `window_ns`.
    /// Both are clamped to at least 1.
    pub fn new(window_ns: u64, windows: usize) -> Self {
        WindowedHistogram {
            window_ns: window_ns.max(1),
            slots: vec![(0, LogHistogram::new()); windows.max(1)],
            cursor: 0,
        }
    }

    /// Width of one sub-window in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of sub-windows in the sliding horizon.
    pub fn windows(&self) -> usize {
        self.slots.len()
    }

    /// Records `v` at time `now_ns`, rotating the ring if `now_ns`
    /// entered a new sub-window. Time is assumed non-decreasing (a
    /// stale timestamp just lands in the current window).
    pub fn record(&mut self, now_ns: u64, v: u64) {
        let wi = now_ns / self.window_ns;
        if self.slots[self.cursor].0 != wi {
            // Entering a new window: advance the ring, unless the
            // current slot was never written (silent windows don't
            // burn slots).
            if !self.slots[self.cursor].1.is_empty() {
                self.cursor = (self.cursor + 1) % self.slots.len();
            }
            self.slots[self.cursor] = (wi, LogHistogram::new());
        }
        self.slots[self.cursor].1.record(v);
    }

    /// Merge of every sub-window still inside the sliding horizon at
    /// `now_ns` (the last `windows()` windows, inclusive of the
    /// current one).
    pub fn sliding(&self, now_ns: u64) -> LogHistogram<N> {
        let current = now_ns / self.window_ns;
        let horizon = self.slots.len() as u64;
        let mut merged = LogHistogram::new();
        for (wi, h) in &self.slots {
            if !h.is_empty() && wi + horizon > current {
                merged.merge(h);
            }
        }
        merged
    }

    /// Total observations across all live and stale slots.
    pub fn total_count(&self) -> u64 {
        self.slots.iter().map(|(_, h)| h.count()).sum()
    }
}

/// Injection lag and backlog: the open-loop schedule says *when* each
/// segment should arrive; the tracker records how far behind the
/// injector actually ran (`actual − intended`) and how many segments
/// were due-but-undelivered at each sampling point. Lag is the
/// coordinated-omission correction term, so it is a first-class
/// metric, not a debugging aid.
#[derive(Debug, Clone)]
pub struct LagTracker {
    hist: UnderLoadHistogram,
    windowed: WindowedHistogram<UNDERLOAD_BUCKETS>,
    backlog: u64,
    max_backlog: u64,
}

impl LagTracker {
    /// An empty tracker with the given sliding-window shape.
    pub fn new(window_ns: u64, windows: usize) -> Self {
        LagTracker {
            hist: UnderLoadHistogram::new(),
            windowed: WindowedHistogram::new(window_ns, windows),
            backlog: 0,
            max_backlog: 0,
        }
    }

    /// Records one segment's injection lag at time `now_ns`.
    pub fn record(&mut self, now_ns: u64, lag_ns: u64) {
        self.hist.record(lag_ns);
        self.windowed.record(now_ns, lag_ns);
    }

    /// Updates the current backlog (segments due but not yet
    /// injected), tracking its high-water mark.
    pub fn set_backlog(&mut self, n: u64) {
        self.backlog = n;
        self.max_backlog = self.max_backlog.max(n);
    }

    /// Current backlog.
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Highest backlog ever set.
    pub fn max_backlog(&self) -> u64 {
        self.max_backlog
    }

    /// The whole-run lag histogram.
    pub fn histogram(&self) -> &UnderLoadHistogram {
        &self.hist
    }

    /// Sliding-window lag merge at `now_ns`.
    pub fn sliding(&self, now_ns: u64) -> UnderLoadHistogram {
        self.windowed.sliding(now_ns)
    }
}

/// One shard's occupancy reading at a sampling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSample {
    /// Entries resident in the shard.
    pub occupancy: u64,
    /// Evictions the shard has performed so far.
    pub evicted: u64,
}

/// The per-run under-load aggregate: end-to-end naive vs. corrected
/// latency, per-stage corrected latency, lag/backlog, sliding-window
/// quantiles, and flow-table occupancy samples with a cap check.
#[derive(Debug, Clone)]
pub struct UnderLoadRecorder {
    /// Completion − actual injection (the closed-loop number).
    naive: UnderLoadHistogram,
    /// Completion − intended arrival (lag + service; the corrected
    /// number), with PR 10 tail-exemplar capture: when span tracing is
    /// attached, every corrected sample landing in a top bucket points
    /// at the span that was active when it completed.
    corrected: ExemplarHistogram<UNDERLOAD_BUCKETS>,
    corrected_windowed: WindowedHistogram<UNDERLOAD_BUCKETS>,
    /// Raw service-time deltas absorbed from the PR 5 observatory.
    stages_service: StageLatency,
    /// Per-stage corrected histograms: service time re-based by the
    /// batch's injection lag.
    stages_corrected: [UnderLoadHistogram; Stage::COUNT],
    /// Host-ns pause of each flow-table GC tick (the injector is
    /// stalled for its whole duration, so this is the one series the
    /// bounded-pause contract gates on).
    gc_pause: UnderLoadHistogram,
    lag: LagTracker,
    /// Per-shard occupancy at the last sample.
    shard_occupancy: Vec<u64>,
    /// Evictions per shard at the last sample.
    shard_evicted: Vec<u64>,
    occupancy_peak: u64,
    /// Configured flow-table capacity the occupancy is gated against.
    capacity: u64,
    /// Samples where total occupancy exceeded the capacity — any
    /// non-zero value means the "bounded occupancy" invariant broke.
    over_capacity_samples: u64,
    samples: u64,
    injected: u64,
}

impl UnderLoadRecorder {
    /// A recorder whose sliding windows are `windows` × `window_ns`
    /// and whose occupancy gate is `capacity` flow-table entries.
    pub fn new(window_ns: u64, windows: usize, capacity: u64) -> Self {
        UnderLoadRecorder {
            naive: UnderLoadHistogram::new(),
            corrected: ExemplarHistogram::new(),
            corrected_windowed: WindowedHistogram::new(window_ns, windows),
            stages_service: StageLatency::new(),
            stages_corrected: [UnderLoadHistogram::new(); Stage::COUNT],
            gc_pause: UnderLoadHistogram::new(),
            lag: LagTracker::new(window_ns, windows),
            shard_occupancy: Vec::new(),
            shard_evicted: Vec::new(),
            occupancy_peak: 0,
            capacity,
            over_capacity_samples: 0,
            samples: 0,
            injected: 0,
        }
    }

    /// Records one injected segment: `intended_ns` from the schedule,
    /// `actual_ns` when the injector actually delivered it, and
    /// `done_ns` when its batch finished processing. All three are on
    /// the same monotone clock.
    pub fn record_segment(&mut self, intended_ns: u64, actual_ns: u64, done_ns: u64) {
        self.record_segment_ctx(intended_ns, actual_ns, done_ns, None);
    }

    /// [`record_segment`](Self::record_segment) with the active span
    /// context (when tracing is attached): a corrected latency landing
    /// in a top bucket (at/above the live p99.9 bucket) captures `ctx`
    /// as a tail exemplar, so the slow sample links to a trace.
    pub fn record_segment_ctx(
        &mut self,
        intended_ns: u64,
        actual_ns: u64,
        done_ns: u64,
        ctx: Option<SpanContext>,
    ) {
        let lag = actual_ns.saturating_sub(intended_ns);
        self.lag.record(actual_ns, lag);
        self.naive.record(done_ns.saturating_sub(actual_ns));
        let corrected = done_ns.saturating_sub(intended_ns);
        self.corrected.record_ctx(corrected, done_ns, ctx);
        self.corrected_windowed.record(done_ns, corrected);
        self.injected += 1;
    }

    /// Absorbs a batch's per-stage service-time delta from the PR 5
    /// observatory and re-bases it onto the intended-time axis by
    /// adding the batch's injection lag to every bucket. Per-item lag
    /// is not available at stage granularity (the observatory
    /// aggregates per batch), so `batch_lag_ns` should be the batch's
    /// **maximum** item lag: the corrected tail can then only be
    /// overstated within one batch's lag spread, never silently
    /// understated — the failure mode this whole layer exists to
    /// prevent. Buckets are re-based at their inclusive upper bound
    /// (clamped to the stage's observed max), conservative in the same
    /// direction.
    pub fn absorb_stage_delta(&mut self, delta: &StageLatency, batch_lag_ns: u64) {
        self.stages_service.merge(delta);
        for s in Stage::ALL {
            let h = delta.stage(s);
            if h.is_empty() {
                continue;
            }
            let out = &mut self.stages_corrected[s.index()];
            for (i, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let service = crate::latency::HostHistogram::bucket_high(i).min(h.max());
                out.record_n(service.saturating_add(batch_lag_ns), n);
            }
        }
    }

    /// [`absorb_stage_delta`](Self::absorb_stage_delta) for callers
    /// holding cumulative observatory snapshots instead of a
    /// pre-computed delta: re-bases the per-stage bucket populations
    /// that appeared between `before` and `after` (both the *same*
    /// observatory's state, `before` taken earlier) and keeps `after`
    /// as the recorder's service-time view. Don't mix this with
    /// [`absorb_stage_delta`](Self::absorb_stage_delta) on one
    /// recorder — the service histograms would double-count.
    pub fn absorb_stage_window(
        &mut self,
        before: &StageLatency,
        after: &StageLatency,
        batch_lag_ns: u64,
    ) {
        for s in Stage::ALL {
            let (hb, ha) = (before.stage(s), after.stage(s));
            if ha.count() == hb.count() {
                continue;
            }
            let out = &mut self.stages_corrected[s.index()];
            for (i, (&a, &b)) in ha.buckets().iter().zip(hb.buckets().iter()).enumerate() {
                let n = a.saturating_sub(b);
                if n == 0 {
                    continue;
                }
                let service = crate::latency::HostHistogram::bucket_high(i).min(ha.max());
                out.record_n(service.saturating_add(batch_lag_ns), n);
            }
        }
        self.stages_service = *after;
    }

    /// Records one GC tick's pause: host nanoseconds the injector was
    /// stalled inside the timer-driven flow-table GC. With incremental
    /// (budgeted) expiry this must stay bounded no matter how many
    /// flows are resident; the max is the gated figure.
    pub fn record_gc_pause(&mut self, pause_ns: u64) {
        self.gc_pause.record(pause_ns);
    }

    /// The GC pause histogram (one observation per GC tick).
    pub fn gc_pause(&self) -> &UnderLoadHistogram {
        &self.gc_pause
    }

    /// Updates the injector backlog (due-but-undelivered segments).
    pub fn set_backlog(&mut self, n: u64) {
        self.lag.set_backlog(n);
    }

    /// Samples per-shard occupancy/evictions, tracking the total's
    /// peak and counting samples that exceed the configured capacity.
    pub fn sample_shards(&mut self, shards: &[ShardSample]) {
        self.shard_occupancy.clear();
        self.shard_evicted.clear();
        let mut total = 0u64;
        for s in shards {
            self.shard_occupancy.push(s.occupancy);
            self.shard_evicted.push(s.evicted);
            total += s.occupancy;
        }
        self.occupancy_peak = self.occupancy_peak.max(total);
        if total > self.capacity {
            self.over_capacity_samples += 1;
        }
        self.samples += 1;
    }

    /// Segments recorded so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The naive (closed-loop) end-to-end histogram.
    pub fn naive(&self) -> &UnderLoadHistogram {
        &self.naive
    }

    /// The coordinated-omission-corrected end-to-end histogram.
    pub fn corrected(&self) -> &UnderLoadHistogram {
        self.corrected.hist()
    }

    /// The tail exemplars captured on the corrected histogram (empty
    /// unless segments were recorded with a span context).
    pub fn corrected_exemplars(&self) -> &TailExemplars {
        self.corrected.exemplars()
    }

    /// Exemplar-annotated Prometheus exposition of the corrected
    /// end-to-end histogram (the registry's name-only model cannot
    /// carry exemplars, so the recorder emits this family directly).
    pub fn corrected_prometheus(&self) -> String {
        self.corrected.to_prometheus(
            "tcpfo_underload_corrected_e2e_ns",
            "coordinated-omission-corrected end-to-end latency (log2 buckets, nanoseconds)",
        )
    }

    /// The corrected histogram for one datapath stage.
    pub fn stage_corrected(&self, stage: Stage) -> &UnderLoadHistogram {
        &self.stages_corrected[stage.index()]
    }

    /// The raw (service-time-only) per-stage histograms absorbed so
    /// far.
    pub fn stages_service(&self) -> &StageLatency {
        &self.stages_service
    }

    /// The lag/backlog tracker.
    pub fn lag(&self) -> &LagTracker {
        &self.lag
    }

    /// Sliding-window corrected quantile at `now_ns`.
    pub fn windowed_quantile(&self, now_ns: u64, q: f64) -> Quantile {
        self.corrected_windowed.sliding(now_ns).quantile_report(q)
    }

    /// The configured occupancy ceiling this recorder gates against.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Peak total occupancy seen across samples.
    pub fn occupancy_peak(&self) -> u64 {
        self.occupancy_peak
    }

    /// Samples whose total occupancy exceeded the configured capacity.
    pub fn over_capacity_samples(&self) -> u64 {
        self.over_capacity_samples
    }

    /// Mirrors the under-load state into the registry under
    /// `scope.underload.*` so Prometheus scrapes and the live views
    /// see lag, backlog, corrected quantiles and occupancy without
    /// touching the recorder itself.
    pub fn publish(&self, scope: &Scope, now_ns: u64) {
        let ul = scope.scope("underload");
        let set = |name: &str, v: u64| ul.gauge(name).set_at(v, now_ns);
        set("injected", self.injected);
        set("lag_p50_ns", self.lag.histogram().p50());
        set("lag_p99_ns", self.lag.histogram().p99());
        set("lag_max_ns", self.lag.histogram().max());
        set("backlog", self.lag.backlog());
        set("backlog_peak", self.lag.max_backlog());
        set("naive_p99_ns", self.naive.p99());
        set("naive_p999_ns", self.naive.p999());
        set("corrected_p99_ns", self.corrected.hist().p99());
        set("corrected_exemplars", self.corrected.exemplars().captured());
        let p999 = self.corrected.hist().quantile_report(0.999);
        set("corrected_p999_ns", p999.value);
        set("corrected_p999_saturated", u64::from(p999.saturated));
        let win = self.corrected_windowed.sliding(now_ns);
        set("window_p99_ns", win.p99());
        set("window_p999_ns", win.p999());
        set("gc_ticks", self.gc_pause.count());
        set("gc_pause_p50_ns", self.gc_pause.p50());
        set("gc_pause_p99_ns", self.gc_pause.p99());
        set("gc_pause_max_ns", self.gc_pause.max());
        set("occupancy_peak", self.occupancy_peak);
        set("occupancy_cap", self.capacity);
        set("over_capacity_samples", self.over_capacity_samples);
        for s in Stage::ALL {
            ul.scope("corrected")
                .gauge(&format!("{}_p999_ns", s.name()))
                .set_at(self.stages_corrected[s.index()].p999(), now_ns);
        }
        for (i, (&occ, &ev)) in self
            .shard_occupancy
            .iter()
            .zip(&self.shard_evicted)
            .enumerate()
        {
            let sc = ul.scope(&format!("shard{i}"));
            sc.gauge("occupancy").set_at(occ, now_ns);
            sc.gauge("evicted").set_at(ev, now_ns);
        }
    }

    /// Renders the whole under-load record as a JSON object, windows
    /// evaluated at `now_ns`.
    pub fn to_json(&self, now_ns: u64) -> String {
        let mut stages = JsonObject::new();
        for s in Stage::ALL {
            let mut obj = JsonObject::new();
            let service = self.stages_service.stage(s);
            let corrected = &self.stages_corrected[s.index()];
            let c999 = corrected.quantile_report(0.999);
            obj.u64("count", corrected.count())
                .u64("service_p99_ns", service.p99())
                .u64("service_p999_ns", service.p999())
                .u64("corrected_p99_ns", corrected.p99())
                .u64("corrected_p999_ns", c999.value)
                .raw("corrected_p999_saturated", c999.saturated.to_string());
            stages.raw(s.name(), obj.render());
        }
        let win = self.corrected_windowed.sliding(now_ns);
        let mut lag = JsonObject::new();
        lag.u64("p50_ns", self.lag.histogram().p50())
            .u64("p99_ns", self.lag.histogram().p99())
            .u64("max_ns", self.lag.histogram().max())
            .u64("backlog", self.lag.backlog())
            .u64("backlog_peak", self.lag.max_backlog());
        let mut gc = JsonObject::new();
        gc.u64("ticks", self.gc_pause.count())
            .u64("pause_p50_ns", self.gc_pause.p50())
            .u64("pause_p99_ns", self.gc_pause.p99())
            .u64("pause_p999_ns", self.gc_pause.p999())
            .u64("pause_max_ns", self.gc_pause.max());
        let mut occupancy = JsonObject::new();
        occupancy
            .u64("peak", self.occupancy_peak)
            .u64("cap", self.capacity)
            .u64("samples", self.samples)
            .u64("over_capacity_samples", self.over_capacity_samples)
            .raw(
                "per_shard_last",
                crate::json::array(
                    &self
                        .shard_occupancy
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>(),
                ),
            );
        let mut root = JsonObject::new();
        root.u64("injected", self.injected)
            .raw("naive", self.naive.to_json())
            .raw("corrected", self.corrected.hist().to_json())
            .raw("corrected_exemplars", self.corrected.exemplars().to_json())
            .raw("window", win.to_json())
            .raw("stages", stages.render())
            .raw("lag", lag.render())
            .raw("gc", gc.render())
            .raw("occupancy", occupancy.render());
        root.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_rotation_expires_old_windows() {
        let mut w: WindowedHistogram<48> = WindowedHistogram::new(1_000, 4);
        w.record(100, 7);
        w.record(1_100, 9);
        assert_eq!(w.sliding(1_100).count(), 2, "both windows live");
        // Jump far ahead: only the new window should remain visible.
        w.record(10_500, 42);
        let live = w.sliding(10_500);
        assert_eq!(live.count(), 1);
        assert_eq!(live.max(), 42);
        assert_eq!(w.total_count(), 3, "nothing is lost, only excluded");
    }

    #[test]
    fn windowed_single_window_still_works() {
        let mut w: WindowedHistogram<48> = WindowedHistogram::new(0, 0);
        assert_eq!(w.window_ns(), 1);
        assert_eq!(w.windows(), 1);
        w.record(5, 1);
        assert_eq!(w.sliding(5).count(), 1);
    }

    #[test]
    fn corrected_includes_lag_naive_does_not() {
        let mut r = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        // Intended at t=0, injected 5 ms late, served in 1 µs.
        r.record_segment(0, 5_000_000, 5_001_000);
        assert_eq!(r.injected(), 1);
        assert!(r.naive().max() < 2_000, "naive sees only service time");
        assert!(
            r.corrected().max() >= 5_000_000,
            "corrected carries the 5 ms of coordinated omission"
        );
        assert!(r.lag().histogram().max() >= 5_000_000);
    }

    #[test]
    fn stage_rebasing_shifts_by_lag() {
        let mut r = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        let mut delta = StageLatency::new();
        delta.record(Stage::FlowLookup, 200);
        delta.record(Stage::FlowLookup, 300);
        r.absorb_stage_delta(&delta, 1_000_000);
        let h = r.stage_corrected(Stage::FlowLookup);
        assert_eq!(h.count(), 2);
        assert!(h.min() >= 1_000_000, "service re-based onto lag axis");
        assert_eq!(r.stages_service().stage(Stage::FlowLookup).count(), 2);
        // Zero lag keeps the corrected value an upper bound of service.
        let mut r2 = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        r2.absorb_stage_delta(&delta, 0);
        assert!(r2.stage_corrected(Stage::FlowLookup).min() >= 200);
        assert!(r2.stage_corrected(Stage::FlowLookup).max() <= 300);
    }

    #[test]
    fn stage_window_diffs_snapshots_and_keeps_cumulative_service() {
        let mut before = StageLatency::new();
        before.record(Stage::IngressParse, 100);
        let mut after = before;
        after.record(Stage::IngressParse, 120);
        after.record(Stage::FlowLookup, 250);
        let mut r = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        r.absorb_stage_window(&before, &after, 10_000);
        // Only the two new samples are re-based; the pre-existing one
        // is not replayed.
        assert_eq!(r.stage_corrected(Stage::IngressParse).count(), 1);
        assert_eq!(r.stage_corrected(Stage::FlowLookup).count(), 1);
        assert!(r.stage_corrected(Stage::FlowLookup).min() >= 10_000);
        // The service view is the cumulative `after` snapshot.
        assert_eq!(r.stages_service().stage(Stage::IngressParse).count(), 2);
        assert_eq!(r.stages_service().stage(Stage::FlowLookup).count(), 1);
    }

    #[test]
    fn corrected_tail_samples_capture_exemplars_with_context() {
        use crate::audit::TraceId;
        use crate::span::{SpanContext, SpanId};
        let mut r = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        let ctx = |s: u64| {
            Some(SpanContext {
                trace: TraceId(3),
                span: SpanId(s),
            })
        };
        // A fast baseline, then a tail sample: the slow one must carry
        // an exemplar pointing at the span that was active.
        for i in 0..200 {
            r.record_segment_ctx(i * 10, i * 10, i * 10 + 500, ctx(1));
        }
        r.record_segment_ctx(0, 40_000_000, 40_000_100, ctx(99));
        let ex = r.corrected_exemplars();
        assert!(ex.captured() > 0);
        assert_eq!(ex.top().unwrap().ctx.span, SpanId(99));
        let prom = r.corrected_prometheus();
        assert!(prom.contains("span_id=\"s99\""), "{prom}");
        assert!(
            prom.contains("# TYPE tcpfo_underload_corrected_e2e_ns histogram"),
            "{prom}"
        );
        // Without a context nothing is captured.
        let mut plain = UnderLoadRecorder::new(1_000_000, 8, 1_000);
        plain.record_segment(0, 40_000_000, 40_000_100);
        assert_eq!(plain.corrected_exemplars().captured(), 0);
        let json = r.to_json(0);
        assert!(json.contains("\"corrected_exemplars\""), "{json}");
    }

    #[test]
    fn occupancy_cap_violations_are_counted() {
        let mut r = UnderLoadRecorder::new(1_000, 2, 100);
        r.sample_shards(&[
            ShardSample {
                occupancy: 40,
                evicted: 0,
            },
            ShardSample {
                occupancy: 50,
                evicted: 1,
            },
        ]);
        assert_eq!(r.occupancy_peak(), 90);
        assert_eq!(r.over_capacity_samples(), 0);
        r.sample_shards(&[ShardSample {
            occupancy: 120,
            evicted: 3,
        }]);
        assert_eq!(r.occupancy_peak(), 120);
        assert_eq!(r.over_capacity_samples(), 1);
    }

    #[test]
    fn backlog_high_water() {
        let mut r = UnderLoadRecorder::new(1_000, 2, 100);
        r.set_backlog(10);
        r.set_backlog(3);
        assert_eq!(r.lag().backlog(), 3);
        assert_eq!(r.lag().max_backlog(), 10);
    }

    #[test]
    fn gc_pause_histogram_records_and_reports() {
        let mut r = UnderLoadRecorder::new(1_000_000, 4, 500);
        assert_eq!(r.gc_pause().count(), 0);
        r.record_gc_pause(50_000);
        r.record_gc_pause(2_000_000);
        assert_eq!(r.gc_pause().count(), 2);
        assert_eq!(r.gc_pause().max(), 2_000_000);
        let json = r.to_json(0);
        assert!(json.contains("\"gc\""), "{json}");
        assert!(json.contains("\"ticks\": 2"), "{json}");
        assert!(json.contains("\"pause_max_ns\": 2000000"), "{json}");
    }

    #[test]
    fn publish_mirrors_into_registry() {
        use crate::registry::Registry;
        let reg = Registry::new();
        let mut r = UnderLoadRecorder::new(1_000_000, 4, 500);
        r.record_segment(0, 2_000_000, 2_000_500);
        r.record_gc_pause(123_000);
        r.sample_shards(&[ShardSample {
            occupancy: 7,
            evicted: 0,
        }]);
        r.publish(&reg.scope("bench"), 2_000_500);
        let snap = reg.snapshot(2_000_500);
        assert_eq!(snap.gauge("bench.underload.injected").unwrap().value, 1);
        assert!(snap.gauge("bench.underload.lag_max_ns").unwrap().value >= 2_000_000);
        assert_eq!(
            snap.gauge("bench.underload.occupancy_peak").unwrap().value,
            7
        );
        assert_eq!(
            snap.gauge("bench.underload.shard0.occupancy")
                .unwrap()
                .value,
            7
        );
        assert_eq!(snap.gauge("bench.underload.gc_ticks").unwrap().value, 1);
        assert!(snap.gauge("bench.underload.gc_pause_max_ns").unwrap().value >= 123_000);
        let json = r.to_json(2_000_500);
        assert!(json.contains("\"corrected\""), "{json}");
        assert!(json.contains("\"flow_lookup\""), "{json}");
        assert!(json.contains("\"backlog_peak\""), "{json}");
    }
}
