//! Aligned text-table exposition for humans reading CI logs.

use crate::registry::MetricsSnapshot;

/// Renders rows as two right-padded / right-aligned columns under a
/// header, e.g. for counter listings.
pub fn two_columns(header: &str, rows: &[(String, String)]) -> String {
    let left = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let right = rows.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
    let mut out = format!("{header}\n");
    for (l, r) in rows {
        out.push_str(&format!("  {l:<left$}  {r:>right$}\n"));
    }
    out
}

/// Renders a full metrics snapshot as aligned sections (counters,
/// gauges, histograms), omitting empty sections.
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = format!("metrics @ {}\n", crate::fmt_nanos(snap.at_ns));
    if !snap.counters.is_empty() {
        let rows: Vec<(String, String)> = snap
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        out.push_str(&two_columns("counters:", &rows));
    }
    if !snap.gauges.is_empty() {
        let rows: Vec<(String, String)> = snap
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), format!("{} (high {})", g.value, g.high_water)))
            .collect();
        out.push_str(&two_columns("gauges:", &rows));
    }
    if !snap.histograms.is_empty() {
        let rows: Vec<(String, String)> = snap
            .histograms
            .iter()
            .map(|(k, h)| {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                (
                    k.clone(),
                    format!("n={} min={} mean={} max={}", h.count, h.min, mean, h.max),
                )
            })
            .collect();
        out.push_str(&two_columns("histograms:", &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn table_is_aligned() {
        let r = Registry::new();
        r.counter("short").add(1);
        r.counter("a.much.longer.name").add(123_456);
        r.gauge("g").set(9);
        r.histogram("h").record(64);
        let table = r.snapshot(5_000).to_table();
        assert!(table.contains("metrics @ 5µs"), "{table}");
        let lines: Vec<&str> = table.lines().collect();
        let short = lines.iter().find(|l| l.contains("short")).unwrap();
        let long = lines.iter().find(|l| l.contains("longer")).unwrap();
        assert_eq!(
            short.trim_end().len(),
            long.trim_end().len(),
            "values right-aligned:\n{table}"
        );
        assert!(table.contains("9 (high 9)"), "{table}");
        assert!(table.contains("n=1 min=64 mean=64 max=64"), "{table}");
    }
}
