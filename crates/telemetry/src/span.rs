//! Cross-layer failover span tracing (PR 10).
//!
//! The PR 5 timeline and PR 8 health observatory reduce a takeover to
//! aggregate phase deltas and scores; this module records the *causal
//! story* — Dapper-style spans layered on the PR 3 [`TraceId`] chains,
//! so a specific slow sample or promotion links back to the concrete
//! sequence of detector, controller, bridge and reprovision events
//! that produced it.
//!
//! * [`Tracer`] — a shared, cheaply-cloned recorder handle. Detached
//!   (the default) it is *dormant*: recording is one relaxed atomic
//!   load and a branch, no allocation, no clock read — the same
//!   discipline as the auditor/latency/health observatories, and the
//!   zero-alloc proof covers it. Attaching pre-allocates a fixed
//!   capacity ring; recording after attach is lock + array moves, no
//!   heap (names and arg keys are `&'static str`, args are `u64`).
//! * [`SpanRecord`] — one completed span or instant: id, parent link,
//!   trace id, track (control plane on sim time vs. datapath on host
//!   time), start, duration, and up to two numeric args.
//! * Ring semantics — bounded, drop-oldest, with **exact** drop
//!   accounting ([`Tracer::dropped`]), mirroring the journal: a long
//!   run can never grow without bound, and saturation is visible, not
//!   silent. Because parents begin before their children, retained
//!   spans always keep parent-before-child order.
//! * [`TailExemplars`] / [`ExemplarHistogram`] — the bridge between
//!   histograms and traces: when a recorded duration lands in a
//!   configured top bucket (at or above the live p99.9 bucket for
//!   [`ExemplarHistogram`]), the active [`SpanContext`] is captured as
//!   an exemplar, so every tail sample points at a concrete trace.
//! * [`chrome_trace_json`] — export as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto), with the control
//!   plane and the datapath as separate processes because they run on
//!   different timebases.
//! * [`waterfall_records`] — synthetic contiguous spans derived from
//!   the §5 MTTR decomposition and the PR 9 redundancy timeline, so
//!   the exported waterfall's phase durations sum *exactly* to the
//!   measured MTTR even when the live ring dropped events.
//!
//! # Example
//!
//! ```
//! use tcpfo_telemetry::span::{SpanTrack, Tracer};
//!
//! let tracer = Tracer::attached(64);
//! let span = tracer
//!     .begin(SpanTrack::Control, "chain", "promotion", 1_000)
//!     .unwrap();
//! tracer.instant(SpanTrack::Control, "chain", "veto_cleared", 1_500);
//! tracer.end(&span, 2_000);
//! assert_eq!(tracer.len(), 2);
//! let chrome = tracer.chrome_trace(&[]);
//! assert!(chrome.contains("\"traceEvents\""));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::audit::TraceId;
use crate::json::{array, JsonObject};
use crate::latency::{LogHistogram, Stage, StageLatency};
use crate::timeline::{FailoverTimeline, RedundancyTimeline};

/// Default span ring capacity (records).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Whether the `TCPFO_TRACE` environment knob asks for span tracing to
/// be attached (any non-empty value other than `0`), mirroring
/// [`crate::audit::env_audit_enabled`].
pub fn env_trace_enabled() -> bool {
    std::env::var("TCPFO_TRACE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The span ring capacity: `TCPFO_TRACE_CAP` or the default.
pub fn env_trace_capacity() -> usize {
    crate::audit::env_capacity("TCPFO_TRACE_CAP", DEFAULT_SPAN_CAPACITY).max(1)
}

/// A process-unique span identifier. `0` is reserved for "no span".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no span.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for SpanId {
    /// `s<N>`, or `s-` for the null id (mirroring [`TraceId`]'s `t<N>`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "s-")
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// The active span context: which trace and which span within it.
/// `Copy`, so the datapath can thread it through without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The PR 3 causal chain this span belongs to.
    pub trace: TraceId,
    /// The span itself.
    pub span: SpanId,
}

/// Which timebase (and Chrome-trace process) a span belongs to. The
/// control plane runs on *simulated* nanoseconds; sampled hot-path
/// spans run on *host* nanoseconds ([`crate::latency::HostClock`]).
/// Chrome tracks must not mix timebases, so each gets its own pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanTrack {
    /// Failover control plane: detector, chain controller, VIP
    /// takeover, reprovisioning. Timestamps are sim nanoseconds.
    Control,
    /// Sampled datapath spans (batch + per-stage). Timestamps are host
    /// nanoseconds.
    Hotpath,
}

impl SpanTrack {
    /// Chrome trace-event process id for this track.
    pub fn pid(self) -> u32 {
        match self {
            SpanTrack::Control => 1,
            SpanTrack::Hotpath => 2,
        }
    }

    /// Human process name for the Chrome export.
    pub fn process_name(self) -> &'static str {
        match self {
            SpanTrack::Control => "tcpfo control plane (sim ns)",
            SpanTrack::Hotpath => "tcpfo datapath (host ns)",
        }
    }

    /// Stable lowercase name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpanTrack::Control => "control",
            SpanTrack::Hotpath => "hotpath",
        }
    }
}

/// Whether a record is a duration span or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `[start, start+dur]` interval.
    Span,
    /// A point-in-time marker.
    Instant,
}

/// One numeric span argument: `&'static str` key, `u64` value — no
/// heap, so recording stays zero-alloc.
pub type SpanArg = (&'static str, u64);

/// One recorded span or instant. `Copy`: the ring is a flat array of
/// these, and recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Parent span id ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// The causal chain the span belongs to.
    pub trace: TraceId,
    /// Timebase / Chrome process.
    pub track: SpanTrack,
    /// Span vs. instant.
    pub kind: SpanKind,
    /// Emitting component lane (Chrome thread), e.g. `detector`.
    pub lane: &'static str,
    /// Event name, e.g. `promotion_gate`.
    pub name: &'static str,
    /// Start (or occurrence) time in the track's timebase.
    pub start_ns: u64,
    /// Duration; 0 for instants and still-open spans.
    pub dur_ns: u64,
    /// Whether the span was begun but never ended (yet).
    pub open: bool,
    /// Up to two numeric args.
    pub args: [Option<SpanArg>; 2],
}

impl SpanRecord {
    /// One-line rendering for text dumps:
    /// `[1ms+2ms] control/chain promotion_gate T5/S3<-S2 vetoes=1`.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "[{}{}] {}/{} {} {}/{}",
            crate::fmt_nanos(self.start_ns),
            if self.kind == SpanKind::Span {
                format!("+{}", crate::fmt_nanos(self.dur_ns))
            } else {
                String::new()
            },
            self.track.name(),
            self.lane,
            self.name,
            self.trace,
            self.id,
        );
        if !self.parent.is_none() {
            out.push_str(&format!("<-{}", self.parent));
        }
        if self.open {
            out.push_str(" open");
        }
        for (k, v) in self.args.iter().flatten() {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }

    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.u64("id", self.id.0)
            .u64("parent", self.parent.0)
            .u64("trace", self.trace.0)
            .string("track", self.track.name())
            .string(
                "kind",
                match self.kind {
                    SpanKind::Span => "span",
                    SpanKind::Instant => "instant",
                },
            )
            .string("lane", self.lane)
            .string("name", self.name)
            .u64("start_ns", self.start_ns)
            .u64("dur_ns", self.dur_ns)
            .raw("open", self.open.to_string());
        let mut args = JsonObject::new();
        for (k, v) in self.args.iter().flatten() {
            args.u64(k, *v);
        }
        obj.raw("args", args.render());
        obj.render()
    }
}

/// A begun-but-not-yet-ended span: the `Copy` token [`Tracer::begin`]
/// hands out and [`Tracer::end`] consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSpan {
    /// The span's context (pass to children and exemplars).
    pub ctx: SpanContext,
    parent: SpanId,
}

impl ActiveSpan {
    /// The context to hand to children / exemplar capture.
    pub fn ctx(&self) -> SpanContext {
        self.ctx
    }
}

/// Pre-allocated ring state behind the tracer mutex.
#[derive(Debug)]
struct RingState {
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    /// Records evicted because the ring was full (exact).
    dropped: u64,
    /// `end` calls whose begin record had already been evicted: the
    /// duration is lost but the loss is counted.
    lost_ends: u64,
    /// The innermost live span (exemplar capture reads this).
    current: Option<SpanContext>,
}

#[derive(Debug)]
struct TracerInner {
    attached: AtomicBool,
    next_span: AtomicU64,
    state: Mutex<Option<RingState>>,
}

/// The shared span recorder. Cloning shares the ring, so every layer
/// of one replica (detector, controller, bridges, reprovisioner)
/// records into a single coherent trace. Dormant by default: all
/// recording entry points check one relaxed atomic and return — no
/// lock, no allocation — until [`Tracer::attach`] arms the ring.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            attached: AtomicBool::new(false),
            next_span: AtomicU64::new(1),
            state: Mutex::new(None),
        }
    }
}

impl Tracer {
    /// A dormant tracer (recording is a no-op until attached).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A tracer armed with a `capacity`-record ring.
    pub fn attached(capacity: usize) -> Self {
        let t = Tracer::new();
        t.attach(capacity);
        t
    }

    /// A tracer honouring the `TCPFO_TRACE` / `TCPFO_TRACE_CAP`
    /// environment knobs: attached iff `TCPFO_TRACE` is set.
    pub fn from_env() -> Self {
        if env_trace_enabled() {
            Tracer::attached(env_trace_capacity())
        } else {
            Tracer::new()
        }
    }

    /// Arms the ring (idempotent; an existing ring is kept). The ring
    /// buffer is allocated *here*, so recording afterwards never
    /// allocates.
    pub fn attach(&self, capacity: usize) {
        let mut state = self.inner.state.lock().unwrap();
        if state.is_none() {
            *state = Some(RingState {
                ring: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                dropped: 0,
                lost_ends: 0,
                current: None,
            });
        }
        self.inner.attached.store(true, Ordering::Release);
    }

    /// Whether recording is armed. One relaxed load: this is the only
    /// cost the detached hot path pays.
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.inner.attached.load(Ordering::Relaxed)
    }

    fn fresh_span(&self) -> SpanId {
        SpanId(self.inner.next_span.fetch_add(1, Ordering::Relaxed))
    }

    fn push(state: &mut RingState, rec: SpanRecord) {
        if state.ring.len() == state.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(rec);
    }

    /// Begins a span as a child of the innermost live span (a fresh
    /// root trace when none is live). Returns `None` when detached.
    pub fn begin(
        &self,
        track: SpanTrack,
        lane: &'static str,
        name: &'static str,
        start_ns: u64,
    ) -> Option<ActiveSpan> {
        if !self.is_attached() {
            return None;
        }
        let current = self.inner.state.lock().unwrap().as_ref()?.current;
        match current {
            Some(parent) => self.begin_child(parent, track, lane, name, start_ns),
            None => self.begin_root(track, lane, name, start_ns),
        }
    }

    /// Begins a root span on a fresh [`TraceId`] chain. Returns `None`
    /// when detached.
    pub fn begin_root(
        &self,
        track: SpanTrack,
        lane: &'static str,
        name: &'static str,
        start_ns: u64,
    ) -> Option<ActiveSpan> {
        if !self.is_attached() {
            return None;
        }
        self.begin_with(TraceId::fresh(), SpanId::NONE, track, lane, name, start_ns)
    }

    /// Begins a child of an explicit parent context. Returns `None`
    /// when detached.
    pub fn begin_child(
        &self,
        parent: SpanContext,
        track: SpanTrack,
        lane: &'static str,
        name: &'static str,
        start_ns: u64,
    ) -> Option<ActiveSpan> {
        if !self.is_attached() {
            return None;
        }
        self.begin_with(parent.trace, parent.span, track, lane, name, start_ns)
    }

    fn begin_with(
        &self,
        trace: TraceId,
        parent: SpanId,
        track: SpanTrack,
        lane: &'static str,
        name: &'static str,
        start_ns: u64,
    ) -> Option<ActiveSpan> {
        let id = self.fresh_span();
        let ctx = SpanContext { trace, span: id };
        let mut guard = self.inner.state.lock().unwrap();
        let state = guard.as_mut()?;
        // The begin record enters the ring immediately (duration
        // patched at end): parents therefore always precede their
        // children, and drop-oldest eviction preserves that order
        // among retained spans.
        Self::push(
            state,
            SpanRecord {
                id,
                parent,
                trace,
                track,
                kind: SpanKind::Span,
                lane,
                name,
                start_ns,
                dur_ns: 0,
                open: true,
                args: [None, None],
            },
        );
        state.current = Some(ctx);
        Some(ActiveSpan { ctx, parent })
    }

    /// Ends a span begun with one of the `begin*` entry points.
    pub fn end(&self, span: &ActiveSpan, end_ns: u64) {
        self.end_args(span, end_ns, [None, None]);
    }

    /// Ends a span, attaching up to two numeric args.
    pub fn end_args(&self, span: &ActiveSpan, end_ns: u64, args: [Option<SpanArg>; 2]) {
        if !self.is_attached() {
            return;
        }
        let mut guard = self.inner.state.lock().unwrap();
        let Some(state) = guard.as_mut() else {
            return;
        };
        // Spans end shortly after they begin, so the open record is
        // near the back of the ring; scan from the back.
        match state.ring.iter_mut().rev().find(|r| r.id == span.ctx.span) {
            Some(rec) => {
                rec.dur_ns = end_ns.saturating_sub(rec.start_ns);
                rec.open = false;
                rec.args = args;
            }
            // The begin record was evicted before the span ended: the
            // duration is lost, but the loss is counted.
            None => state.lost_ends += 1,
        }
        if state.current == Some(span.ctx) {
            state.current = (!span.parent.is_none()).then_some(SpanContext {
                trace: span.ctx.trace,
                span: span.parent,
            });
        }
    }

    /// Records a point event under the innermost live span (fresh root
    /// trace when none is live).
    pub fn instant(&self, track: SpanTrack, lane: &'static str, name: &'static str, at_ns: u64) {
        self.instant_args(track, lane, name, at_ns, [None, None]);
    }

    /// Records a point event with up to two numeric args.
    pub fn instant_args(
        &self,
        track: SpanTrack,
        lane: &'static str,
        name: &'static str,
        at_ns: u64,
        args: [Option<SpanArg>; 2],
    ) {
        if !self.is_attached() {
            return;
        }
        let id = self.fresh_span();
        let mut guard = self.inner.state.lock().unwrap();
        let Some(state) = guard.as_mut() else {
            return;
        };
        let (trace, parent) = match state.current {
            Some(ctx) => (ctx.trace, ctx.span),
            None => (TraceId::fresh(), SpanId::NONE),
        };
        Self::push(
            state,
            SpanRecord {
                id,
                parent,
                trace,
                track,
                kind: SpanKind::Instant,
                lane,
                name,
                start_ns: at_ns,
                dur_ns: 0,
                open: false,
                args,
            },
        );
    }

    /// The innermost live span context, for exemplar capture and for
    /// threading into children recorded elsewhere. `None` when
    /// detached or when no span is live.
    pub fn current(&self) -> Option<SpanContext> {
        if !self.is_attached() {
            return None;
        }
        self.inner.state.lock().unwrap().as_ref()?.current
    }

    /// Records retained (oldest first).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |s| s.ring.len())
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full (exact count).
    pub fn dropped(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |s| s.dropped)
    }

    /// `end` calls whose begin record had already been evicted.
    pub fn lost_ends(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |s| s.lost_ends)
    }

    /// The configured ring capacity (0 when never attached).
    pub fn capacity(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |s| s.capacity)
    }

    /// JSON dump of the retained records plus drop accounting, for
    /// flight-recorder bundles and `export_json`.
    pub fn to_json(&self) -> String {
        let recs: Vec<String> = self.records().iter().map(SpanRecord::to_json).collect();
        let mut obj = JsonObject::new();
        obj.raw("attached", self.is_attached().to_string())
            .u64("capacity", self.capacity() as u64)
            .u64("dropped", self.dropped())
            .u64("lost_ends", self.lost_ends())
            .raw("spans", array(&recs));
        obj.render()
    }

    /// Chrome trace-event JSON of the retained records, with `extra`
    /// synthetic records (e.g. [`waterfall_records`]) merged in.
    pub fn chrome_trace(&self, extra: &[SpanRecord]) -> String {
        let mut recs = self.records();
        recs.extend_from_slice(extra);
        chrome_trace_json(&recs)
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Renders records as Chrome trace-event JSON (the object form, with
/// `traceEvents`), loadable in `chrome://tracing` and Perfetto.
/// Complete spans map to `"ph": "X"` events, instants to `"ph": "i"`;
/// the two [`SpanTrack`]s become separate processes because they run
/// on different timebases, and each lane becomes a named thread.
/// Timestamps are microseconds with nanosecond fractions.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    // Stable lane → tid assignment, in first-seen order per track.
    let mut lanes: Vec<(u32, &'static str)> = Vec::new();
    let mut tid_of = |track: SpanTrack, lane: &'static str| -> usize {
        match lanes
            .iter()
            .position(|&(p, l)| p == track.pid() && l == lane)
        {
            Some(i) => i + 1,
            None => {
                lanes.push((track.pid(), lane));
                lanes.len()
            }
        }
    };
    let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
    let mut events: Vec<String> = Vec::new();
    for track in [SpanTrack::Control, SpanTrack::Hotpath] {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.pid(),
            track.process_name(),
        ));
    }
    let mut named: Vec<(u32, usize)> = Vec::new();
    for r in records {
        let pid = r.track.pid();
        let tid = tid_of(r.track, r.lane);
        if !named.contains(&(pid, tid)) {
            named.push((pid, tid));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                r.lane,
            ));
        }
        let mut args = format!(
            "\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{}",
            r.trace.0, r.id.0, r.parent.0
        );
        for (k, v) in r.args.iter().flatten() {
            args.push_str(&format!(",\"{k}\":{v}"));
        }
        if r.open {
            args.push_str(",\"open\":1");
        }
        match r.kind {
            SpanKind::Span => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                r.name,
                r.lane,
                us(r.start_ns),
                us(r.dur_ns),
            )),
            SpanKind::Instant => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
                r.name,
                r.lane,
                us(r.start_ns),
            )),
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Synthetic waterfall spans derived from the §5 MTTR decomposition
/// (and, when complete, the PR 9 redundancy timeline): one parent
/// `failover` span whose five phase children are contiguous and sum
/// exactly to the measured MTTR, plus a `redundancy_restore` span with
/// `reprovision` / `catchup` children. Returns an empty vec until the
/// failover timeline is complete. These ride the Control track next to
/// the live-recorded spans, so the exported waterfall is exact even
/// when the live ring dropped events.
pub fn waterfall_records(
    timeline: &FailoverTimeline,
    redundancy: &RedundancyTimeline,
) -> Vec<SpanRecord> {
    let Some(mttr) = timeline.mttr() else {
        return Vec::new();
    };
    let failure_at = timeline
        .at(crate::timeline::FailoverPhase::Failure)
        .unwrap_or(0);
    let trace = TraceId::fresh();
    let mut next = 1u64;
    let mut fresh = || {
        let id = SpanId(next);
        next += 1;
        id
    };
    let mk = |id, parent, lane, name, start_ns, dur_ns| SpanRecord {
        id,
        parent,
        trace,
        track: SpanTrack::Control,
        kind: SpanKind::Span,
        lane,
        name,
        start_ns,
        dur_ns,
        open: false,
        args: [None, None],
    };
    let root = fresh();
    let mut out = vec![mk(
        root,
        SpanId::NONE,
        "waterfall",
        "failover",
        failure_at,
        mttr.total_ns,
    )];
    const PHASES: [&str; 5] = [
        "detection",
        "egress_hold",
        "translation_off",
        "arp_takeover",
        "first_client_byte",
    ];
    let mut cursor = failure_at;
    for (name, dur) in PHASES.into_iter().zip(mttr.deltas()) {
        out.push(mk(fresh(), root, "waterfall", name, cursor, dur));
        cursor += dur;
    }
    if let (Some(start), Some(red)) = (
        redundancy.at(crate::timeline::RedundancyPhase::ReprovisionStart),
        redundancy.restoration(),
    ) {
        let r = fresh();
        out.push(mk(
            r,
            SpanId::NONE,
            "waterfall",
            "redundancy_restore",
            start,
            red.total_ns,
        ));
        out.push(mk(
            fresh(),
            r,
            "waterfall",
            "reprovision",
            start,
            red.reprovision_ns,
        ));
        out.push(mk(
            fresh(),
            r,
            "waterfall",
            "catchup",
            start + red.reprovision_ns,
            red.catchup_ns,
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Tail exemplars
// ---------------------------------------------------------------------

/// Exemplar slots kept per histogram: the top slot aggregates every
/// bucket at or above `floor + EXEMPLAR_SLOTS - 1`.
pub const EXEMPLAR_SLOTS: usize = 8;

/// One captured exemplar: the value, when it was recorded, and the
/// span context that was active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (nanoseconds).
    pub value: u64,
    /// When it was recorded (the recorder's timebase).
    pub at_ns: u64,
    /// The active span context at record time.
    pub ctx: SpanContext,
}

impl Exemplar {
    /// OpenMetrics exemplar suffix for a Prometheus sample line:
    /// `# {trace_id="...",span_id="..."} <value> <ts seconds>`.
    pub fn prometheus_suffix(&self) -> String {
        format!(
            " # {{trace_id=\"{}\",span_id=\"{}\"}} {} {}.{:09}",
            self.ctx.trace,
            self.ctx.span,
            self.value,
            self.at_ns / 1_000_000_000,
            self.at_ns % 1_000_000_000,
        )
    }
}

/// Latest-wins exemplar capture over the tail buckets of a log2
/// histogram: an offered value whose bucket is at or above the
/// configured floor bucket is stored (bucket-keyed, newest wins), so
/// every tail bucket with traffic points at a concrete span. Fixed
/// slots, `Copy`, zero-alloc — safe to embed in hot-path recorders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailExemplars {
    floor_bucket: usize,
    slots: [Option<Exemplar>; EXEMPLAR_SLOTS],
    captured: u64,
}

impl Default for TailExemplars {
    fn default() -> Self {
        TailExemplars::new(0)
    }
}

impl TailExemplars {
    /// An empty set capturing buckets at or above `floor_bucket`.
    pub const fn new(floor_bucket: usize) -> Self {
        TailExemplars {
            floor_bucket,
            slots: [None; EXEMPLAR_SLOTS],
            captured: 0,
        }
    }

    /// The current floor bucket.
    pub fn floor_bucket(&self) -> usize {
        self.floor_bucket
    }

    /// Moves the capture floor (slots are bucket-keyed relative to the
    /// floor, so existing captures shift meaning; callers that re-base
    /// the floor per record — the [`ExemplarHistogram`] — only ever
    /// *raise* it, which demotes old captures toward the top slot).
    pub fn set_floor_bucket(&mut self, floor_bucket: usize) {
        if floor_bucket > self.floor_bucket {
            // Shift captures down so they stay keyed to the same
            // absolute buckets where possible; out-of-range captures
            // fall off the bottom (they are no longer tail).
            let shift = floor_bucket - self.floor_bucket;
            let mut slots = [None; EXEMPLAR_SLOTS];
            for (i, e) in self.slots.iter().enumerate() {
                if let Some(e) = e {
                    if i >= shift {
                        let j = (i - shift).min(EXEMPLAR_SLOTS - 1);
                        slots[j] = Some(*e);
                    }
                }
            }
            self.slots = slots;
        }
        self.floor_bucket = floor_bucket;
    }

    /// Offers a recorded value: captured iff its `bucket` is at or
    /// above the floor. Returns whether it was captured.
    pub fn offer(&mut self, bucket: usize, value: u64, at_ns: u64, ctx: SpanContext) -> bool {
        if bucket < self.floor_bucket {
            return false;
        }
        let slot = (bucket - self.floor_bucket).min(EXEMPLAR_SLOTS - 1);
        self.slots[slot] = Some(Exemplar { value, at_ns, ctx });
        self.captured += 1;
        true
    }

    /// The exemplar for `bucket` (absolute histogram bucket index), if
    /// one was captured.
    pub fn for_bucket(&self, bucket: usize) -> Option<Exemplar> {
        if bucket < self.floor_bucket {
            return None;
        }
        self.slots[(bucket - self.floor_bucket).min(EXEMPLAR_SLOTS - 1)]
    }

    /// The captured exemplars, lowest slot first.
    pub fn iter(&self) -> impl Iterator<Item = Exemplar> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// The newest exemplar in the highest occupied slot.
    pub fn top(&self) -> Option<Exemplar> {
        self.slots.iter().rev().flatten().next().copied()
    }

    /// Total offers accepted (not the number of occupied slots).
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Renders the occupied slots as a JSON array.
    pub fn to_json(&self) -> String {
        let slots: Vec<String> = self
            .iter()
            .map(|e| {
                let mut obj = JsonObject::new();
                obj.u64("value", e.value)
                    .u64("at_ns", e.at_ns)
                    .u64("trace", e.ctx.trace.0)
                    .u64("span", e.ctx.span.0);
                obj.render()
            })
            .collect();
        array(&slots)
    }
}

/// A [`LogHistogram`] with tail-exemplar capture wired in: recording
/// with a live span context captures the context whenever the value
/// lands in a *top* bucket — at or above the bucket holding the
/// histogram's own live p99.9 — so every tail sample points at a
/// concrete trace. The floor tracks the distribution as it grows:
/// it re-bases to the p99.9 bucket on every contextful record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExemplarHistogram<const N: usize> {
    hist: LogHistogram<N>,
    exemplars: TailExemplars,
}

impl<const N: usize> Default for ExemplarHistogram<N> {
    fn default() -> Self {
        ExemplarHistogram::new()
    }
}

impl<const N: usize> ExemplarHistogram<N> {
    /// An empty exemplar histogram.
    pub const fn new() -> Self {
        ExemplarHistogram {
            hist: LogHistogram::new(),
            exemplars: TailExemplars::new(0),
        }
    }

    /// Records `v`; with a context, captures an exemplar when `v`
    /// lands at or above the live p99.9 bucket.
    pub fn record_ctx(&mut self, v: u64, at_ns: u64, ctx: Option<SpanContext>) {
        self.hist.record(v);
        let Some(ctx) = ctx else {
            return;
        };
        self.exemplars
            .set_floor_bucket(LogHistogram::<N>::bucket_of(self.hist.quantile(0.999)));
        self.exemplars
            .offer(LogHistogram::<N>::bucket_of(v), v, at_ns, ctx);
    }

    /// Records without a span context (no exemplar capture).
    pub fn record(&mut self, v: u64) {
        self.record_ctx(v, 0, None);
    }

    /// The underlying histogram.
    pub fn hist(&self) -> &LogHistogram<N> {
        &self.hist
    }

    /// The captured tail exemplars.
    pub fn exemplars(&self) -> &TailExemplars {
        &self.exemplars
    }

    /// Prometheus exposition of this histogram as one family:
    /// cumulative `_bucket` series (exemplar-annotated where a tail
    /// capture exists), `_sum` and `_count`. `name` must already be a
    /// valid metric name.
    pub fn to_prometheus(&self, name: &str, help: &str) -> String {
        let mut out = String::new();
        crate::registry::prom_family(&mut out, name, help, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in self.hist.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = LogHistogram::<N>::bucket_high(i).to_string();
            let exemplar = self.exemplars.for_bucket(i).map(|e| e.prometheus_suffix());
            crate::registry::prom_sample(
                &mut out,
                &format!("{name}_bucket"),
                &[("le", &le)],
                &cumulative.to_string(),
                exemplar.as_deref(),
            );
        }
        crate::registry::prom_sample(
            &mut out,
            &format!("{name}_bucket"),
            &[("le", "+Inf")],
            &self.hist.count().to_string(),
            None,
        );
        out.push_str(&format!(
            "{name}_sum {}\n{name}_count {}\n",
            self.hist.sum(),
            self.hist.count()
        ));
        out
    }
}

/// Default batches between sampled hot-path batch spans.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 64;

/// The datapath's hot-path span recorder: samples one batch in
/// [`SpanSampler::period`] onto the [`SpanTrack::Hotpath`] track, with
/// one child span per PR5 pipeline stage sized from the stage-latency
/// deltas the batch produced. Attached to a bridge as
/// `Option<Box<SpanSampler>>` — detached costs nothing, attached but
/// with the tracer detached costs one counter increment and one
/// relaxed atomic load per batch, and sampled batches record into the
/// tracer's pre-allocated ring (no allocation on the hot path).
#[derive(Debug)]
pub struct SpanSampler {
    tracer: Tracer,
    period: u64,
    batches: u64,
    sampled: u64,
    /// Host-clock start of the in-flight sampled batch.
    open_at: Option<u64>,
    /// Context of the most recent sampled batch span: the exemplar
    /// link between the corrected-e2e histogram and the trace.
    last_ctx: Option<SpanContext>,
}

impl SpanSampler {
    /// A sampler recording into `tracer` every `period` batches.
    pub fn new(tracer: Tracer, period: u64) -> Self {
        SpanSampler {
            tracer,
            period: period.max(1),
            batches: 0,
            sampled: 0,
            open_at: None,
            last_ctx: None,
        }
    }

    /// A sampler with the default period.
    pub fn with_default_period(tracer: Tracer) -> Self {
        SpanSampler::new(tracer, DEFAULT_SAMPLE_PERIOD)
    }

    /// The tracer this sampler records into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Batches observed (sampled or not).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Batches that produced a span.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Context of the most recent sampled batch span, if any.
    pub fn last_ctx(&self) -> Option<SpanContext> {
        self.last_ctx
    }

    /// Called before a batch is processed. Returns whether this batch
    /// is sampled; when it is, the host clock is read once so the
    /// batch span starts at the true processing start.
    pub fn start_batch(&mut self) -> bool {
        let n = self.batches;
        self.batches += 1;
        if !self.tracer.is_attached() || !n.is_multiple_of(self.period) {
            self.open_at = None;
            return false;
        }
        self.open_at = Some(crate::latency::HostClock::now_ns());
        true
    }

    /// Called after a sampled batch (one where [`SpanSampler::start_batch`]
    /// returned true) finished processing. Records the batch span on
    /// the hot-path track and, when stage histograms were snapshotted
    /// around the batch, one contiguous child span per pipeline stage
    /// sized by that stage's latency-sum delta.
    pub fn finish_batch(
        &mut self,
        segments: u64,
        before: Option<&StageLatency>,
        after: Option<&StageLatency>,
    ) {
        let Some(t0) = self.open_at.take() else {
            return;
        };
        let Some(batch) = self
            .tracer
            .begin_root(SpanTrack::Hotpath, "datapath", "batch", t0)
        else {
            return;
        };
        self.sampled += 1;
        self.last_ctx = Some(batch.ctx);
        let t1 = crate::latency::HostClock::now_ns().max(t0);
        if let (Some(before), Some(after)) = (before, after) {
            // Stage children laid contiguously from the batch start in
            // pipeline order; each child's width is the host time that
            // stage consumed across the whole batch. Placement within
            // the batch is therefore schematic, the widths are exact.
            let mut cursor = t0;
            for stage in Stage::ALL {
                let d = after
                    .stage(stage)
                    .sum()
                    .saturating_sub(before.stage(stage).sum());
                let hits = after
                    .stage(stage)
                    .count()
                    .saturating_sub(before.stage(stage).count());
                if hits == 0 {
                    continue;
                }
                if let Some(child) = self.tracer.begin_child(
                    batch.ctx,
                    SpanTrack::Hotpath,
                    "datapath",
                    stage.name(),
                    cursor,
                ) {
                    cursor = (cursor + d).min(t1);
                    self.tracer
                        .end_args(&child, cursor, [Some(("hits", hits)), None]);
                }
            }
        }
        self.tracer
            .end_args(&batch, t1, [Some(("segments", segments)), None]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace: u64, span: u64) -> SpanContext {
        SpanContext {
            trace: TraceId(trace),
            span: SpanId(span),
        }
    }

    #[test]
    fn detached_tracer_is_dormant() {
        let t = Tracer::new();
        assert!(!t.is_attached());
        assert!(t.begin(SpanTrack::Control, "x", "y", 0).is_none());
        t.instant(SpanTrack::Control, "x", "y", 0);
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.current().is_none());
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn spans_nest_and_patch_duration() {
        let t = Tracer::attached(16);
        let root = t
            .begin(SpanTrack::Control, "chain", "failover", 100)
            .unwrap();
        assert_eq!(t.current(), Some(root.ctx));
        let child = t
            .begin(SpanTrack::Control, "chain", "promotion", 150)
            .unwrap();
        assert_eq!(child.ctx.trace, root.ctx.trace, "child shares the trace");
        t.instant(SpanTrack::Control, "chain", "veto", 160);
        t.end_args(&child, 200, [Some(("vetoes", 1)), None]);
        assert_eq!(t.current(), Some(root.ctx), "end pops back to parent");
        t.end(&root, 300);
        assert!(t.current().is_none());
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].name, "failover");
        assert_eq!(recs[0].dur_ns, 200);
        assert!(!recs[0].open);
        assert_eq!(recs[1].parent, recs[0].id);
        assert_eq!(recs[1].dur_ns, 50);
        assert_eq!(recs[1].args[0], Some(("vetoes", 1)));
        assert_eq!(recs[2].kind, SpanKind::Instant);
        assert_eq!(recs[2].parent, recs[1].id, "instant under innermost span");
        assert!(
            recs[0].summary().contains("failover"),
            "{}",
            recs[0].summary()
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts_exactly() {
        let t = Tracer::attached(2);
        for i in 0..5u64 {
            t.instant(SpanTrack::Control, "x", "e", i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let recs = t.records();
        assert_eq!(recs[0].start_ns, 3);
        assert_eq!(recs[1].start_ns, 4);
    }

    #[test]
    fn end_after_eviction_counts_lost() {
        let t = Tracer::attached(1);
        let s = t.begin(SpanTrack::Control, "x", "long", 0).unwrap();
        t.instant(SpanTrack::Control, "x", "evictor", 1);
        t.end(&s, 10);
        assert_eq!(t.lost_ends(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn chrome_export_has_processes_threads_and_events() {
        let t = Tracer::attached(16);
        let s = t
            .begin(SpanTrack::Control, "detector", "detect", 1_000)
            .unwrap();
        t.end(&s, 3_500);
        t.instant(SpanTrack::Hotpath, "bridge", "first_byte", 2_000);
        let json = t.chrome_trace(&[]);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("tcpfo control plane (sim ns)"), "{json}");
        assert!(json.contains("tcpfo datapath (host ns)"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ts\":1.000"), "{json}");
        assert!(json.contains("\"dur\":2.500"), "{json}");
        assert!(json.contains("\"name\":\"detector\""), "{json}");
    }

    #[test]
    fn waterfall_sums_to_mttr_and_redundancy() {
        use crate::timeline::{FailoverPhase, RedundancyPhase};
        let tl = FailoverTimeline::new();
        for (phase, at) in FailoverPhase::ALL
            .into_iter()
            .zip([10, 30, 35, 40, 70, 100])
        {
            tl.mark(phase, at);
        }
        let red = RedundancyTimeline::new();
        assert!(
            waterfall_records(&FailoverTimeline::new(), &red).is_empty(),
            "incomplete timeline yields nothing"
        );
        red.mark(RedundancyPhase::ReprovisionStart, 110);
        red.mark(RedundancyPhase::HandoffDone, 150);
        red.mark(RedundancyPhase::CatchupDone, 230);
        let recs = waterfall_records(&tl, &red);
        assert_eq!(recs.len(), 1 + 5 + 3);
        let root = &recs[0];
        assert_eq!(root.name, "failover");
        assert_eq!(root.start_ns, 10);
        assert_eq!(root.dur_ns, 90);
        let phase_sum: u64 = recs[1..6].iter().map(|r| r.dur_ns).sum();
        assert_eq!(phase_sum, root.dur_ns, "phases sum exactly to MTTR");
        // Phases are contiguous.
        for w in recs[1..6].windows(2) {
            assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
        }
        let rroot = &recs[6];
        assert_eq!(rroot.name, "redundancy_restore");
        assert_eq!(rroot.dur_ns, 120);
        assert_eq!(recs[7].dur_ns + recs[8].dur_ns, rroot.dur_ns);
    }

    #[test]
    fn tail_exemplars_capture_at_or_above_floor() {
        let mut ex = TailExemplars::new(10);
        assert!(!ex.offer(9, 100, 1, ctx(1, 2)), "below floor ignored");
        assert!(ex.offer(10, 200, 2, ctx(1, 3)));
        assert!(
            ex.offer(10 + EXEMPLAR_SLOTS, 900, 3, ctx(1, 4)),
            "overflow clamps to top slot"
        );
        assert_eq!(ex.captured(), 2);
        assert_eq!(ex.for_bucket(10).unwrap().value, 200);
        assert_eq!(ex.top().unwrap().value, 900);
        assert!(ex.for_bucket(9).is_none());
        let json = ex.to_json();
        assert!(json.contains("\"span\": 3"), "{json}");
    }

    #[test]
    fn raising_floor_rekeys_slots() {
        let mut ex = TailExemplars::new(4);
        ex.offer(6, 50, 1, ctx(1, 1));
        ex.set_floor_bucket(6);
        assert_eq!(
            ex.for_bucket(6).unwrap().value,
            50,
            "capture follows its bucket"
        );
        ex.set_floor_bucket(20);
        assert!(
            ex.iter().next().is_none(),
            "all captures fell below the new tail"
        );
    }

    #[test]
    fn exemplar_histogram_top_bucket_always_captures_when_attached() {
        let mut h: ExemplarHistogram<48> = ExemplarHistogram::new();
        for i in 0..1000u64 {
            h.record_ctx(100 + (i % 7), 0, Some(ctx(9, i + 1)));
        }
        // A tail value lands at/above the p99.9 bucket: must capture.
        h.record_ctx(1 << 20, 42, Some(ctx(9, 5000)));
        let b = LogHistogram::<48>::bucket_of(1 << 20);
        let e = h.exemplars().for_bucket(b).expect("tail sample captured");
        assert_eq!(e.ctx.span, SpanId(5000));
        assert_eq!(e.value, 1 << 20);
        // Without a context nothing is captured, but the histogram
        // still counts.
        let mut d: ExemplarHistogram<48> = ExemplarHistogram::new();
        d.record(1 << 20);
        assert_eq!(d.hist().count(), 1);
        assert_eq!(d.exemplars().captured(), 0);
    }

    #[test]
    fn exemplar_prometheus_annotates_tail_buckets() {
        let mut h: ExemplarHistogram<48> = ExemplarHistogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        h.record_ctx(1 << 22, 1_500_000_000, Some(ctx(7, 77)));
        let text = h.to_prometheus("tcpfo_test_corrected_ns", "corrected e2e latency");
        assert!(
            text.contains("# TYPE tcpfo_test_corrected_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("# {trace_id=\"t7\",span_id=\"s77\"} 4194304 1.500000000"),
            "{text}"
        );
        assert!(text.contains("tcpfo_test_corrected_ns_count 101"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 101"), "{text}");
    }
}
