//! The sim-time metrics registry.
//!
//! Instruments are cheap shared handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) backed by atomics; the [`Registry`] owns the name →
//! instrument map and produces immutable [`MetricsSnapshot`]s for
//! exposition. All timestamps are **simulated** nanoseconds (the
//! `*_at` methods take `now_ns = SimTime::as_nanos()`); nothing in
//! this module reads a wall clock, so runs stay deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{array, JsonObject};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

#[derive(Debug, Default)]
struct CounterInner {
    value: AtomicU64,
    last_update_ns: AtomicU64,
}

impl Counter {
    /// Adds `n` without touching the last-update timestamp.
    pub fn add(&self, n: u64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, recording the sim time of the update.
    pub fn add_at(&self, n: u64, now_ns: u64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
        self.inner
            .last_update_ns
            .fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Increments by one, recording the sim time of the update.
    pub fn inc_at(&self, now_ns: u64) {
        self.add_at(1, now_ns);
    }

    /// Raises the counter to `n` if it is currently below it. Used to
    /// mirror externally maintained totals (e.g. the bridges' stats
    /// structs) into the registry without double counting.
    pub fn set_at_least(&self, n: u64) {
        self.inner.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// Sim time of the most recent timestamped update.
    pub fn last_update_ns(&self) -> u64 {
        self.inner.last_update_ns.load(Ordering::Relaxed)
    }
}

/// A gauge: a settable value that also tracks its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    high_water: AtomicU64,
    last_update_ns: AtomicU64,
}

impl Gauge {
    /// Sets the current value (updating the high-water mark).
    pub fn set(&self, v: u64) {
        self.inner.value.store(v, Ordering::Relaxed);
        self.inner.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Sets the current value, recording the sim time of the update.
    pub fn set_at(&self, v: u64, now_ns: u64) {
        self.set(v);
        self.inner
            .last_update_ns
            .fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Sim time of the most recent timestamped update.
    pub fn last_update_ns(&self) -> u64 {
        self.inner.last_update_ns.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket tops out the u64
/// range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram with fixed log2 buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.min.fetch_min(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Adds a pre-aggregated batch: `buckets` holds `(log2 bucket
    /// index, observation count)` pairs (same indexing as single
    /// `record`s; out-of-range indices clamp to the top bucket), with
    /// the batch's exact totals alongside. This is how the latency
    /// observatory mirrors its lock-free shard-local histograms into
    /// the registry without replaying every observation.
    pub fn absorb(&self, buckets: &[(usize, u64)], count: u64, sum: u64, min: u64, max: u64) {
        for &(i, n) in buckets {
            self.inner.buckets[i.min(HISTOGRAM_BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
        }
        self.inner.count.fetch_add(count, Ordering::Relaxed);
        self.inner.sum.fetch_add(sum, Ordering::Relaxed);
        self.inner.min.fetch_min(min, Ordering::Relaxed);
        self.inner.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.inner.min.load(Ordering::Relaxed)
            },
            max: self.inner.max.load(Ordering::Relaxed),
            buckets: self
                .inner
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then(|| (bucket_upper_bound(i), c))
                })
                .collect(),
        }
    }
}

/// Exclusive upper bound of bucket `i` (inclusive for the last).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Immutable gauge state captured in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Value at snapshot time.
    pub value: u64,
    /// Highest value ever set.
    pub high_water: u64,
}

/// Immutable histogram state captured in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty `(exclusive upper bound, count)` log2 buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`): the inclusive upper bound of
    /// the log2 bucket holding the rank-`⌈q·count⌉` observation,
    /// clamped to the recorded maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (le, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return le.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline must be backslash-escaped
/// inside the `name="value"` quoting.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` docstring per the text exposition format: only
/// backslash and newline are escaped (quotes are legal there).
pub fn escape_help_text(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends a `# HELP`/`# TYPE` family header for one metric family —
/// the one exposition-format assembly point shared by the registry,
/// the health monitor's labelled alert series, and the exemplar
/// histograms, so the escaping rules live in exactly one place.
pub fn prom_family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} {kind}\n",
        escape_help_text(help)
    ));
}

/// Appends one sample line `name{labels} value`, escaping every label
/// value. `exemplar` is an OpenMetrics exemplar suffix (see
/// [`crate::span::Exemplar::prometheus_suffix`]) appended after the
/// value.
pub fn prom_sample(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    value: &str,
    exemplar: Option<&str>,
) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    if let Some(ex) = exemplar {
        out.push_str(ex);
    }
    out.push('\n');
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The instrument registry. Cloning shares the underlying maps.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns a scope that prefixes every instrument name with
    /// `prefix` plus a dot, e.g. `scope("net").counter("drops")` is
    /// the counter `net.drops`.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Captures every instrument's current value at sim time `now_ns`.
    pub fn snapshot(&self, now_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            at_ns: now_ns,
            counters: self
                .inner
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.get(),
                            high_water: v.high_water(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A name-prefixing view of a [`Registry`].
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    fn join(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// A sub-scope: `scope("net").scope("n1")` prefixes `net.n1.`.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: self.join(prefix),
        }
    }

    /// The counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.join(name))
    }

    /// The gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.join(name))
    }

    /// The histogram `prefix.name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.join(name))
    }
}

/// An immutable, ordered capture of every instrument in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Sim time the snapshot was taken.
    pub at_ns: u64,
    /// Counter values by full name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram states by full name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// State of the gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.get(name).copied()
    }

    /// State of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.u64(name, *value);
        }
        let mut gauges = JsonObject::new();
        for (name, g) in &self.gauges {
            let mut obj = JsonObject::new();
            obj.u64("value", g.value).u64("high_water", g.high_water);
            gauges.raw(name, obj.render());
        }
        let mut histograms = JsonObject::new();
        for (name, h) in &self.histograms {
            let mut obj = JsonObject::new();
            obj.u64("count", h.count)
                .u64("sum", h.sum)
                .u64("min", h.min)
                .u64("max", h.max);
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, c)| format!("[{le}, {c}]"))
                .collect();
            obj.raw("buckets_le", array(&buckets));
            histograms.raw(name, obj.render());
        }
        let mut root = JsonObject::new();
        root.u64("at_ns", self.at_ns)
            .raw("counters", counters.render())
            .raw("gauges", gauges.render())
            .raw("histograms", histograms.render());
        root.render()
    }

    /// Renders the snapshot as an aligned text table.
    pub fn to_table(&self) -> String {
        crate::table::render_snapshot(self)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Metric names are prefixed with `tcpfo_` and dots become
    /// underscores; gauges also expose their high-water mark, and
    /// histograms expose cumulative `_bucket{le=...}` series plus
    /// `_sum`/`_count`. Every family carries `# HELP` (the original
    /// dotted instrument name, escaped) and `# TYPE` lines, and label
    /// values go through [`escape_label_value`], so under-load scrapes
    /// parse under a spec-strict client.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("tcpfo_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            prom_family(&mut out, &n, name, "counter");
            prom_sample(&mut out, &n, &[], &value.to_string(), None);
        }
        for (name, g) in &self.gauges {
            let n = sanitize(name);
            prom_family(&mut out, &n, name, "gauge");
            prom_sample(&mut out, &n, &[], &g.value.to_string(), None);
            let hw = format!("{n}_high_water");
            prom_family(&mut out, &hw, &format!("{name} (high-water mark)"), "gauge");
            prom_sample(&mut out, &hw, &[], &g.high_water.to_string(), None);
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            prom_family(
                &mut out,
                &n,
                &format!("{name} (log2 buckets, nanoseconds)"),
                "histogram",
            );
            let bucket = format!("{n}_bucket");
            let mut cumulative = 0u64;
            for (le, c) in &h.buckets {
                cumulative += c;
                prom_sample(
                    &mut out,
                    &bucket,
                    &[("le", &le.to_string())],
                    &cumulative.to_string(),
                    None,
                );
            }
            prom_sample(
                &mut out,
                &bucket,
                &[("le", "+Inf")],
                &h.count.to_string(),
                None,
            );
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
            for (suffix, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
                let qn = format!("{n}_{suffix}");
                prom_family(
                    &mut out,
                    &qn,
                    &format!("{name} ({suffix} estimate)"),
                    "gauge",
                );
                prom_sample(&mut out, &qn, &[], &h.quantile(q).to_string(), None);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add_at(4, 77);
        assert_eq!(r.counter("x").get(), 5, "handles share state");
        assert_eq!(c.last_update_ns(), 77);
        c.set_at_least(3);
        assert_eq!(c.get(), 5, "set_at_least never lowers");
        c.set_at_least(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn gauge_high_water() {
        let g = Registry::new().gauge("q");
        g.set_at(10, 1);
        g.set_at(3, 2);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 10);
        assert_eq!(g.last_update_ns(), 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 700] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 706);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 700);
        // 0 → bucket ub 1; 1 → ub 2; {2,3} → ub 4; 700 → ub 1024.
        assert_eq!(s.buckets, vec![(1, 1), (2, 1), (4, 2), (1024, 1)]);
    }

    #[test]
    fn histogram_absorb_and_snapshot_quantiles() {
        let h = Histogram::default();
        h.record(3);
        // A pre-aggregated batch: 10 observations of ~700 (bucket 10),
        // 2 of ~40 (bucket 6).
        h.absorb(&[(10, 10), (6, 2)], 12, 7_080, 40, 700);
        let s = h.snapshot();
        assert_eq!(s.count, 13);
        assert_eq!(s.sum, 7_083);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 700);
        // Rank 7 of 13 lands in the bucket with exclusive bound 1024:
        // reported as 1023 clamped to the max.
        assert_eq!(s.p50(), 700);
        assert_eq!(s.quantile(0.0), 3);
        assert_eq!(HistogramSnapshot::default_empty().p99(), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            }
        }
    }

    #[test]
    fn prometheus_exposes_quantiles() {
        let r = Registry::new();
        for v in [1u64, 2, 3, 900] {
            r.histogram("lat").record(v);
        }
        let text = r.snapshot(0).to_prometheus();
        assert!(text.contains("tcpfo_lat_p50 "), "{text}");
        assert!(text.contains("tcpfo_lat_p99 "), "{text}");
        assert!(text.contains("tcpfo_lat_p999 "), "{text}");
    }

    #[test]
    fn prometheus_emits_help_and_type_per_family() {
        let r = Registry::new();
        r.scope("core.primary").counter("matched_bytes").add(5);
        r.gauge("underload.backlog").set(3);
        r.histogram("lat").record(7);
        let text = r.snapshot(0).to_prometheus();
        assert!(
            text.contains("# HELP tcpfo_core_primary_matched_bytes core.primary.matched_bytes\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE tcpfo_core_primary_matched_bytes counter\n"),
            "{text}"
        );
        assert!(
            text.contains("# HELP tcpfo_underload_backlog underload.backlog\n"),
            "{text}"
        );
        assert!(
            text.contains("# HELP tcpfo_underload_backlog_high_water"),
            "{text}"
        );
        assert!(text.contains("# HELP tcpfo_lat "), "{text}");
        assert!(text.contains("# TYPE tcpfo_lat histogram\n"), "{text}");
        assert!(text.contains("# HELP tcpfo_lat_p999 "), "{text}");
        // Every series line belongs to a family that declared HELP+TYPE
        // immediately above it: count families both ways.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, types, "{text}");
    }

    #[test]
    fn label_and_help_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help_text("a\"b\\c\nd"), "a\"b\\\\c\\nd");
    }

    #[test]
    fn snapshot_is_ordered_and_json_renders() {
        let r = Registry::new();
        r.scope("b").counter("two").add(2);
        r.scope("a").counter("one").inc();
        r.gauge("g").set(7);
        r.histogram("h").record(5);
        let snap = r.snapshot(123);
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two"], "BTreeMap order");
        let json = snap.to_json();
        assert!(json.contains("\"at_ns\": 123"), "{json}");
        assert!(json.contains("\"a.one\": 1"), "{json}");
        assert!(json.contains("\"high_water\": 7"), "{json}");
        assert!(json.contains("\"buckets_le\""), "{json}");
    }
}
