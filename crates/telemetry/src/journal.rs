//! The structured event journal.
//!
//! Where the registry aggregates, the journal narrates: one
//! [`Event`] per discrete occurrence (a takeover step, a Δseq sync, a
//! recognised retransmission), stamped with sim time and carrying
//! free-form key/value fields. The buffer is a bounded ring — when
//! full it drops the *oldest* entries and counts what it dropped, so
//! a long run can never grow without bound.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::json::{array, quote, JsonObject};

/// Default journal capacity (entries).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Sim time the event occurred.
    pub at_ns: u64,
    /// Emitting component, e.g. `core.primary` or `net.sim`.
    pub scope: String,
    /// Event kind, e.g. `takeover.arp` or `seg.empty_ack`.
    pub kind: String,
    /// Free-form key/value details.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// One-line rendering: `[12ms] core.primary sync delta_seq=4000`.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "[{}] {} {}",
            crate::fmt_nanos(self.at_ns),
            self.scope,
            self.kind
        );
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }
}

#[derive(Debug)]
struct JournalInner {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// A bounded, shared event journal.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal with the default capacity.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Creates a journal bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn record(&self, at_ns: u64, scope: &str, kind: &str, fields: &[(&str, String)]) {
        self.push(Event {
            at_ns,
            scope: scope.to_string(),
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Appends a pre-built event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Copies out all retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Copies out the most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let inner = self.inner.lock().unwrap();
        inner
            .ring
            .iter()
            .skip(inner.ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Renders the retained events as a JSON array of objects.
    pub fn to_json(&self) -> String {
        let rendered: Vec<String> = self
            .events()
            .iter()
            .map(|e| {
                let mut obj = JsonObject::new();
                obj.u64("at_ns", e.at_ns)
                    .string("scope", &e.scope)
                    .string("kind", &e.kind);
                let mut fields = JsonObject::new();
                for (k, v) in &e.fields {
                    fields.raw(k, quote(v));
                }
                obj.raw("fields", fields.render());
                obj.render()
            })
            .collect();
        array(&rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let j = Journal::default();
        j.record(
            2_000,
            "core.primary",
            "sync",
            &[("delta_seq", "4000".to_string())],
        );
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.events()[0].summary(),
            "[2µs] core.primary sync delta_seq=4000"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.record(i, "s", &format!("e{i}"), &[]);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let kinds: Vec<String> = j.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["e2", "e3", "e4"]);
        let tail: Vec<String> = j.tail(2).into_iter().map(|e| e.kind).collect();
        assert_eq!(tail, vec!["e3", "e4"]);
    }

    #[test]
    fn json_renders() {
        let j = Journal::default();
        j.record(1, "net", "drop.loss", &[("port", "0".to_string())]);
        let json = j.to_json();
        assert!(json.contains("\"kind\": \"drop.loss\""), "{json}");
        assert!(json.contains("\"port\": \"0\""), "{json}");
    }
}
