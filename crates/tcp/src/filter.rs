//! The segment-filter hook at the TCP/IP boundary.
//!
//! The paper's entire mechanism lives "in the primary and secondary
//! servers' network stack between the TCP layer and the IP layer"
//! (§1) — the authors call that sublayer the *bridge*. This module
//! defines the corresponding extension point of our stack: every
//! segment crossing the boundary, in either direction, is offered to
//! the host's [`SegmentFilter`]. The failover bridges in `tcpfo-core`
//! implement this trait; ordinary hosts use [`NoopFilter`].

use crate::types::{FourTuple, SocketAddr};
use bytes::Bytes;
use tcpfo_telemetry::audit::AuditKey;
use tcpfo_telemetry::{SpanContext, StageLatency};
use tcpfo_wire::ipv4::Ipv4Addr;
use tcpfo_wire::tcp::peek_ports;

pub use tcpfo_telemetry::audit::TraceId;

/// The canonical per-connection key used throughout the datapath: the
/// replicated server's TCP port plus the unreplicated peer's endpoint.
///
/// The server's *address* is deliberately absent — the primary keys
/// with `a_p`, the secondary with `a_s`, and diverted segments carry a
/// third view; the port + peer pair is the invariant all of them agree
/// on. A segment yields the same key no matter which direction it
/// travels, provided the right orientation constructor is used:
/// [`FlowKey::from_segment_ingress`] for peer → server segments and
/// [`FlowKey::from_segment_egress`] for server → peer segments. These
/// two constructors are the *only* places src/dst are swapped; the
/// bridges never hand-assemble a key from raw port fields.
///
/// # Example
///
/// ```
/// use tcpfo_tcp::filter::FlowKey;
/// use tcpfo_wire::ipv4::Ipv4Addr;
///
/// let client = Ipv4Addr::new(192, 168, 0, 9);
/// // A client segment (client:5555 → server:80)…
/// let up = FlowKey::from_segment_ingress(client, 5555, 80);
/// // …and the server's reply (server:80 → client:5555)…
/// let down = FlowKey::from_segment_egress(client, 80, 5555);
/// // …map to the same flow.
/// assert_eq!(up, down);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// The replicated server's TCP port (listening port, or the
    /// deterministic ephemeral port for server-initiated connections).
    pub server_port: u16,
    /// The unreplicated peer (client C, or back-end server T in §7.2).
    pub peer: SocketAddr,
}

impl FlowKey {
    /// Creates a key from its parts.
    pub fn new(server_port: u16, peer: SocketAddr) -> Self {
        FlowKey { server_port, peer }
    }

    /// Key for a segment travelling *peer → server* (ingress): the
    /// segment's source is the peer, its destination port the server.
    pub fn from_segment_ingress(peer_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            server_port: dst_port,
            peer: SocketAddr::new(peer_ip, src_port),
        }
    }

    /// Key for a segment travelling *server → peer* (egress): the
    /// segment's destination is the peer, its source port the server.
    pub fn from_segment_egress(peer_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            server_port: src_port,
            peer: SocketAddr::new(peer_ip, dst_port),
        }
    }

    /// Parses the key straight off an ingress (peer → server) segment's
    /// raw bytes. `None` when the buffer is too short for a TCP header.
    pub fn of_ingress(seg: &AddressedSegment) -> Option<Self> {
        let (src_port, dst_port) = peek_ports(&seg.bytes)?;
        Some(FlowKey::from_segment_ingress(seg.src, src_port, dst_port))
    }

    /// Parses the key straight off an egress (server → peer) segment's
    /// raw bytes. `None` when the buffer is too short for a TCP header.
    pub fn of_egress(seg: &AddressedSegment) -> Option<Self> {
        let (src_port, dst_port) = peek_ports(&seg.bytes)?;
        Some(FlowKey::from_segment_egress(seg.dst, src_port, dst_port))
    }

    /// Deterministic 64-bit hash of the key (SplitMix64 finalisation
    /// over the packed fields). Used for shard selection, so it must
    /// not depend on process-random state the way `std`'s default
    /// `HashMap` hasher does: a fixed seed must map every flow to the
    /// same shard in every run.
    pub fn hash64(&self) -> u64 {
        let packed = (u64::from(self.peer.ip.to_bits()) << 32)
            | (u64::from(self.peer.port) << 16)
            | u64::from(self.server_port);
        let mut z = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The shard this flow belongs to in a table of `shards` shards
    /// (must be a power of two).
    pub fn shard_of(&self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        (self.hash64() & (shards as u64 - 1)) as usize
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ":{}<->{}", self.server_port, self.peer)
    }
}

impl From<FlowKey> for AuditKey {
    fn from(k: FlowKey) -> AuditKey {
        AuditKey {
            peer_ip: k.peer.ip,
            peer_port: k.peer.port,
            server_port: k.server_port,
        }
    }
}

/// A raw TCP segment together with the IP addresses it travels between
/// (which its checksum covers).
///
/// The bytes are refcounted ([`Bytes`]), so an addressed segment can be
/// sliced apart — header inspected, payload queued — without copying.
///
/// Each segment also carries a causal [`TraceId`], stamped where it
/// enters the datapath (frame receive, stack outbox) and propagated by
/// the bridges through translation, queueing and release. The id is
/// observability metadata only: equality ignores it.
#[derive(Debug, Clone)]
pub struct AddressedSegment {
    /// IP source.
    pub src: Ipv4Addr,
    /// IP destination.
    pub dst: Ipv4Addr,
    /// Raw TCP segment bytes (header + payload).
    pub bytes: Bytes,
    /// Causal trace id ([`TraceId::NONE`] when never stamped).
    pub trace: TraceId,
}

impl PartialEq for AddressedSegment {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.dst == other.dst && self.bytes == other.bytes
    }
}

impl Eq for AddressedSegment {}

impl AddressedSegment {
    /// Creates an addressed segment (not yet traced).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, bytes: impl Into<Bytes>) -> Self {
        AddressedSegment {
            src,
            dst,
            bytes: bytes.into(),
            trace: TraceId::NONE,
        }
    }

    /// Builder: tags the segment with a causal trace id.
    pub fn traced(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// Stamps a fresh trace id if the segment has none yet.
    pub fn ensure_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = TraceId::fresh();
        }
    }
}

/// Which side of the TCP/IP boundary a segment in a batch came from,
/// for batch-processing bridges that accept mixed-direction batches
/// (e.g. `PrimaryBridge::process_batch` in `tcpfo-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDir {
    /// From the local TCP layer toward the wire.
    Outbound,
    /// From the wire toward the local TCP layer.
    Inbound,
}

/// What a filter decided to do with (and in response to) a segment.
///
/// The hot path reuses one `FilterOutput` per host ([`FilterOutput::clear`]
/// keeps the vector allocations), so steady-state filtering never
/// allocates for the output lists themselves.
#[derive(Debug, Default)]
pub struct FilterOutput {
    /// Segments to hand to the IP layer for transmission (bypassing the
    /// outbound filter — filters never re-filter their own output).
    pub to_wire: Vec<AddressedSegment>,
    /// Segments to deliver up to the local TCP layer. The host drops
    /// any whose destination is not a local address.
    pub to_tcp: Vec<AddressedSegment>,
}

impl FilterOutput {
    /// Nothing to emit or deliver.
    pub fn empty() -> Self {
        FilterOutput::default()
    }

    /// Pass a segment onward to the wire.
    pub fn wire(seg: AddressedSegment) -> Self {
        FilterOutput {
            to_wire: vec![seg],
            to_tcp: Vec::new(),
        }
    }

    /// Deliver a segment up to TCP.
    pub fn tcp(seg: AddressedSegment) -> Self {
        FilterOutput {
            to_wire: Vec::new(),
            to_tcp: vec![seg],
        }
    }

    /// Empties both lists, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        self.to_wire.clear();
        self.to_tcp.clear();
    }

    /// Whether both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.to_wire.is_empty() && self.to_tcp.is_empty()
    }

    /// Merges another output into this one.
    pub fn extend(&mut self, other: FilterOutput) {
        self.to_wire.extend(other.to_wire);
        self.to_tcp.extend(other.to_tcp);
    }
}

/// A rule designating connections as failover connections (§7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverRule {
    /// Method 2: every connection using this local server port.
    Port(u16),
    /// Method 1 (socket option): exactly this 4-tuple, registered when
    /// the application opens the socket.
    Tuple(FourTuple),
}

/// The bridge hook between the TCP and IP layers.
///
/// Outbound segments (local TCP → IP) pass through
/// [`SegmentFilter::on_outbound_into`]; inbound segments (IP → local
/// TCP, *including* segments snooped promiscuously whose destination is
/// not local) pass through [`SegmentFilter::on_inbound_into`]. The
/// filter decides what continues in each direction, appending to a
/// caller-owned [`FilterOutput`] so the host can reuse one output
/// across packets. The by-value [`SegmentFilter::on_outbound`] /
/// [`SegmentFilter::on_inbound`] wrappers are provided for tests and
/// cold paths.
pub trait SegmentFilter {
    /// Intercepts a segment the local TCP layer wants transmitted,
    /// appending results to `out`. `now_nanos` is the simulated clock.
    fn on_outbound_into(&mut self, seg: AddressedSegment, now_nanos: u64, out: &mut FilterOutput);

    /// Intercepts a segment arriving from the network before TCP
    /// demultiplexing, appending results to `out`.
    fn on_inbound_into(&mut self, seg: AddressedSegment, now_nanos: u64, out: &mut FilterOutput);

    /// Convenience wrapper returning a fresh [`FilterOutput`].
    fn on_outbound(&mut self, seg: AddressedSegment, now_nanos: u64) -> FilterOutput {
        let mut out = FilterOutput::empty();
        self.on_outbound_into(seg, now_nanos, &mut out);
        out
    }

    /// Convenience wrapper returning a fresh [`FilterOutput`].
    fn on_inbound(&mut self, seg: AddressedSegment, now_nanos: u64) -> FilterOutput {
        let mut out = FilterOutput::empty();
        self.on_inbound_into(seg, now_nanos, &mut out);
        out
    }

    /// Periodic housekeeping driven by the host's timer (telemetry
    /// publication and the like). Never called per packet.
    fn on_tick(&mut self, _now_nanos: u64) {}

    /// Registers a failover-connection designation (§7's socket option
    /// or port-set configuration). Filters that do not care ignore it.
    fn designate(&mut self, _rule: FailoverRule) {}

    /// The filter's accumulated per-stage latency histograms, when a
    /// latency observatory is attached. `None` — the default — for
    /// filters without one (or with it detached).
    fn latency_stages(&self) -> Option<&StageLatency> {
        None
    }

    /// The span context of the filter's most recent sampled hot-path
    /// batch, when a span sampler is attached and has sampled one.
    /// `None` — the default — for filters without one. Load drivers
    /// stamp this onto tail-latency samples so top-bucket histogram
    /// entries carry exemplar links into the failover trace.
    fn trace_context(&self) -> Option<SpanContext> {
        None
    }

    /// Downcast support so controllers can reconfigure a concrete
    /// bridge (failover procedures of §5/§6).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The identity filter used by ordinary (non-replicated) hosts.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopFilter;

impl SegmentFilter for NoopFilter {
    fn on_outbound_into(&mut self, seg: AddressedSegment, _now: u64, out: &mut FilterOutput) {
        out.to_wire.push(seg);
    }

    fn on_inbound_into(&mut self, seg: AddressedSegment, _now: u64, out: &mut FilterOutput) {
        out.to_tcp.push(seg);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> AddressedSegment {
        AddressedSegment::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            vec![0u8; 20],
        )
    }

    #[test]
    fn noop_passes_through() {
        let mut f = NoopFilter;
        let out = f.on_outbound(seg(), 0);
        assert_eq!(out.to_wire.len(), 1);
        assert!(out.to_tcp.is_empty());
        let inp = f.on_inbound(seg(), 0);
        assert_eq!(inp.to_tcp.len(), 1);
        assert!(inp.to_wire.is_empty());
    }

    #[test]
    fn output_extend_merges() {
        let mut a = FilterOutput::wire(seg());
        a.extend(FilterOutput::tcp(seg()));
        a.extend(FilterOutput::empty());
        assert_eq!(a.to_wire.len(), 1);
        assert_eq!(a.to_tcp.len(), 1);
    }

    #[test]
    fn output_clear_keeps_capacity() {
        let mut a = FilterOutput::wire(seg());
        a.extend(FilterOutput::tcp(seg()));
        let cap = a.to_wire.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.to_wire.capacity(), cap);
    }
}
