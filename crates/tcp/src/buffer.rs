//! Send and receive buffers.
//!
//! [`SendBuffer`] holds the unacknowledged-plus-unsent byte stream
//! (`send` returns when bytes are accepted here — the paper points at
//! this exact behaviour to explain the knee in Fig. 3). [`RecvBuffer`]
//! reassembles possibly out-of-order segments into the in-order stream
//! the application reads, and its free space bounds the advertised
//! window.

use crate::seq::{seq_diff, seq_le, seq_lt};
use std::collections::VecDeque;

/// Ring of bytes awaiting acknowledgment, addressed by sequence number.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    /// Sequence number of `data[0]` (== SND.UNA while in sync).
    base: u32,
    data: VecDeque<u8>,
    capacity: usize,
}

impl SendBuffer {
    /// Creates an empty buffer whose first byte will carry `base`.
    pub fn new(base: u32, capacity: usize) -> Self {
        SendBuffer {
            base,
            data: VecDeque::new(),
            capacity,
        }
    }

    /// Sequence number of the first buffered (= oldest unacknowledged)
    /// byte.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Sequence number one past the last buffered byte.
    pub fn end_seq(&self) -> u32 {
        self.base.wrapping_add(self.data.len() as u32)
    }

    /// Buffered byte count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining capacity.
    pub fn free(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Appends as much of `bytes` as fits; returns the count accepted.
    pub fn write(&mut self, bytes: &[u8]) -> usize {
        let n = bytes.len().min(self.free());
        self.data.extend(&bytes[..n]);
        n
    }

    /// Copies `len` bytes starting at sequence number `seq` (for
    /// transmission or retransmission).
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully buffered.
    pub fn slice(&self, seq: u32, len: usize) -> Vec<u8> {
        let off = seq_diff(seq, self.base);
        assert!(off >= 0, "slice before SND.UNA");
        let off = off as usize;
        assert!(off + len <= self.data.len(), "slice past buffered data");
        self.data.iter().skip(off).take(len).copied().collect()
    }

    /// Discards bytes acknowledged up to (not including) `ack`.
    /// Returns the number of bytes released. Acks at or before `base`
    /// are no-ops; acks beyond the buffered data release everything.
    pub fn ack_to(&mut self, ack: u32) -> usize {
        if seq_le(ack, self.base) {
            return 0;
        }
        let n = (seq_diff(ack, self.base) as usize).min(self.data.len());
        self.data.drain(..n);
        self.base = self.base.wrapping_add(n as u32);
        n
    }
}

/// One out-of-order fragment held for reassembly.
#[derive(Debug, Clone)]
struct OooSegment {
    seq: u32,
    data: Vec<u8>,
}

/// Reassembly buffer for the receive side.
#[derive(Debug, Clone)]
pub struct RecvBuffer {
    /// Next expected sequence number (RCV.NXT for the data stream).
    next_seq: u32,
    /// In-order bytes the application may read.
    ready: VecDeque<u8>,
    /// Out-of-order fragments, kept sorted by sequence, non-overlapping
    /// with `[next_seq, …)` handled lazily at drain time.
    ooo: Vec<OooSegment>,
    capacity: usize,
}

impl RecvBuffer {
    /// Creates a buffer expecting `next_seq` first.
    pub fn new(next_seq: u32, capacity: usize) -> Self {
        RecvBuffer {
            next_seq,
            ready: VecDeque::new(),
            ooo: Vec::new(),
            capacity,
        }
    }

    /// Next expected in-order sequence number.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Bytes available for the application to read.
    pub fn available(&self) -> usize {
        self.ready.len()
    }

    /// Free space (bounds the advertised window). Out-of-order bytes
    /// are charged to a *separate* reassembly budget, not the window —
    /// otherwise every out-of-order arrival would change the advertised
    /// window and defeat the sender's duplicate-ACK counting.
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.ready.len())
    }

    fn ooo_budget(&self) -> usize {
        let used: usize = self.ooo.iter().map(|s| s.data.len()).sum();
        self.capacity.saturating_sub(used)
    }

    /// Whether any out-of-order data is parked (a hole exists).
    pub fn has_holes(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Inserts segment payload starting at `seq`. Duplicate and
    /// already-received bytes are discarded; bytes beyond the window
    /// are truncated. Returns `true` if `next_seq` advanced.
    pub fn insert(&mut self, mut seq: u32, mut data: &[u8]) -> bool {
        // Trim the prefix that was already received.
        if seq_lt(seq, self.next_seq) {
            let skip = seq_diff(self.next_seq, seq) as usize;
            if skip >= data.len() {
                return false;
            }
            data = &data[skip..];
            seq = self.next_seq;
        }
        // Refuse fragments that start beyond any window we could have
        // advertised (segments are window-checked upstream; be safe).
        let offset = seq_diff(seq, self.next_seq);
        if offset < 0 || offset as usize > self.capacity {
            return false;
        }
        if data.is_empty() {
            return false;
        }
        if seq == self.next_seq {
            let take = data.len().min(self.free());
            self.ready.extend(&data[..take]);
            self.next_seq = self.next_seq.wrapping_add(take as u32);
            self.drain_ooo();
            true
        } else {
            self.stash_ooo(seq, data);
            false
        }
    }

    fn stash_ooo(&mut self, seq: u32, data: &[u8]) {
        // Bound memory: drop if no space (sender will retransmit).
        let budget = self.ooo_budget();
        if budget == 0 {
            return;
        }
        let take = data.len().min(budget);
        self.ooo.push(OooSegment {
            seq,
            data: data[..take].to_vec(),
        });
        self.ooo.sort_by(|a, b| {
            if a.seq == b.seq {
                std::cmp::Ordering::Equal
            } else if seq_lt(a.seq, b.seq) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
    }

    fn drain_ooo(&mut self) {
        loop {
            let mut advanced = false;
            let mut remaining = Vec::new();
            for seg in std::mem::take(&mut self.ooo) {
                let end = seg.seq.wrapping_add(seg.data.len() as u32);
                if seq_le(end, self.next_seq) {
                    continue; // fully duplicate
                }
                if seq_le(seg.seq, self.next_seq) {
                    let skip = seq_diff(self.next_seq, seg.seq) as usize;
                    let fresh = &seg.data[skip..];
                    let take = fresh.len().min(self.free());
                    self.ready.extend(&fresh[..take]);
                    self.next_seq = self.next_seq.wrapping_add(take as u32);
                    advanced = take > 0;
                } else {
                    remaining.push(seg);
                }
            }
            self.ooo = remaining;
            if !advanced {
                break;
            }
        }
    }

    /// Reads up to `max` in-order bytes for the application.
    pub fn read(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.ready.len());
        self.ready.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    mod send {
        use super::*;

        #[test]
        fn write_respects_capacity() {
            let mut b = SendBuffer::new(100, 8);
            assert_eq!(b.write(&[1, 2, 3, 4, 5]), 5);
            assert_eq!(b.write(&[6, 7, 8, 9, 10]), 3);
            assert_eq!(b.len(), 8);
            assert_eq!(b.free(), 0);
            assert_eq!(b.end_seq(), 108);
        }

        #[test]
        fn slice_addresses_by_seq() {
            let mut b = SendBuffer::new(1000, 64);
            b.write(b"abcdefgh");
            assert_eq!(b.slice(1000, 3), b"abc");
            assert_eq!(b.slice(1004, 4), b"efgh");
        }

        #[test]
        fn ack_releases_and_rebases() {
            let mut b = SendBuffer::new(1000, 64);
            b.write(b"abcdefgh");
            assert_eq!(b.ack_to(1003), 3);
            assert_eq!(b.base(), 1003);
            assert_eq!(b.slice(1003, 2), b"de");
            // Old ack ignored.
            assert_eq!(b.ack_to(1000), 0);
            // Over-ack releases everything that exists.
            assert_eq!(b.ack_to(2000), 5);
            assert!(b.is_empty());
        }

        #[test]
        fn wrapping_base() {
            let mut b = SendBuffer::new(u32::MAX - 2, 64);
            b.write(b"abcdef");
            assert_eq!(b.end_seq(), 3); // wrapped
            assert_eq!(b.slice(u32::MAX, 2), b"cd"); // bytes at offset 2..4
            assert_eq!(b.ack_to(1), 4);
            assert_eq!(b.base(), 1);
            assert_eq!(b.slice(1, 2), b"ef");
        }

        #[test]
        #[should_panic(expected = "slice past buffered data")]
        fn slice_past_end_panics() {
            let mut b = SendBuffer::new(0, 16);
            b.write(b"ab");
            let _ = b.slice(0, 5);
        }
    }

    mod recv {
        use super::*;

        #[test]
        fn in_order_delivery() {
            let mut b = RecvBuffer::new(500, 64);
            assert!(b.insert(500, b"hello"));
            assert_eq!(b.next_seq(), 505);
            assert_eq!(b.read(64), b"hello");
            assert!(b.insert(505, b" world"));
            assert_eq!(b.read(3), b" wo");
            assert_eq!(b.read(64), b"rld");
        }

        #[test]
        fn out_of_order_reassembly() {
            let mut b = RecvBuffer::new(0, 64);
            assert!(!b.insert(5, b"fghij")); // hole at 0..5
            assert!(b.has_holes());
            assert!(b.insert(0, b"abcde"));
            assert!(!b.has_holes());
            assert_eq!(b.next_seq(), 10);
            assert_eq!(b.read(64), b"abcdefghij");
        }

        #[test]
        fn duplicate_and_overlap_trimmed() {
            let mut b = RecvBuffer::new(0, 64);
            b.insert(0, b"abcd");
            // Retransmission overlapping received data.
            assert!(b.insert(2, b"cdEF"));
            assert_eq!(b.read(64), b"abcdEF");
            // Pure duplicate.
            assert!(!b.insert(0, b"abcd"));
            assert_eq!(b.available(), 0);
        }

        #[test]
        fn overlapping_ooo_fragments() {
            let mut b = RecvBuffer::new(0, 64);
            b.insert(4, b"eeff");
            b.insert(6, b"ffgg"); // overlaps previous
            b.insert(0, b"aabb");
            assert_eq!(b.next_seq(), 10);
            assert_eq!(b.read(64), b"aabbeeffgg");
        }

        #[test]
        fn ooo_bytes_do_not_shrink_the_window() {
            let mut b = RecvBuffer::new(0, 10);
            b.insert(5, b"xx");
            assert_eq!(b.free(), 10, "reassembly space is separate");
            b.insert(0, b"aaaaa");
            assert_eq!(b.available(), 7);
            assert_eq!(b.free(), 3);
        }

        #[test]
        fn capacity_enforced_on_ready() {
            let mut b = RecvBuffer::new(0, 4);
            assert!(b.insert(0, b"abcdefgh"));
            assert_eq!(b.available(), 4);
            assert_eq!(b.next_seq(), 4, "only accepted bytes are acked");
            assert_eq!(b.read(64), b"abcd");
        }

        #[test]
        fn wrapping_sequence_numbers() {
            let start = u32::MAX - 3;
            let mut b = RecvBuffer::new(start, 64);
            assert!(!b.insert(2, b"gh")); // post-wrap fragment
            assert!(b.insert(start, b"abcdef")); // crosses the wrap
            assert_eq!(b.next_seq(), 4);
            assert_eq!(b.read(64), b"abcdefgh");
        }

        #[test]
        fn multiple_holes_fill_in_any_order() {
            let mut b = RecvBuffer::new(0, 128);
            b.insert(10, b"cc");
            b.insert(20, b"ee");
            b.insert(5, b"bb");
            assert_eq!(b.next_seq(), 0);
            b.insert(0, b"aaaaa");
            // aaaaa fills 0..5, bb drains to fill 5..7, hole at 7..10.
            assert_eq!(b.next_seq(), 7);
            assert_eq!(b.read(64), b"aaaaabb");
            b.insert(7, b"xxx");
            assert_eq!(b.next_seq(), 12);
            assert_eq!(b.read(64), b"xxxcc");
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Feeding a stream's segments in any order with arbitrary
            /// duplication reassembles exactly the original stream.
            #[test]
            fn prop_reassembly_is_exact(
                len in 1usize..400,
                start in any::<u32>(),
                order in proptest::collection::vec((0usize..20, 1usize..40), 1..60),
            ) {
                let stream: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let mut b = RecvBuffer::new(start, 4096);
                // Deliver pseudo-random (offset, len) chunks, repeating
                // until a final sequential pass guarantees completion.
                for (frag_off, frag_len) in order {
                    let off = (frag_off * 23) % len;
                    let end = (off + frag_len).min(len);
                    b.insert(start.wrapping_add(off as u32), &stream[off..end]);
                }
                // Sequential pass to fill any remaining holes.
                let mut off = 0;
                while off < len {
                    let end = (off + 7).min(len);
                    b.insert(start.wrapping_add(off as u32), &stream[off..end]);
                    off = end;
                }
                prop_assert_eq!(b.next_seq(), start.wrapping_add(len as u32));
                prop_assert_eq!(b.read(usize::MAX), stream);
            }

            /// SendBuffer: ack_to never over-releases and slice returns
            /// the bytes that were written.
            #[test]
            fn prop_send_buffer_integrity(
                base in any::<u32>(),
                writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..50), 1..10),
                ack_step in 1u32..40,
            ) {
                let mut b = SendBuffer::new(base, 4096);
                let mut shadow: Vec<u8> = Vec::new();
                for w in &writes {
                    let n = b.write(w);
                    shadow.extend_from_slice(&w[..n]);
                }
                prop_assert_eq!(b.len(), shadow.len());
                if !shadow.is_empty() {
                    let got = b.slice(base, shadow.len());
                    prop_assert_eq!(&got, &shadow);
                }
                let ack = base.wrapping_add(ack_step.min(shadow.len() as u32));
                let released = b.ack_to(ack);
                prop_assert_eq!(released, ack_step.min(shadow.len() as u32) as usize);
                if released < shadow.len() {
                    let got = b.slice(ack, shadow.len() - released);
                    prop_assert_eq!(&got, &shadow[released..]);
                }
            }
        }
    }
}
