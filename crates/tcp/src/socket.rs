//! The transmission control block (TCB) and per-connection state
//! machine: RFC 793 states, sliding-window send/receive, Reno
//! congestion control, retransmission with Karn/Jacobson RTO, delayed
//! ACKs, Nagle, zero-window probing.
//!
//! A [`Socket`] is pure protocol logic: segments go in through
//! [`Socket::on_segment`], time goes in through [`Socket::on_tick`],
//! and segments come out of [`Socket::output`]. All I/O, demultiplexing
//! and filtering live in [`crate::stack`] and [`crate::host`]. Keeping
//! the TCB side-effect-free is what lets the unit tests below drive two
//! sockets against each other without a network.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::config::TcpConfig;
use crate::rtt::RttEstimator;
use crate::seq::{seq_diff, seq_ge, seq_gt, seq_le, seq_lt};
use crate::types::FourTuple;
use bytes::Bytes;
use tcpfo_net::time::SimTime;
use tcpfo_wire::tcp::{TcpFlags, TcpSegment};

/// RFC 793 connection states (LISTEN lives in the stack's listener
/// table, CLOSED is represented by socket removal or [`Socket::error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// SYN sent, waiting for SYN+ACK.
    SynSent,
    /// SYN received, SYN+ACK sent, waiting for ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Both sides closed simultaneously; waiting for our FIN's ACK.
    Closing,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we closed; waiting for our FIN's ACK.
    LastAck,
    /// Fully closed (about to be reaped).
    Closed,
}

impl std::fmt::Display for TcpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TcpState::SynSent => "SYN-SENT",
            TcpState::SynRcvd => "SYN-RECEIVED",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN-WAIT-1",
            TcpState::FinWait2 => "FIN-WAIT-2",
            TcpState::Closing => "CLOSING",
            TcpState::TimeWait => "TIME-WAIT",
            TcpState::CloseWait => "CLOSE-WAIT",
            TcpState::LastAck => "LAST-ACK",
            TcpState::Closed => "CLOSED",
        };
        f.write_str(s)
    }
}

/// Why a socket terminated abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketError {
    /// Peer sent RST.
    Reset,
    /// Retransmissions exhausted.
    TimedOut,
    /// Locally aborted.
    Aborted,
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Reset => f.write_str("connection reset by peer"),
            SocketError::TimedOut => f.write_str("connection timed out"),
            SocketError::Aborted => f.write_str("connection aborted"),
        }
    }
}

impl std::error::Error for SocketError {}

/// Give up after this many consecutive retransmissions of one segment.
const MAX_RETRANSMITS: u32 = 12;
/// Default MSS when the peer advertised none (RFC 1122).
const DEFAULT_PEER_MSS: u16 = 536;

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct Socket {
    /// Connection identity.
    pub tuple: FourTuple,
    /// Current state.
    pub state: TcpState,
    /// Whether this is a failover connection (§7 designation), recorded
    /// so takeover can re-key exactly the failover TCBs.
    pub failover: bool,
    /// Abnormal-termination cause, if any.
    pub error: Option<SocketError>,

    // ---- send side ----
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Highest sequence number ever sent (SND.NXT may rewind below
    /// this after a retransmission timeout; ACK validation must not).
    snd_max: u32,
    snd_wnd: u32,
    /// Largest window the peer has ever offered (the BSD
    /// `max_sndwnd`), used by sender-side silly-window avoidance.
    snd_wnd_max: u32,
    snd_wl1: u32,
    snd_wl2: u32,
    send_buf: SendBuffer,
    fin_wanted: bool,
    fin_sent: bool,

    // ---- receive side ----
    irs: u32,
    rcv_buf: RecvBuffer,
    remote_fin: Option<u32>,

    // ---- MSS ----
    mss_local: u16,
    mss_peer: Option<u16>,

    // ---- congestion control (Reno) ----
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    in_fast_recovery: bool,
    recover: u32,

    // ---- timers ----
    rtt: RttEstimator,
    /// (sequence number whose ACK completes the sample, send time).
    rtt_sample: Option<(u32, SimTime)>,
    /// Pending retransmission deadline.
    pub(crate) rtx_deadline: Option<SimTime>,
    consecutive_rtx: u32,
    /// Pending zero-window-probe deadline.
    pub(crate) persist_deadline: Option<SimTime>,
    /// Pending delayed-ACK deadline.
    pub(crate) delack_deadline: Option<SimTime>,
    /// TIME-WAIT expiry.
    pub(crate) timewait_deadline: Option<SimTime>,

    // ---- ack scheduling ----
    ack_now: bool,
    segs_since_ack: u32,
    /// Window advertised on the last emitted segment (drives window
    /// updates when the application reads).
    last_wnd_advertised: u16,

    // ---- one-shot output requests ----
    /// Fast retransmit requested by triple duplicate ACKs.
    fast_retransmit_pending: bool,
    /// Zero-window probe requested by the persist timer.
    zero_window_probe_pending: bool,
    /// RST for an aborted connection already emitted.
    rst_sent: bool,

    // ---- counters (observability) ----
    /// Segments retransmitted (RTO + fast retransmit).
    pub retransmits: u64,
    /// Retransmission-timer expiries (a subset of `retransmits`:
    /// go-back-N rewinds only, not fast retransmits).
    pub rto_expiries: u64,
    /// Bytes the application wrote.
    pub bytes_sent: u64,
    /// Bytes delivered to the application.
    pub bytes_received: u64,
}

impl Socket {
    /// Creates an active-open (client) socket; the SYN is produced by
    /// the next [`Socket::output`] call.
    pub fn client(tuple: FourTuple, iss: u32, cfg: &TcpConfig) -> Self {
        Socket::new(tuple, iss, TcpState::SynSent, cfg)
    }

    /// Creates a passive-open socket from a received SYN; the SYN+ACK
    /// is produced by the next [`Socket::output`] call.
    pub fn server(tuple: FourTuple, iss: u32, syn: &TcpSegment, cfg: &TcpConfig) -> Self {
        debug_assert!(syn.flags.contains(TcpFlags::SYN));
        let mut s = Socket::new(tuple, iss, TcpState::SynRcvd, cfg);
        s.irs = syn.seq;
        s.rcv_buf = RecvBuffer::new(syn.seq.wrapping_add(1), cfg.recv_buffer);
        s.mss_peer = syn.mss();
        s.snd_wnd = u32::from(syn.window);
        s.snd_wnd_max = s.snd_wnd;
        s.snd_wl1 = syn.seq;
        s.snd_wl2 = 0;
        s
    }

    /// Rebuilds an `Established` socket from a mid-connection snapshot
    /// (PR9 chain reprovisioning): a freshly provisioned replica adopts
    /// a live flow in the *old* tail's sequence space, so the TCB is
    /// synthesised directly — `snd_nxt` at the handoff cursor, the
    /// receive side expecting the client's next byte — with no
    /// handshake. The socket is marked as a failover connection.
    pub fn adopted(
        tuple: FourTuple,
        snd_nxt: u32,
        rcv_nxt: u32,
        peer_mss: u16,
        peer_wnd: u16,
        cfg: &TcpConfig,
    ) -> Self {
        // The notional ISS sits one behind the cursor so the send
        // buffer's base (iss + 1) lands exactly on the cursor.
        let iss = snd_nxt.wrapping_sub(1);
        let mut s = Socket::new(tuple, iss, TcpState::Established, cfg);
        s.failover = true;
        // Post-handshake positions: the SYN is notionally consumed.
        s.snd_una = snd_nxt;
        s.snd_nxt = snd_nxt;
        s.snd_max = snd_nxt;
        s.recover = snd_nxt;
        s.irs = rcv_nxt.wrapping_sub(1);
        s.rcv_buf = RecvBuffer::new(rcv_nxt, cfg.recv_buffer);
        s.mss_peer = Some(peer_mss);
        s.snd_wnd = u32::from(peer_wnd);
        s.snd_wnd_max = s.snd_wnd;
        s.snd_wl1 = rcv_nxt;
        s.snd_wl2 = snd_nxt;
        s
    }

    fn new(tuple: FourTuple, iss: u32, state: TcpState, cfg: &TcpConfig) -> Self {
        Socket {
            tuple,
            state,
            failover: false,
            error: None,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_wnd_max: 0,
            snd_wl1: 0,
            snd_wl2: 0,
            send_buf: SendBuffer::new(iss.wrapping_add(1), cfg.send_buffer),
            fin_wanted: false,
            fin_sent: false,
            irs: 0,
            rcv_buf: RecvBuffer::new(0, cfg.recv_buffer),
            remote_fin: None,
            mss_local: cfg.mss,
            mss_peer: None,
            cwnd: u32::from(cfg.mss) * 2,
            ssthresh: 64 * 1024,
            dup_acks: 0,
            in_fast_recovery: false,
            recover: iss,
            rtt: RttEstimator::new(cfg.rto_initial, cfg.rto_min, cfg.rto_max),
            rtt_sample: None,
            rtx_deadline: None,
            consecutive_rtx: 0,
            persist_deadline: None,
            delack_deadline: None,
            timewait_deadline: None,
            ack_now: false,
            segs_since_ack: 0,
            last_wnd_advertised: 0,
            fast_retransmit_pending: false,
            zero_window_probe_pending: false,
            rst_sent: false,
            retransmits: 0,
            rto_expiries: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    /// Initial send sequence number (the bridge reads this to compute
    /// `Δseq`).
    pub fn initial_seq(&self) -> u32 {
        self.iss
    }

    /// Next sequence number we will ACK (covers data, SYN and FIN).
    pub fn rcv_nxt(&self) -> u32 {
        match self.remote_fin {
            Some(f) if self.rcv_buf.next_seq() == f => f.wrapping_add(1),
            _ => self.rcv_buf.next_seq(),
        }
    }

    /// The effective maximum segment size for data we send.
    pub fn effective_mss(&self) -> u16 {
        self.mss_local
            .min(self.mss_peer.unwrap_or(DEFAULT_PEER_MSS))
    }

    /// Whether the connection is fully set up.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::CloseWait
        )
    }

    /// Bytes waiting in the receive buffer.
    pub fn recv_available(&self) -> usize {
        self.rcv_buf.available()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.send_buf.free()
    }

    /// Bytes written but not yet acknowledged by the peer.
    pub fn unacked(&self) -> usize {
        self.send_buf.len()
    }

    /// `true` once the peer's FIN has been received *and* all data
    /// before it consumed by the application.
    pub fn peer_closed(&self) -> bool {
        match self.remote_fin {
            Some(f) => self.rcv_buf.next_seq() == f && self.rcv_buf.available() == 0,
            None => false,
        }
    }

    /// `true` when our FIN (if any) has been acknowledged and nothing
    /// remains unacknowledged.
    pub fn send_closed_and_acked(&self) -> bool {
        self.fin_sent && self.send_buf.is_empty() && seq_ge(self.snd_una, self.snd_nxt)
    }

    /// The advertised receive window right now.
    pub fn window(&self, cfg: &TcpConfig) -> u16 {
        cfg.clamp_window(self.rcv_buf.free())
    }

    /// The connection's 4-tuple.
    pub fn four_tuple(&self) -> FourTuple {
        self.tuple
    }

    /// Oldest unacknowledged sequence number (SND.UNA).
    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    /// Next sequence number to send (SND.NXT).
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Bytes the application has written that TCP has not yet put on
    /// the wire (buffered beyond SND.NXT). A state-snapshot handoff
    /// must rewind the application's resume point by this much: the
    /// adopting stack starts at SND.NXT, so anything the old stack
    /// buffered but never sent has to be regenerated.
    pub fn unsent_bytes(&self) -> u32 {
        self.send_buf.end_seq().wrapping_sub(self.snd_nxt)
    }

    /// Peer's advertised window (SND.WND).
    pub fn snd_wnd(&self) -> u32 {
        self.snd_wnd
    }

    /// Current congestion window.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    // ---------------------------------------------------------------
    // Application calls
    // ---------------------------------------------------------------

    /// Accepts bytes into the send buffer; returns how many fit.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.fin_wanted
            || !matches!(
                self.state,
                TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
            )
        {
            return 0;
        }
        let n = self.send_buf.write(data);
        self.bytes_sent += n as u64;
        n
    }

    /// Reads up to `max` in-order bytes. Opens the advertised window;
    /// the caller should invoke [`Socket::output`] afterwards so a
    /// window update can be emitted.
    pub fn recv(&mut self, max: usize, cfg: &TcpConfig) -> Vec<u8> {
        let data = self.rcv_buf.read(max);
        self.bytes_received += data.len() as u64;
        if !data.is_empty() {
            // Window update (BSD rule): announce only when the window
            // grew by at least two segments or half the buffer —
            // smaller growth rides on the regular ACK clock.
            let wnd = u32::from(self.window(cfg));
            let growth = wnd.saturating_sub(u32::from(self.last_wnd_advertised));
            if growth >= 2 * u32::from(self.effective_mss())
                || growth >= (cfg.recv_buffer as u32) / 2
            {
                self.ack_now = true;
            }
        }
        data
    }

    /// Initiates close of our direction (FIN after queued data).
    pub fn close(&mut self) {
        self.fin_wanted = true;
    }

    /// Aborts the connection; [`Socket::output`] will emit an RST.
    pub fn abort(&mut self) {
        self.error = Some(SocketError::Aborted);
        self.state = TcpState::Closed;
    }

    // ---------------------------------------------------------------
    // Segment arrival
    // ---------------------------------------------------------------

    /// Processes an incoming segment. Any response segments are
    /// produced by the next [`Socket::output`] call.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime, cfg: &TcpConfig) {
        match self.state {
            TcpState::SynSent => self.on_segment_syn_sent(seg, now, cfg),
            TcpState::TimeWait => {
                // Absorb retransmissions, re-ACK, restart 2MSL.
                if seg.flags.contains(TcpFlags::FIN) || seg.seq_len() > 0 {
                    self.ack_now = true;
                    self.timewait_deadline = Some(now + cfg.time_wait);
                }
            }
            TcpState::Closed => {}
            _ => self.on_segment_synchronized(seg, now, cfg),
        }
    }

    fn on_segment_syn_sent(&mut self, seg: &TcpSegment, now: SimTime, cfg: &TcpConfig) {
        if seg.flags.contains(TcpFlags::ACK)
            && (seq_le(seg.ack, self.iss) || seq_gt(seg.ack, self.snd_nxt))
        {
            return; // unacceptable ACK; a full stack would RST
        }
        if seg.flags.contains(TcpFlags::RST) {
            if seg.flags.contains(TcpFlags::ACK) {
                self.enter_closed(SocketError::Reset);
            }
            return;
        }
        if !seg.flags.contains(TcpFlags::SYN) {
            return;
        }
        self.irs = seg.seq;
        self.rcv_buf = RecvBuffer::new(seg.seq.wrapping_add(1), cfg.recv_buffer);
        self.mss_peer = seg.mss();
        if seg.flags.contains(TcpFlags::ACK) {
            self.accept_ack(seg, now, cfg);
            self.state = TcpState::Established;
            self.consecutive_rtx = 0;
            self.ack_now = true;
            self.snd_wnd = u32::from(seg.window);
            self.snd_wnd_max = self.snd_wnd_max.max(self.snd_wnd);
            self.snd_wl1 = seg.seq;
            self.snd_wl2 = seg.ack;
            // Data may ride on the SYN+ACK.
            self.process_payload_and_fin(seg, now, cfg);
        } else {
            // Simultaneous open: respond with SYN+ACK.
            self.state = TcpState::SynRcvd;
            self.snd_nxt = self.iss; // re-emit SYN, now with ACK
            self.ack_now = true;
        }
    }

    fn on_segment_synchronized(&mut self, seg: &TcpSegment, now: SimTime, cfg: &TcpConfig) {
        // --- RFC 793 acceptability test ---
        let wnd = u32::from(self.window(cfg));
        let seg_len = seg.seq_len();
        let rcv_nxt = self.rcv_nxt();
        let acceptable = if seg_len == 0 {
            if wnd == 0 {
                seg.seq == rcv_nxt
            } else {
                seq_le(rcv_nxt, seg.seq) && seq_lt(seg.seq, rcv_nxt.wrapping_add(wnd))
            }
        } else if wnd == 0 {
            false
        } else {
            seq_lt(seg.seq, rcv_nxt.wrapping_add(wnd))
                && seq_gt(seg.seq.wrapping_add(seg_len), rcv_nxt)
        };
        if !acceptable {
            if !seg.flags.contains(TcpFlags::RST) {
                self.ack_now = true; // duplicate ACK / re-ACK of old data
            }
            return;
        }
        if seg.flags.contains(TcpFlags::RST) {
            self.enter_closed(SocketError::Reset);
            return;
        }
        if seg.flags.contains(TcpFlags::SYN) {
            // SYN in window in a synchronized state: a SYN+ACK
            // retransmission (our ACK was lost). Re-ACK it.
            if seg.seq == self.irs {
                self.ack_now = true;
                if !seg.flags.contains(TcpFlags::ACK) {
                    return;
                }
            } else {
                self.enter_closed(SocketError::Reset);
                return;
            }
        }
        if !seg.flags.contains(TcpFlags::ACK) {
            return;
        }
        // --- ACK processing ---
        if self.state == TcpState::SynRcvd {
            if seq_le(seg.ack, self.iss) || seq_gt(seg.ack, self.snd_nxt) {
                return;
            }
            self.state = TcpState::Established;
            self.consecutive_rtx = 0;
            self.snd_wnd = u32::from(seg.window);
            self.snd_wnd_max = self.snd_wnd_max.max(self.snd_wnd);
            self.snd_wl1 = seg.seq;
            self.snd_wl2 = seg.ack;
        }
        self.accept_ack(seg, now, cfg);
        self.process_payload_and_fin(seg, now, cfg);
    }

    /// Handles the acknowledgment and window fields of `seg`.
    fn accept_ack(&mut self, seg: &TcpSegment, now: SimTime, cfg: &TcpConfig) {
        let ack = seg.ack;
        if seq_gt(ack, self.snd_max) {
            // Ack of data never sent: re-ACK and ignore.
            self.ack_now = true;
            return;
        }
        if seq_gt(ack, self.snd_una) {
            let acked = seq_diff(ack, self.snd_una) as u32;
            self.snd_una = ack;
            // After a go-back-N rewind, an ACK for data sent before the
            // rewind must also pull SND.NXT forward so we do not resend
            // bytes the peer already has.
            if seq_gt(ack, self.snd_nxt) {
                self.snd_nxt = ack;
            }
            self.send_buf.ack_to(ack);
            self.consecutive_rtx = 0;
            // RTT sample (Karn: sample cleared on retransmission).
            if let Some((sample_seq, sent_at)) = self.rtt_sample {
                if seq_ge(ack, sample_seq) {
                    self.rtt.sample(now.duration_since(sent_at));
                    self.rtt_sample = None;
                }
            }
            // Congestion window growth.
            if self.in_fast_recovery {
                if seq_ge(ack, self.recover) {
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dup_acks = 0;
                } else {
                    // Reno: leave recovery on any new ack as well.
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dup_acks = 0;
                }
            } else {
                let mss = u32::from(self.effective_mss());
                if self.cwnd < self.ssthresh {
                    self.cwnd = self.cwnd.saturating_add(acked.min(mss));
                } else {
                    self.cwnd = self.cwnd.saturating_add((mss * mss / self.cwnd).max(1));
                }
                self.dup_acks = 0;
            }
            if !cfg.congestion_control {
                self.cwnd = u32::MAX / 4;
            }
            // Retransmission timer: restart while data outstanding.
            if seq_lt(self.snd_una, self.snd_nxt) {
                self.rtx_deadline = Some(now + self.rtt.rto());
            } else {
                self.rtx_deadline = None;
            }
            // FIN acknowledged?
            if self.fin_sent && seq_ge(self.snd_una, self.snd_nxt) {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => {
                        self.state = TcpState::TimeWait;
                        self.timewait_deadline = Some(now + cfg.time_wait);
                    }
                    TcpState::LastAck => self.enter_closed_clean(),
                    _ => {}
                }
            }
        } else if ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.intersects(TcpFlags::SYN | TcpFlags::FIN)
            && seq_lt(self.snd_una, self.snd_nxt)
            && u32::from(seg.window) == self.snd_wnd
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            let mss = u32::from(self.effective_mss());
            if self.dup_acks == 3 && cfg.congestion_control && !self.in_fast_recovery {
                // Fast retransmit + fast recovery entry.
                let flight = seq_diff(self.snd_nxt, self.snd_una) as u32;
                self.ssthresh = (flight / 2).max(2 * mss);
                self.cwnd = self.ssthresh + 3 * mss;
                self.in_fast_recovery = true;
                self.recover = self.snd_nxt;
                self.fast_retransmit_pending = true;
            } else if self.in_fast_recovery {
                self.cwnd = self.cwnd.saturating_add(mss);
            } else if self.dup_acks >= 3 && !cfg.congestion_control {
                // Still fast-retransmit without Reno accounting.
                self.fast_retransmit_pending = true;
            }
        }
        // Window update (RFC 793 p.72).
        if seq_lt(self.snd_wl1, seg.seq) || (self.snd_wl1 == seg.seq && seq_le(self.snd_wl2, ack)) {
            let was_zero = self.snd_wnd == 0;
            self.snd_wnd = u32::from(seg.window);
            self.snd_wnd_max = self.snd_wnd_max.max(self.snd_wnd);
            self.snd_wl1 = seg.seq;
            self.snd_wl2 = ack;
            if was_zero && self.snd_wnd > 0 {
                self.persist_deadline = None;
            }
        }
    }

    /// Handles payload and FIN of an acceptable segment.
    fn process_payload_and_fin(&mut self, seg: &TcpSegment, now: SimTime, cfg: &TcpConfig) {
        if !seg.payload.is_empty()
            && matches!(
                self.state,
                TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
            )
        {
            let advanced = self.rcv_buf.insert(seg.seq, &seg.payload);
            self.segs_since_ack += 1;
            if !advanced || self.rcv_buf.has_holes() {
                // Out-of-order or duplicate: immediate (duplicate) ACK
                // feeds the sender's fast retransmit.
                self.ack_now = true;
            } else if self.segs_since_ack >= 2 {
                self.ack_now = true;
            } else if let Some(delay) = cfg.delayed_ack {
                if self.delack_deadline.is_none() {
                    self.delack_deadline = Some(now + delay);
                }
            } else {
                self.ack_now = true;
            }
        }
        if seg.flags.contains(TcpFlags::FIN) {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if self.remote_fin.is_none() {
                self.remote_fin = Some(fin_seq);
            }
            // The FIN is consumed only when all preceding data arrived.
            if self.rcv_buf.next_seq() == fin_seq {
                self.ack_now = true;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Our FIN not yet acked (else we'd be FinWait2).
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        self.timewait_deadline = Some(now + cfg.time_wait);
                    }
                    _ => {}
                }
            }
        } else if let Some(fin_seq) = self.remote_fin {
            // A hole was just filled; maybe the FIN is now consumable.
            if self.rcv_buf.next_seq() == fin_seq {
                self.ack_now = true;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => self.state = TcpState::Closing,
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        self.timewait_deadline = Some(now + cfg.time_wait);
                    }
                    _ => {}
                }
            }
        }
    }

    fn enter_closed(&mut self, err: SocketError) {
        self.state = TcpState::Closed;
        self.error = Some(err);
        self.rtx_deadline = None;
        self.persist_deadline = None;
        self.delack_deadline = None;
    }

    fn enter_closed_clean(&mut self) {
        self.state = TcpState::Closed;
        self.rtx_deadline = None;
        self.persist_deadline = None;
        self.delack_deadline = None;
    }

    // ---------------------------------------------------------------
    // Timers
    // ---------------------------------------------------------------

    /// Advances time: fires retransmission, persist, delayed-ACK and
    /// TIME-WAIT timers that are due.
    pub fn on_tick(&mut self, now: SimTime, cfg: &TcpConfig) {
        if let Some(deadline) = self.timewait_deadline {
            if now >= deadline && self.state == TcpState::TimeWait {
                self.enter_closed_clean();
                return;
            }
        }
        if let Some(deadline) = self.rtx_deadline {
            if now >= deadline {
                self.on_retransmission_timeout(now, cfg);
            }
        }
        if let Some(deadline) = self.persist_deadline {
            if now >= deadline {
                self.persist_deadline = None;
                self.zero_window_probe_pending = true;
            }
        }
        if let Some(deadline) = self.delack_deadline {
            if now >= deadline {
                self.delack_deadline = None;
                self.ack_now = true;
            }
        }
    }

    fn on_retransmission_timeout(&mut self, now: SimTime, cfg: &TcpConfig) {
        // A peer that *closed* its window is alive (it keeps ACKing
        // our probes); persist-style retries never give up (RFC 1122).
        // A peer that never offered one (handshake) still times out.
        let persist_case = self.snd_wnd == 0 && self.snd_wnd_max > 0;
        if !persist_case {
            self.consecutive_rtx += 1;
        }
        if self.consecutive_rtx > MAX_RETRANSMITS {
            self.enter_closed(SocketError::TimedOut);
            return;
        }
        self.rtt.back_off();
        self.rtt_sample = None; // Karn's rule
        let mss = u32::from(self.effective_mss());
        if cfg.congestion_control {
            let flight = seq_diff(self.snd_nxt, self.snd_una).max(0) as u32;
            self.ssthresh = (flight / 2).max(2 * mss);
            self.cwnd = mss;
        }
        self.dup_acks = 0;
        self.in_fast_recovery = false;
        // Go-back-N: rewind and let output() resend.
        self.snd_nxt = self.snd_una;
        self.retransmits += 1;
        self.rto_expiries += 1;
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    // ---------------------------------------------------------------
    // Output
    // ---------------------------------------------------------------

    /// Builds every segment the connection currently owes the network:
    /// SYN / SYN+ACK, in-window data, FIN, zero-window probes, pure
    /// ACKs and window updates.
    pub fn output(&mut self, now: SimTime, cfg: &TcpConfig, out: &mut Vec<TcpSegment>) {
        if self.state == TcpState::Closed {
            if self.error == Some(SocketError::Aborted) && !self.rst_sent {
                self.rst_sent = true;
                out.push(
                    TcpSegment::builder(self.tuple.local.port, self.tuple.remote.port)
                        .seq(self.snd_nxt)
                        .ack(self.rcv_nxt())
                        .flags(TcpFlags::RST)
                        .build(),
                );
            }
            return;
        }
        let before = out.len();
        self.output_handshake(now, cfg, out);
        self.output_data(now, cfg, out);
        self.output_fin(now, cfg, out);
        self.output_probe(now, cfg, out);
        // Pure ACK if nothing else carried it.
        if out.len() == before && self.ack_now && self.state != TcpState::SynSent {
            out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Bytes::new(), cfg));
        }
        if out.len() > before {
            self.ack_now = false;
            self.segs_since_ack = 0;
            self.delack_deadline = None;
        }
        // Arm the retransmission timer when data/SYN/FIN is in flight.
        if seq_lt(self.snd_una, self.snd_nxt) && self.rtx_deadline.is_none() {
            self.rtx_deadline = Some(now + self.rtt.rto());
        }
    }

    fn make_segment(
        &mut self,
        flags: TcpFlags,
        seq: u32,
        payload: Bytes,
        cfg: &TcpConfig,
    ) -> TcpSegment {
        let wnd = self.window(cfg);
        self.last_wnd_advertised = wnd;
        let mut b = TcpSegment::builder(self.tuple.local.port, self.tuple.remote.port)
            .seq(seq)
            .flags(flags)
            .window(wnd)
            .payload(payload);
        if flags.contains(TcpFlags::ACK) {
            b = b.ack(self.rcv_nxt());
        }
        b.build()
    }

    fn output_handshake(&mut self, now: SimTime, cfg: &TcpConfig, out: &mut Vec<TcpSegment>) {
        let needs_syn =
            self.snd_nxt == self.iss && matches!(self.state, TcpState::SynSent | TcpState::SynRcvd);
        if !needs_syn {
            return;
        }
        let flags = if self.state == TcpState::SynSent {
            TcpFlags::SYN
        } else {
            TcpFlags::SYN | TcpFlags::ACK
        };
        let wnd = self.window(cfg);
        self.last_wnd_advertised = wnd;
        let mut b = TcpSegment::builder(self.tuple.local.port, self.tuple.remote.port)
            .seq(self.iss)
            .flags(flags)
            .window(wnd)
            .mss(self.mss_local);
        if flags.contains(TcpFlags::ACK) {
            b = b.ack(self.rcv_nxt());
        }
        out.push(b.build());
        self.snd_nxt = self.iss.wrapping_add(1);
        self.snd_max = crate::seq::seq_max(self.snd_max, self.snd_nxt);
        if self.rtt_sample.is_none() {
            self.rtt_sample = Some((self.snd_nxt, now));
        }
    }

    fn output_data(&mut self, now: SimTime, cfg: &TcpConfig, out: &mut Vec<TcpSegment>) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        let mss = u32::from(self.effective_mss());
        let data_end = self.send_buf.end_seq();
        loop {
            // Stop at the FIN boundary: data beyond data_end is the FIN.
            if !seq_lt(self.snd_nxt, data_end) {
                break;
            }
            let in_flight = seq_diff(self.snd_nxt, self.snd_una).max(0) as u32;
            let wnd = self.snd_wnd.min(self.cwnd);
            if wnd <= in_flight {
                self.arm_persist_if_stuck(now, in_flight);
                break;
            }
            let usable = wnd - in_flight;
            let avail = seq_diff(data_end, self.snd_nxt) as u32;
            let len = usable.min(avail).min(mss);
            if len == 0 {
                self.arm_persist_if_stuck(now, in_flight);
                break;
            }
            let is_tail = len == avail;
            // Sender-side silly-window avoidance (RFC 1122 / BSD):
            // send a sub-MSS segment only when it is the tail of the
            // buffered data or it fills half the largest window the
            // peer ever offered. Window-limited fragments wait for
            // acknowledgments (or the persist timer).
            if len < mss && !is_tail && usable < (self.snd_wnd_max / 2).max(1) {
                self.arm_persist_if_stuck(now, in_flight);
                break;
            }
            // Nagle: hold a sub-MSS tail while data is in flight.
            if cfg.nagle && len < mss && is_tail && in_flight > 0 && !self.fin_wanted {
                break;
            }
            let payload = Bytes::from(self.send_buf.slice(self.snd_nxt, len as usize));
            let is_tail = self.snd_nxt.wrapping_add(len) == data_end;
            let mut flags = TcpFlags::ACK;
            if is_tail {
                flags |= TcpFlags::PSH;
            }
            let seq = self.snd_nxt;
            let seg = self.make_segment(flags, seq, payload, cfg);
            self.snd_nxt = self.snd_nxt.wrapping_add(len);
            self.snd_max = crate::seq::seq_max(self.snd_max, self.snd_nxt);
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now));
            }
            out.push(seg);
        }
        // Fast retransmit: resend the first unacknowledged segment once.
        if self.fast_retransmit_pending {
            self.fast_retransmit_pending = false;
            self.retransmits += 1;
            let avail = seq_diff(data_end, self.snd_una).max(0) as u32;
            let len = avail.min(mss);
            if len > 0 {
                let payload = Bytes::from(self.send_buf.slice(self.snd_una, len as usize));
                let seq = self.snd_una;
                let seg = self.make_segment(TcpFlags::ACK, seq, payload, cfg);
                out.push(seg);
            } else if self.fin_sent {
                let seq = self.snd_una;
                let seg = self.make_segment(TcpFlags::FIN | TcpFlags::ACK, seq, Bytes::new(), cfg);
                out.push(seg);
            }
        }
    }

    fn output_fin(&mut self, _now: SimTime, cfg: &TcpConfig, out: &mut Vec<TcpSegment>) {
        if !self.fin_wanted {
            return;
        }
        let data_end = self.send_buf.end_seq();
        // FIN goes out only after all data is transmitted, and only when
        // snd_nxt sits exactly at the FIN's sequence (first send or
        // post-rewind retransmission).
        let fin_unacked = !self.fin_sent || seq_le(self.snd_una, data_end);
        if self.snd_nxt != data_end || !fin_unacked {
            return;
        }
        let sendable_state = matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        );
        if !sendable_state {
            return;
        }
        let seq = self.snd_nxt;
        let seg = self.make_segment(TcpFlags::FIN | TcpFlags::ACK, seq, Bytes::new(), cfg);
        out.push(seg);
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.snd_max = crate::seq::seq_max(self.snd_max, self.snd_nxt);
        if !self.fin_sent {
            self.fin_sent = true;
            match self.state {
                TcpState::Established => self.state = TcpState::FinWait1,
                TcpState::CloseWait => self.state = TcpState::LastAck,
                _ => {}
            }
        }
    }

    /// Arms the persist timer when output is blocked with nothing in
    /// flight (zero or silly window): only a probe can restart the
    /// conversation.
    fn arm_persist_if_stuck(&mut self, now: SimTime, in_flight: u32) {
        if in_flight == 0 && self.persist_deadline.is_none() && self.rtx_deadline.is_none() {
            self.persist_deadline = Some(now + self.rtt.rto());
        }
    }

    fn output_probe(&mut self, _now: SimTime, cfg: &TcpConfig, out: &mut Vec<TcpSegment>) {
        if !self.zero_window_probe_pending {
            return;
        }
        self.zero_window_probe_pending = false;
        let data_end = self.send_buf.end_seq();
        if !seq_lt(self.snd_nxt, data_end) {
            return;
        }
        let in_flight = seq_diff(self.snd_nxt, self.snd_una).max(0) as u32;
        if in_flight > 0 {
            return; // acknowledgments are flowing again
        }
        // Force out whatever the window allows; at least one byte even
        // into a zero window (the receiver re-ACKs with its state).
        let avail = seq_diff(data_end, self.snd_nxt) as u32;
        let usable = self.snd_wnd.min(self.cwnd);
        let len = avail
            .min(usable.max(1))
            .min(u32::from(self.effective_mss()));
        let payload = Bytes::from(self.send_buf.slice(self.snd_nxt, len as usize));
        let seq = self.snd_nxt;
        let seg = self.make_segment(TcpFlags::ACK, seq, payload, cfg);
        self.snd_nxt = self.snd_nxt.wrapping_add(len);
        self.snd_max = crate::seq::seq_max(self.snd_max, self.snd_nxt);
        out.push(seg);
    }

    /// Earliest pending timer deadline (lets the stack sleep precisely).
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rtx_deadline,
            self.persist_deadline,
            self.delack_deadline,
            self.timewait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SocketAddr;
    use tcpfo_net::time::SimDuration;
    use tcpfo_wire::ipv4::Ipv4Addr;

    fn cfg() -> TcpConfig {
        TcpConfig {
            delayed_ack: None, // deterministic immediate ACKs for tests
            nagle: false,
            ..TcpConfig::default()
        }
    }

    fn tuples() -> (FourTuple, FourTuple) {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 2000);
        (FourTuple::new(a, b), FourTuple::new(b, a))
    }

    /// Drives two sockets against each other until quiescent.
    fn pump(a: &mut Socket, b: &mut Socket, now: SimTime, cfg: &TcpConfig) {
        for _ in 0..200 {
            let mut out_a = Vec::new();
            a.output(now, cfg, &mut out_a);
            let mut out_b = Vec::new();
            b.output(now, cfg, &mut out_b);
            if out_a.is_empty() && out_b.is_empty() {
                return;
            }
            for seg in out_a {
                b.on_segment(&seg, now, cfg);
            }
            for seg in out_b {
                a.on_segment(&seg, now, cfg);
            }
        }
        panic!("pump did not quiesce");
    }

    /// Builds an established pair via a real three-way handshake.
    fn established() -> (Socket, Socket, TcpConfig) {
        let cfg = cfg();
        let (ta, tb) = tuples();
        let now = SimTime::ZERO;
        let mut client = Socket::client(ta, 1_000_000, &cfg);
        let mut syn_out = Vec::new();
        client.output(now, &cfg, &mut syn_out);
        assert_eq!(syn_out.len(), 1);
        assert!(syn_out[0].flags.contains(TcpFlags::SYN));
        assert_eq!(syn_out[0].mss(), Some(1460));
        // The server constructor consumes the SYN; drive the rest.
        let mut server = Socket::server(tb, 5_000_000, &syn_out[0], &cfg);
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        (client, server, cfg)
    }

    #[test]
    fn three_way_handshake() {
        let (client, server, _) = established();
        assert_eq!(client.effective_mss(), 1460);
        assert_eq!(server.effective_mss(), 1460);
        assert_eq!(client.rcv_nxt(), 5_000_001);
        assert_eq!(server.rcv_nxt(), 1_000_001);
    }

    #[test]
    fn data_transfer_both_directions() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        assert_eq!(client.send(b"hello server"), 12);
        assert_eq!(server.send(b"hello client"), 12);
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.recv(100, &cfg), b"hello server");
        assert_eq!(client.recv(100, &cfg), b"hello client");
        assert_eq!(client.unacked(), 0);
        assert_eq!(server.unacked(), 0);
    }

    #[test]
    fn large_transfer_stream_integrity() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        let msg: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let mut written = 0;
        let mut received = Vec::new();
        let mut rounds = 0;
        while received.len() < msg.len() {
            written += client.send(&msg[written..]);
            pump(&mut client, &mut server, now, &cfg);
            received.extend(server.recv(usize::MAX, &cfg));
            rounds += 1;
            assert!(rounds < 10_000, "transfer stalled at {}", received.len());
        }
        assert_eq!(received, msg);
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(client.unacked(), 0);
        assert_eq!(client.retransmits, 0, "lossless path retransmitted");
    }

    /// Grows the congestion window by transferring warm-up data.
    fn warm_up(client: &mut Socket, server: &mut Socket, cfg: &TcpConfig) {
        let now = SimTime::ZERO;
        for _ in 0..4 {
            client.send(&vec![0u8; 8192]);
            pump(client, server, now, cfg);
            server.recv(usize::MAX, cfg);
        }
    }

    #[test]
    fn orderly_close_four_way() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        client.close();
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.state, TcpState::CloseWait);
        assert_eq!(client.state, TcpState::FinWait2);
        assert!(server.peer_closed());
        server.close();
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.state, TcpState::Closed);
        assert_eq!(client.state, TcpState::TimeWait);
        // TIME-WAIT expires.
        let later = now + cfg.time_wait + SimDuration::from_millis(1);
        client.on_tick(later, &cfg);
        assert_eq!(client.state, TcpState::Closed);
        assert!(client.error.is_none());
    }

    #[test]
    fn half_close_allows_peer_to_keep_sending() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        client.close();
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.state, TcpState::CloseWait);
        // Server continues sending in the half-closed state (§8).
        server.send(b"late data");
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(client.recv(100, &cfg), b"late data");
        server.close();
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.state, TcpState::Closed);
    }

    #[test]
    fn simultaneous_close_reaches_closing() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        client.close();
        server.close();
        // Exchange FINs "simultaneously": collect both before delivery.
        let mut out_c = Vec::new();
        client.output(now, &cfg, &mut out_c);
        let mut out_s = Vec::new();
        server.output(now, &cfg, &mut out_s);
        assert!(out_c[0].flags.contains(TcpFlags::FIN));
        assert!(out_s[0].flags.contains(TcpFlags::FIN));
        for seg in out_s {
            client.on_segment(&seg, now, &cfg);
        }
        for seg in out_c {
            server.on_segment(&seg, now, &cfg);
        }
        assert_eq!(client.state, TcpState::Closing);
        assert_eq!(server.state, TcpState::Closing);
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(client.state, TcpState::TimeWait);
        assert_eq!(server.state, TcpState::TimeWait);
    }

    #[test]
    fn lost_data_segment_retransmits_on_timeout() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        client.send(b"important");
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        // Segment lost. Fire the retransmission timer.
        let deadline = client.rtx_deadline.expect("rtx armed");
        client.on_tick(deadline, &cfg);
        let mut out2 = Vec::new();
        client.output(deadline, &cfg, &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].payload, out[0].payload);
        assert_eq!(out2[0].seq, out[0].seq);
        assert_eq!(client.retransmits, 1);
        // Deliver and confirm recovery.
        server.on_segment(&out2[0], deadline, &cfg);
        pump(&mut client, &mut server, deadline, &cfg);
        assert_eq!(server.recv(100, &cfg), b"important");
        assert_eq!(client.unacked(), 0);
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        warm_up(&mut client, &mut server, &cfg);
        // Send 5 MSS of data as 5 segments.
        let data = vec![7u8; 1460 * 5];
        client.send(&data);
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert!(out.len() >= 4, "got {} segments", out.len());
        // Drop the first segment; deliver the rest one at a time so the
        // receiver emits one duplicate ACK per out-of-order arrival.
        let mut acks = Vec::new();
        for seg in &out[1..] {
            server.on_segment(seg, now, &cfg);
            server.output(now, &cfg, &mut acks);
        }
        assert!(acks.len() >= 3, "server produced {} dup acks", acks.len());
        for ack in &acks {
            assert_eq!(ack.ack, out[0].seq, "dup acks point at the hole");
            client.on_segment(ack, now, &cfg);
        }
        let mut rtx = Vec::new();
        client.output(now, &cfg, &mut rtx);
        assert!(
            rtx.iter().any(|s| s.seq == out[0].seq),
            "fast retransmit resends the missing segment"
        );
        assert!(client.retransmits >= 1);
        // Deliver the retransmission; everything reassembles.
        for seg in &rtx {
            server.on_segment(seg, now, &cfg);
        }
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.recv(usize::MAX, &cfg), data);
    }

    #[test]
    fn zero_window_blocks_then_probe_recovers() {
        let cfg = TcpConfig {
            recv_buffer: 2000,
            delayed_ack: None,
            nagle: false,
            ..TcpConfig::default()
        };
        let (ta, tb) = tuples();
        let mut now = SimTime::ZERO;
        let mut client = Socket::client(ta, 100, &cfg);
        let mut syn = Vec::new();
        client.output(now, &cfg, &mut syn);
        let mut server = Socket::server(tb, 200, &syn[0], &cfg);
        pump(&mut client, &mut server, now, &cfg);
        // Fill the server's tiny receive buffer without reading. The
        // sub-MSS remainder is silly-window-suppressed until the
        // persist timer forces it out, so advance time between pumps.
        client.send(&vec![1u8; 4000]);
        for _ in 0..16 {
            pump(&mut client, &mut server, now, &cfg);
            now += SimDuration::from_millis(1500);
            client.on_tick(now, &cfg);
            server.on_tick(now, &cfg);
        }
        pump(&mut client, &mut server, now, &cfg);
        assert_eq!(server.recv_available(), 2000, "window filled");
        assert_eq!(server.window(&cfg), 0);
        assert!(client.unacked() > 0, "sender blocked on zero window");
        // Application reads; window opens; probing resumes transfer.
        let got = server.recv(2000, &cfg);
        assert_eq!(got.len(), 2000);
        for _ in 0..16 {
            pump(&mut client, &mut server, now, &cfg);
            now += SimDuration::from_millis(1500);
            client.on_tick(now, &cfg);
            server.on_tick(now, &cfg);
        }
        assert_eq!(server.recv_available(), 2000, "transfer resumed");
        assert_eq!(client.unacked(), 0);
    }

    #[test]
    fn rst_tears_down() {
        let (mut client, mut server, cfg) = established();
        let now = SimTime::ZERO;
        client.abort();
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.contains(TcpFlags::RST));
        server.on_segment(&out[0], now, &cfg);
        assert_eq!(server.state, TcpState::Closed);
        assert_eq!(server.error, Some(SocketError::Reset));
    }

    #[test]
    fn syn_retransmission_after_timeout() {
        let cfg = cfg();
        let (ta, _) = tuples();
        let now = SimTime::ZERO;
        let mut client = Socket::client(ta, 42, &cfg);
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert!(out[0].flags.contains(TcpFlags::SYN));
        let deadline = client.rtx_deadline.unwrap();
        client.on_tick(deadline, &cfg);
        let mut out2 = Vec::new();
        client.output(deadline, &cfg, &mut out2);
        assert_eq!(out2.len(), 1);
        assert!(out2[0].flags.contains(TcpFlags::SYN));
        assert_eq!(out2[0].seq, 42);
    }

    #[test]
    fn connection_times_out_after_max_retransmits() {
        let cfg = cfg();
        let (ta, _) = tuples();
        let mut client = Socket::client(ta, 42, &cfg);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        for _ in 0..=MAX_RETRANSMITS {
            let deadline = match client.rtx_deadline {
                Some(d) => d,
                None => break,
            };
            now = deadline;
            client.on_tick(now, &cfg);
            let mut o = Vec::new();
            client.output(now, &cfg, &mut o);
        }
        assert_eq!(client.state, TcpState::Closed);
        assert_eq!(client.error, Some(SocketError::TimedOut));
    }

    #[test]
    fn nagle_holds_small_tail_until_ack() {
        let cfg = TcpConfig {
            delayed_ack: None,
            nagle: true,
            ..TcpConfig::default()
        };
        let (ta, tb) = tuples();
        let now = SimTime::ZERO;
        let mut client = Socket::client(ta, 1, &cfg);
        let mut syn = Vec::new();
        client.output(now, &cfg, &mut syn);
        let mut server = Socket::server(tb, 2, &syn[0], &cfg);
        pump(&mut client, &mut server, now, &cfg);
        // First small write goes out immediately (nothing in flight)…
        client.send(b"tiny");
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        // …second small write is held while the first is unacked.
        client.send(b"more");
        let mut out2 = Vec::new();
        client.output(now, &cfg, &mut out2);
        assert!(out2.is_empty(), "nagle must hold the tail");
        // The ACK releases it.
        server.on_segment(&out[0], now, &cfg);
        let mut acks = Vec::new();
        server.output(now, &cfg, &mut acks);
        for a in &acks {
            client.on_segment(a, now, &cfg);
        }
        let mut out3 = Vec::new();
        client.output(now, &cfg, &mut out3);
        assert_eq!(out3.len(), 1);
        assert_eq!(&out3[0].payload[..], b"more");
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let cfg = TcpConfig {
            delayed_ack: Some(SimDuration::from_millis(40)),
            nagle: false,
            ..TcpConfig::default()
        };
        let (ta, tb) = tuples();
        let now = SimTime::ZERO;
        let mut client = Socket::client(ta, 1, &cfg);
        let mut syn = Vec::new();
        client.output(now, &cfg, &mut syn);
        let mut server = Socket::server(tb, 2, &syn[0], &cfg);
        pump(&mut client, &mut server, now, &cfg);
        client.send(b"one segment");
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        server.on_segment(&out[0], now, &cfg);
        // No immediate ACK for a single in-order segment…
        let mut acks = Vec::new();
        server.output(now, &cfg, &mut acks);
        assert!(acks.is_empty(), "ack should be delayed");
        // …but the delayed-ack timer produces one.
        let fire = now + SimDuration::from_millis(40);
        server.on_tick(fire, &cfg);
        server.output(fire, &cfg, &mut acks);
        assert_eq!(acks.len(), 1);
        assert!(acks[0].payload.is_empty());
        assert_eq!(
            acks[0].ack,
            out[0].seq.wrapping_add(out[0].payload.len() as u32)
        );
    }

    #[test]
    fn every_other_segment_acks_immediately() {
        let cfg = TcpConfig {
            delayed_ack: Some(SimDuration::from_millis(40)),
            nagle: false,
            ..TcpConfig::default()
        };
        let (ta, tb) = tuples();
        let now = SimTime::ZERO;
        let mut client = Socket::client(ta, 1, &cfg);
        let mut syn = Vec::new();
        client.output(now, &cfg, &mut syn);
        let mut server = Socket::server(tb, 2, &syn[0], &cfg);
        pump(&mut client, &mut server, now, &cfg);
        client.send(&vec![9u8; 1460 * 2]);
        let mut out = Vec::new();
        client.output(now, &cfg, &mut out);
        assert_eq!(out.len(), 2);
        server.on_segment(&out[0], now, &cfg);
        server.on_segment(&out[1], now, &cfg);
        let mut acks = Vec::new();
        server.output(now, &cfg, &mut acks);
        assert_eq!(acks.len(), 1, "second full segment forces an ack");
    }
}
