//! The host device: NIC (with promiscuous mode), ARP, IP layer, the
//! TCP/IP-boundary filter hook, the TCP stack, applications, and an
//! optional controller (the failover logic of `tcpfo-core`).
//!
//! Data paths, matching Figure 1 of the paper:
//!
//! ```text
//!   apps ── SocketApi ── TcpStack
//!                           │  segments
//!                   SegmentFilter (the "bridge", §1)
//!                           │
//!                        IP layer ── ARP
//!                           │
//!                          NIC (promiscuous?) ── wire
//! ```
//!
//! Inbound TCP segments pass the filter *before* local-address checks,
//! which is what lets the secondary's bridge claim datagrams addressed
//! to the primary (§3.1); outbound segments pass it before the IP
//! layer, which is what lets the primary's bridge delay and merge
//! replies (§3.2).

use crate::app::{SocketApi, SocketApp};
use crate::config::TcpConfig;
use crate::filter::{AddressedSegment, FailoverRule, FilterOutput, NoopFilter, SegmentFilter};
use crate::stack::TcpStack;
use bytes::Bytes;
use std::any::Any;
use std::collections::HashMap;
use tcpfo_net::sim::{Ctx, Device, NodeId, Simulator, TimerToken};
use tcpfo_net::time::{SimDuration, SimTime};
use tcpfo_telemetry::{Counter, Gauge, Histogram, Telemetry};
use tcpfo_wire::arp::{ArpOp, ArpPacket};
use tcpfo_wire::eth::{EtherType, EthernetFrame};
use tcpfo_wire::ipv4::{same_network, Ipv4Addr, Ipv4Packet, PROTO_TCP};
use tcpfo_wire::mac::MacAddr;

/// Timer token for the host's periodic stack tick.
pub const TOKEN_TICK: TimerToken = TimerToken(1);

/// Per-host CPU cost model. The simulator serialises all protocol
/// work on one virtual CPU: every transmitted frame costs
/// `tx_fixed + len·tx_per_byte`, every received frame charges
/// `rx_fixed + len·rx_per_byte` against the same budget (delaying
/// subsequent transmissions — an approximation that captures CPU
/// contention without reordering receptions). This is what stands in
/// for the paper's 566 MHz Pentium III protocol-processing cost.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Fixed cost per transmitted frame.
    pub tx_fixed: SimDuration,
    /// Per-byte transmit cost (checksum + copy), in nanoseconds.
    pub tx_per_byte_ns: u64,
    /// Fixed cost per received frame.
    pub rx_fixed: SimDuration,
    /// Per-byte receive cost, in nanoseconds.
    pub rx_per_byte_ns: u64,
    /// Positive random skew fraction (OS scheduling noise); 0 keeps
    /// runs fully deterministic for a fixed seed either way.
    pub jitter: f64,
}

impl CpuModel {
    /// An effectively free CPU (protocol work costs nothing).
    pub fn instant() -> Self {
        CpuModel {
            tx_fixed: SimDuration::ZERO,
            tx_per_byte_ns: 0,
            rx_fixed: SimDuration::ZERO,
            rx_per_byte_ns: 0,
            jitter: 0.0,
        }
    }

    /// A 2003-era server-class host (566 MHz P-III), calibrated so the
    /// standard-TCP baseline reproduces the paper's §9 absolute
    /// numbers.
    pub fn server_2003() -> Self {
        CpuModel {
            tx_fixed: SimDuration::from_micros(80),
            tx_per_byte_ns: 22,
            rx_fixed: SimDuration::from_micros(60),
            rx_per_byte_ns: 38,
            jitter: 0.0,
        }
    }

    /// Scales all costs (the paper's client was a faster 1 GHz host:
    /// scale ≈ 0.6).
    pub fn scaled(self, factor: f64) -> Self {
        let f = |d: SimDuration| SimDuration::from_nanos((d.as_nanos() as f64 * factor) as u64);
        CpuModel {
            tx_fixed: f(self.tx_fixed),
            tx_per_byte_ns: (self.tx_per_byte_ns as f64 * factor) as u64,
            rx_fixed: f(self.rx_fixed),
            rx_per_byte_ns: (self.rx_per_byte_ns as f64 * factor) as u64,
            jitter: self.jitter,
        }
    }

    /// Returns a copy with the given jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }
}

/// Static configuration of a host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host name for traces.
    pub label: String,
    /// NIC hardware address.
    pub mac: MacAddr,
    /// Primary IP address.
    pub ip: Ipv4Addr,
    /// Prefix length of the attached network.
    pub prefix_len: u8,
    /// Default gateway for off-link destinations.
    pub gateway: Option<Ipv4Addr>,
    /// Protocol-processing cost model.
    pub cpu: CpuModel,
    /// Stack timer granularity.
    pub tick: SimDuration,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Start the NIC in promiscuous mode (the secondary server, §3.1).
    pub promiscuous: bool,
}

impl HostConfig {
    /// A host with paper-era defaults.
    pub fn new(label: &str, mac: MacAddr, ip: Ipv4Addr) -> Self {
        HostConfig {
            label: label.to_string(),
            mac,
            ip,
            prefix_len: 24,
            gateway: None,
            cpu: CpuModel::server_2003().scaled(0.5),
            tick: SimDuration::from_millis(1),
            tcp: TcpConfig::default(),
            promiscuous: false,
        }
    }

    /// Sets the default gateway.
    pub fn with_gateway(mut self, gw: Ipv4Addr) -> Self {
        self.gateway = Some(gw);
        self
    }

    /// Sets the TCP configuration.
    pub fn with_tcp(mut self, tcp: TcpConfig) -> Self {
        self.tcp = tcp;
        self
    }

    /// Enables promiscuous receive mode.
    pub fn promiscuous(mut self) -> Self {
        self.promiscuous = true;
        self
    }
}

/// NIC + ARP + IP state, separated from [`Host`] so that services can
/// borrow it alongside the stack and filter.
pub struct HostNet {
    /// NIC hardware address.
    pub mac: MacAddr,
    /// Addresses this host answers for (IP takeover appends here).
    pub local_ips: Vec<Ipv4Addr>,
    prefix_len: u8,
    network: Ipv4Addr,
    gateway: Option<Ipv4Addr>,
    /// Promiscuous receive mode (§3.1 / disabled in §5 step 2).
    pub promiscuous: bool,
    arp_cache: HashMap<Ipv4Addr, MacAddr>,
    arp_pending: HashMap<Ipv4Addr, Vec<Ipv4Packet>>,
    cpu: CpuModel,
    cpu_free_at: SimTime,
    /// Frames transmitted (observability).
    pub frames_sent: u64,
}

impl HostNet {
    fn new(cfg: &HostConfig) -> Self {
        HostNet {
            mac: cfg.mac,
            local_ips: vec![cfg.ip],
            prefix_len: cfg.prefix_len,
            network: cfg.ip,
            gateway: cfg.gateway,
            promiscuous: cfg.promiscuous,
            arp_cache: HashMap::new(),
            arp_pending: HashMap::new(),
            cpu: cfg.cpu,
            cpu_free_at: SimTime::ZERO,
            frames_sent: 0,
        }
    }

    /// Whether `ip` is one of our addresses.
    pub fn is_local(&self, ip: Ipv4Addr) -> bool {
        self.local_ips.contains(&ip)
    }

    /// Pre-populates the ARP cache (the paper primes caches before
    /// measuring, §9).
    pub fn prime_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_cache.insert(ip, mac);
    }

    /// Sends a TCP segment as an IP datagram.
    pub fn send_tcp(&mut self, seg: AddressedSegment, ctx: &mut Ctx<'_>) {
        let pkt = Ipv4Packet::new(seg.src, seg.dst, PROTO_TCP, seg.bytes);
        self.send_ip(pkt, ctx);
    }

    /// Sends a raw IP datagram (heartbeats use this).
    pub fn send_ip(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let next_hop = if same_network(pkt.dst, self.network, self.prefix_len) {
            pkt.dst
        } else {
            match self.gateway {
                Some(gw) => gw,
                None => return, // unroutable
            }
        };
        match self.arp_cache.get(&next_hop) {
            Some(&mac) => self.emit_ip(mac, &pkt, ctx),
            None => {
                let q = self.arp_pending.entry(next_hop).or_default();
                if q.len() < 64 {
                    q.push(pkt);
                }
                let sender_ip = self.local_ips[0];
                let req = ArpPacket::request(self.mac, sender_ip, next_hop);
                let frame =
                    EthernetFrame::new(MacAddr::BROADCAST, self.mac, EtherType::Arp, req.encode());
                ctx.transmit(0, frame.encode());
            }
        }
    }

    fn emit_ip(&mut self, dst_mac: MacAddr, pkt: &Ipv4Packet, ctx: &mut Ctx<'_>) {
        let frame = EthernetFrame::new(dst_mac, self.mac, EtherType::Ipv4, pkt.encode());
        let base = self.cpu.tx_fixed
            + SimDuration::from_nanos(pkt.payload.len() as u64 * self.cpu.tx_per_byte_ns);
        let cost = self.jittered(base, ctx);
        let start = self.cpu_free_at.max(ctx.now()) + cost;
        self.cpu_free_at = start;
        let delay = start.duration_since(ctx.now());
        self.frames_sent += 1;
        ctx.transmit_delayed(0, frame.encode(), delay);
    }

    fn jittered(&self, base: SimDuration, ctx: &mut Ctx<'_>) -> SimDuration {
        if self.cpu.jitter > 0.0 {
            use rand::Rng;
            let f = 1.0 + ctx.rng().gen::<f64>() * self.cpu.jitter;
            SimDuration::from_nanos((base.as_nanos() as f64 * f) as u64)
        } else {
            base
        }
    }

    /// Charges receive-side protocol processing against the CPU (it
    /// delays whatever this host transmits next).
    pub fn charge_rx(&mut self, payload_len: usize, ctx: &mut Ctx<'_>) {
        let base = self.cpu.rx_fixed
            + SimDuration::from_nanos(payload_len as u64 * self.cpu.rx_per_byte_ns);
        let cost = self.jittered(base, ctx);
        self.cpu_free_at = self.cpu_free_at.max(ctx.now()) + cost;
    }

    /// Broadcasts a gratuitous ARP for `ip` (IP takeover, §5 step 5).
    pub fn gratuitous_arp(&mut self, ip: Ipv4Addr, ctx: &mut Ctx<'_>) {
        let g = ArpPacket::gratuitous(self.mac, ip);
        let frame = EthernetFrame::new(MacAddr::BROADCAST, self.mac, EtherType::Arp, g.encode());
        ctx.transmit(0, frame.encode());
    }

    fn handle_arp(&mut self, arp: &ArpPacket, ctx: &mut Ctx<'_>) {
        self.arp_cache.insert(arp.sender_ip, arp.sender_mac);
        if let Some(parked) = self.arp_pending.remove(&arp.sender_ip) {
            for pkt in parked {
                self.emit_ip(arp.sender_mac, &pkt, ctx);
            }
        }
        if arp.op == ArpOp::Request && self.is_local(arp.target_ip) {
            let reply = ArpPacket::reply(self.mac, arp.target_ip, arp.sender_mac, arp.sender_ip);
            let frame =
                EthernetFrame::new(arp.sender_mac, self.mac, EtherType::Arp, reply.encode());
            ctx.transmit(0, frame.encode());
        }
    }
}

/// Capabilities exposed to a [`HostController`]: everything the §5/§6
/// failover procedures need.
pub struct HostServices<'h, 'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// NIC/ARP/IP state.
    pub net: &'h mut HostNet,
    /// The TCP stack.
    pub stack: &'h mut TcpStack,
    /// The TCP/IP-boundary filter (downcast to the concrete bridge).
    pub filter: &'h mut dyn SegmentFilter,
    /// Simulator dispatch context.
    pub ctx: &'h mut Ctx<'a>,
}

impl<'h, 'a> HostServices<'h, 'a> {
    /// Sends a raw IP datagram (e.g. a heartbeat) from our primary IP.
    pub fn send_raw(&mut self, proto: u8, dst: Ipv4Addr, payload: Bytes) {
        let pkt = Ipv4Packet::new(self.net.local_ips[0], dst, proto, payload);
        self.net.send_ip(pkt, self.ctx);
    }

    /// Routes a filter output: wire-bound segments to IP, TCP-bound
    /// segments into the local stack.
    pub fn dispatch(&mut self, output: FilterOutput) {
        for seg in output.to_wire {
            self.net.send_tcp(seg, self.ctx);
        }
        for seg in output.to_tcp {
            if self.net.is_local(seg.dst) {
                self.stack.on_segment(&seg, self.now);
            }
        }
    }
}

/// Failover/replication logic attached to a host (implemented in
/// `tcpfo-core`): receives raw datagrams (heartbeats) and clock ticks.
pub trait HostController: 'static {
    /// Called on every stack tick.
    fn on_tick(&mut self, services: &mut HostServices<'_, '_>);

    /// Called when a non-TCP IP datagram addressed to this host
    /// arrives.
    fn on_raw(
        &mut self,
        proto: u8,
        src: Ipv4Addr,
        payload: &[u8],
        services: &mut HostServices<'_, '_>,
    );

    /// Downcast access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Registry handles a host publishes its TCP counters through, under
/// the scope `tcp.<label>`.
struct TcpInstruments {
    retransmits: Counter,
    rto_expiries: Counter,
    checksum_drops: Counter,
    rst_sent: Counter,
    /// Current / high-water peer-advertised send window across all
    /// live sockets.
    snd_wnd: Gauge,
    /// Congestion-window evolution, sampled once per tick per socket.
    cwnd: Histogram,
}

/// A simulated host with a full network stack.
pub struct Host {
    label: String,
    net: HostNet,
    stack: TcpStack,
    filter: Box<dyn SegmentFilter>,
    apps: Vec<Option<Box<dyn SocketApp>>>,
    controller: Option<Box<dyn HostController>>,
    tick: SimDuration,
    telemetry: Option<TcpInstruments>,
    /// Reused filter-output scratch — per-packet filtering appends into
    /// these vectors and drains them, so the steady state never
    /// allocates output lists.
    fout: FilterOutput,
}

impl Host {
    /// Creates a host from its configuration (with a [`NoopFilter`];
    /// install a bridge with [`Host::set_filter`]).
    pub fn new(cfg: HostConfig) -> Self {
        Host {
            label: cfg.label.clone(),
            net: HostNet::new(&cfg),
            stack: TcpStack::new(cfg.tcp.clone()),
            filter: Box::new(NoopFilter),
            apps: Vec::new(),
            controller: None,
            tick: cfg.tick,
            telemetry: None,
            fout: FilterOutput::empty(),
        }
    }

    /// Connects this host to a telemetry hub. Stack counters
    /// (retransmits, RTO expiries, checksum drops, RSTs) and window
    /// evolution are then published under `tcp.<label>` once per tick.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let scope = telemetry.registry.scope(&format!("tcp.{}", self.label));
        self.telemetry = Some(TcpInstruments {
            retransmits: scope.counter("retransmits"),
            rto_expiries: scope.counter("rto_expiries"),
            checksum_drops: scope.counter("checksum_drops"),
            rst_sent: scope.counter("rst_sent"),
            snd_wnd: scope.gauge("snd_wnd"),
            cwnd: scope.histogram("cwnd"),
        });
    }

    fn publish_telemetry(&mut self, now: SimTime) {
        let Some(t) = &self.telemetry else { return };
        let now_ns = now.as_nanos();
        t.retransmits.set_at_least(self.stack.total_retransmits());
        t.rto_expiries.set_at_least(self.stack.total_rto_expiries());
        t.checksum_drops.set_at_least(self.stack.checksum_drops);
        t.rst_sent.set_at_least(self.stack.rst_sent);
        let mut wnd_sum = 0u64;
        let mut any = false;
        for id in self.stack.socket_ids() {
            if let Some(sock) = self.stack.socket(id) {
                if sock.is_established() {
                    any = true;
                    wnd_sum += u64::from(sock.snd_wnd());
                    t.cwnd.record(u64::from(sock.cwnd()));
                }
            }
        }
        if any {
            t.snd_wnd.set_at(wnd_sum, now_ns);
        }
    }

    /// Replaces the TCP/IP-boundary filter (installs a bridge).
    pub fn set_filter(&mut self, filter: Box<dyn SegmentFilter>) {
        self.filter = filter;
    }

    /// Installs the host controller (failover logic).
    pub fn set_controller(&mut self, controller: Box<dyn HostController>) {
        self.controller = Some(controller);
    }

    /// Adds an application; returns its index for later access.
    pub fn add_app(&mut self, app: Box<dyn SocketApp>) -> usize {
        self.apps.push(Some(app));
        self.apps.len() - 1
    }

    /// This host's primary IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.net.local_ips[0]
    }

    /// NIC hardware address.
    pub fn mac(&self) -> MacAddr {
        self.net.mac
    }

    /// Network state (promiscuous flag, ARP priming, …).
    pub fn net_mut(&mut self) -> &mut HostNet {
        &mut self.net
    }

    /// The TCP stack (configuration, failover port sets, …).
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }

    /// Immutable stack access.
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    /// Downcast access to an installed app.
    ///
    /// # Panics
    ///
    /// Panics if the index or type is wrong, or if called re-entrantly
    /// from within that same app's `poll`.
    pub fn app_mut<T: SocketApp>(&mut self, index: usize) -> &mut T {
        self.apps[index]
            .as_mut()
            .expect("app is being polled")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    /// Downcast access to the filter (bridge reconfiguration).
    pub fn filter_mut(&mut self) -> &mut dyn SegmentFilter {
        self.filter.as_mut()
    }

    /// Downcast access to the controller.
    pub fn controller_mut<T: HostController>(&mut self) -> &mut T {
        self.controller
            .as_mut()
            .expect("no controller installed")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("controller type mismatch")
    }

    /// Runs `f` with a [`SocketApi`], then pumps the stack so any
    /// produced segments leave immediately. For driving a host from a
    /// test or measurement harness.
    pub fn with_api<R>(&mut self, ctx: &mut Ctx<'_>, f: impl FnOnce(&mut SocketApi<'_>) -> R) -> R {
        let local_ip = self.net.local_ips[0];
        let mut api = SocketApi::new(&mut self.stack, ctx.now(), local_ip);
        let r = f(&mut api);
        self.pump(ctx);
        r
    }

    /// Registers a failover designation with both the stack and the
    /// filter (§7).
    pub fn designate_failover(&mut self, rule: FailoverRule) {
        if let FailoverRule::Port(p) = rule {
            self.stack.add_failover_port(p);
        }
        self.filter.designate(rule);
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    /// Drains a filter output, keeping its allocations for reuse.
    fn dispatch_filter_output(&mut self, output: &mut FilterOutput, ctx: &mut Ctx<'_>) {
        for seg in output.to_wire.drain(..) {
            self.net.send_tcp(seg, ctx);
        }
        for seg in output.to_tcp.drain(..) {
            if self.net.is_local(seg.dst) {
                self.stack.on_segment(&seg, ctx.now());
            }
        }
    }

    /// Runs one segment through the inbound filter using the reused
    /// output scratch.
    fn filter_inbound(&mut self, seg: AddressedSegment, ctx: &mut Ctx<'_>) {
        let mut fo = std::mem::take(&mut self.fout);
        self.filter
            .on_inbound_into(seg, ctx.now().as_nanos(), &mut fo);
        self.dispatch_filter_output(&mut fo, ctx);
        self.fout = fo;
    }

    /// Drains stack output through the filter until quiescent.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..32 {
            for rule in self.stack.take_designations() {
                self.filter.designate(rule);
            }
            let out = self.stack.take_outbox();
            if out.is_empty() {
                return;
            }
            let mut fo = std::mem::take(&mut self.fout);
            for mut seg in out {
                // Stack-originated segments enter the datapath here:
                // give each a causal trace id.
                seg.ensure_trace();
                self.filter
                    .on_outbound_into(seg, ctx.now().as_nanos(), &mut fo);
                self.dispatch_filter_output(&mut fo, ctx);
            }
            self.fout = fo;
        }
        debug_assert!(false, "host pump did not quiesce");
    }

    fn poll_apps(&mut self, ctx: &mut Ctx<'_>) {
        let local_ip = self.net.local_ips[0];
        for i in 0..self.apps.len() {
            let Some(mut app) = self.apps[i].take() else {
                continue;
            };
            {
                let mut api = SocketApi::new(&mut self.stack, ctx.now(), local_ip);
                app.poll(&mut api);
            }
            self.apps[i] = Some(app);
            self.pump(ctx);
        }
    }

    fn run_controller_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(mut controller) = self.controller.take() else {
            return;
        };
        {
            let mut services = HostServices {
                now: ctx.now(),
                net: &mut self.net,
                stack: &mut self.stack,
                filter: self.filter.as_mut(),
                ctx,
            };
            controller.on_tick(&mut services);
        }
        self.controller = Some(controller);
        self.pump(ctx);
    }

    fn run_controller_raw(&mut self, proto: u8, src: Ipv4Addr, payload: &[u8], ctx: &mut Ctx<'_>) {
        let Some(mut controller) = self.controller.take() else {
            return;
        };
        {
            let mut services = HostServices {
                now: ctx.now(),
                net: &mut self.net,
                stack: &mut self.stack,
                filter: self.filter.as_mut(),
                ctx,
            };
            controller.on_raw(proto, src, payload, &mut services);
        }
        self.controller = Some(controller);
        self.pump(ctx);
    }
}

impl Device for Host {
    fn label(&self) -> &str {
        &self.label
    }

    fn handle_frame(&mut self, _port: usize, frame: Bytes, ctx: &mut Ctx<'_>) {
        let Ok(eth) = EthernetFrame::decode(&frame) else {
            return;
        };
        let for_us = eth.dst == self.net.mac || eth.dst.is_broadcast();
        if !for_us && !self.net.promiscuous {
            return;
        }
        match eth.ethertype {
            EtherType::Arp => {
                if let Ok(arp) = ArpPacket::decode(&eth.payload) {
                    // Promiscuously overheard ARP still teaches us
                    // mappings, but we only *answer* requests for our
                    // own addresses (handled inside handle_arp).
                    self.net.handle_arp(&arp, ctx);
                }
            }
            EtherType::Ipv4 => {
                let Ok(pkt) = Ipv4Packet::decode(&eth.payload) else {
                    return;
                };
                self.net.charge_rx(pkt.payload.len(), ctx);
                if pkt.protocol == PROTO_TCP {
                    // A received frame is a datapath entry point (for a
                    // bridge host this is the client-ingress stamp).
                    let mut seg = AddressedSegment::new(pkt.src, pkt.dst, pkt.payload.clone());
                    seg.ensure_trace();
                    self.filter_inbound(seg, ctx);
                } else if self.net.is_local(pkt.dst) {
                    self.run_controller_raw(pkt.protocol, pkt.src, &pkt.payload.clone(), ctx);
                }
            }
            EtherType::Other(_) => {}
        }
        self.pump(ctx);
        self.poll_apps(ctx);
    }

    fn handle_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(token, TOKEN_TICK);
        self.stack.on_tick(ctx.now());
        self.pump(ctx);
        self.run_controller_tick(ctx);
        self.poll_apps(ctx);
        self.filter.on_tick(ctx.now().as_nanos());
        self.publish_telemetry(ctx.now());
        let tick = self.tick;
        ctx.schedule(tick, TOKEN_TICK);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Adds `host` to `sim` and arms its periodic tick.
pub fn spawn_host(sim: &mut Simulator, host: Host) -> NodeId {
    let id = sim.add_device(Box::new(host));
    sim.schedule_timer(id, SimDuration::ZERO, TOKEN_TICK);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::TcpState;
    use crate::types::{SocketAddr, SocketId};
    use tcpfo_net::link::LinkParams;
    use tcpfo_net::router::{Interface, Router};
    use tcpfo_net::sim::Simulator;

    /// A server app that accepts one connection and echoes everything.
    struct EchoServer {
        listener: Option<crate::types::ListenerId>,
        conn: Option<SocketId>,
        port: u16,
        pending: Vec<u8>,
        echoed: u64,
    }

    impl EchoServer {
        fn new(port: u16) -> Self {
            EchoServer {
                listener: None,
                conn: None,
                port,
                pending: Vec::new(),
                echoed: 0,
            }
        }
    }

    impl SocketApp for EchoServer {
        fn poll(&mut self, api: &mut SocketApi<'_>) {
            if self.listener.is_none() {
                self.listener = api.listen(self.port, false).ok();
            }
            if self.conn.is_none() {
                if let Some(l) = self.listener {
                    self.conn = api.accept(l);
                }
            }
            if let Some(c) = self.conn {
                // Flush previously unsent echo bytes first, then read
                // more; partial sends must never drop data.
                if !self.pending.is_empty() {
                    let n = api.send(c, &self.pending).unwrap_or(0);
                    self.pending.drain(..n);
                }
                if self.pending.is_empty() {
                    let data = api.recv(c, 65536).unwrap_or_default();
                    if !data.is_empty() {
                        self.echoed += data.len() as u64;
                        let n = api.send(c, &data).unwrap_or(0);
                        self.pending.extend_from_slice(&data[n..]);
                    }
                }
                if api.peer_closed(c) && self.pending.is_empty() && api.unacked(c) == 0 {
                    let _ = api.close(c);
                }
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A client that connects, sends a message, and collects the echo.
    struct EchoClient {
        server: SocketAddr,
        message: Vec<u8>,
        conn: Option<SocketId>,
        sent: usize,
        received: Vec<u8>,
        done: bool,
    }

    impl EchoClient {
        fn new(server: SocketAddr, message: Vec<u8>) -> Self {
            EchoClient {
                server,
                message,
                conn: None,
                sent: 0,
                received: Vec::new(),
                done: false,
            }
        }
    }

    impl SocketApp for EchoClient {
        fn poll(&mut self, api: &mut SocketApi<'_>) {
            if self.conn.is_none() {
                self.conn = api.connect(self.server, false).ok();
                return;
            }
            let c = self.conn.unwrap();
            if !api.is_established(c) {
                return;
            }
            if self.sent < self.message.len() {
                self.sent += api.send(c, &self.message[self.sent..]).unwrap_or(0);
            }
            let data = api.recv(c, 65536).unwrap_or_default();
            self.received.extend(data);
            if self.received.len() >= self.message.len() && !self.done {
                self.done = true;
                let _ = api.close(c);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);
    const GW_CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    const GW_SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    /// client -- router -- server, dedicated fast-Ethernet links.
    fn routed_pair(loss: f64) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(11);
        let router = sim.add_device(Box::new(Router::new(
            "router",
            vec![
                Interface {
                    mac: MacAddr::from_index(100),
                    ip: GW_CLIENT,
                    prefix_len: 24,
                },
                Interface {
                    mac: MacAddr::from_index(101),
                    ip: GW_SERVER,
                    prefix_len: 24,
                },
            ],
            SimDuration::from_micros(15),
        )));
        let client = spawn_host(
            &mut sim,
            Host::new(
                HostConfig::new("client", MacAddr::from_index(1), CLIENT_IP)
                    .with_gateway(GW_CLIENT)
                    .with_tcp(TcpConfig::default().with_isn_seed(101)),
            ),
        );
        let server = spawn_host(
            &mut sim,
            Host::new(
                HostConfig::new("server", MacAddr::from_index(2), SERVER_IP)
                    .with_gateway(GW_SERVER)
                    .with_tcp(TcpConfig::default().with_isn_seed(202)),
            ),
        );
        sim.connect(
            (router, 0),
            (client, 0),
            LinkParams::fast_ethernet().with_loss(loss),
        );
        sim.connect(
            (router, 1),
            (server, 0),
            LinkParams::fast_ethernet().with_loss(loss),
        );
        (sim, client, server)
    }

    fn run_echo(loss: f64, message_len: usize, deadline_ms: u64) -> (Vec<u8>, Vec<u8>) {
        let (mut sim, client, server) = routed_pair(loss);
        sim.with::<Host, _>(server, |h, _| {
            h.add_app(Box::new(EchoServer::new(80)));
        });
        let message: Vec<u8> = (0..message_len).map(|i| (i % 251) as u8).collect();
        let msg_clone = message.clone();
        sim.with::<Host, _>(client, |h, _| {
            h.add_app(Box::new(EchoClient::new(
                SocketAddr::new(SERVER_IP, 80),
                msg_clone,
            )));
        });
        sim.run_for(SimDuration::from_millis(deadline_ms));
        let received =
            sim.with::<Host, _>(client, |h, _| h.app_mut::<EchoClient>(0).received.clone());
        (message, received)
    }

    #[test]
    fn end_to_end_echo_over_router() {
        let (message, received) = run_echo(0.0, 20_000, 1_000);
        assert_eq!(received, message);
    }

    #[test]
    fn end_to_end_echo_survives_loss() {
        // 2% loss each way; retransmission must recover everything.
        let (message, received) = run_echo(0.02, 60_000, 30_000);
        assert_eq!(received.len(), message.len(), "transfer incomplete");
        assert_eq!(received, message);
    }

    #[test]
    fn connection_refused_on_closed_port() {
        let (mut sim, client, _server) = routed_pair(0.0);
        let conn = sim.with::<Host, _>(client, |h, ctx| {
            h.with_api(ctx, |api| {
                api.connect(SocketAddr::new(SERVER_IP, 4444), false)
                    .unwrap()
            })
        });
        sim.run_for(SimDuration::from_millis(50));
        sim.with::<Host, _>(client, |h, _| {
            let sock = h.stack().socket(conn).unwrap();
            assert_eq!(sock.state, TcpState::Closed);
            assert_eq!(sock.error, Some(crate::socket::SocketError::Reset));
        });
    }

    #[test]
    fn orderly_shutdown_reaches_closed_everywhere() {
        let (mut sim, client, server) = routed_pair(0.0);
        sim.with::<Host, _>(server, |h, _| {
            h.add_app(Box::new(EchoServer::new(80)));
        });
        sim.with::<Host, _>(client, |h, _| {
            h.add_app(Box::new(EchoClient::new(
                SocketAddr::new(SERVER_IP, 80),
                b"farewell".to_vec(),
            )));
        });
        sim.run_for(SimDuration::from_secs(3));
        sim.with::<Host, _>(server, |h, _| {
            let states: Vec<_> = h
                .stack()
                .socket_ids()
                .into_iter()
                .map(|id| h.stack().socket(id).unwrap().state)
                .collect();
            assert!(
                states.iter().all(|s| *s == TcpState::Closed),
                "server states: {states:?}"
            );
        });
    }

    #[test]
    fn promiscuous_host_sees_foreign_frames_filter_drops_them() {
        // A third host on the server LAN in promiscuous mode receives
        // the frames but its NoopFilter output is dropped for being
        // non-local — baseline for the secondary bridge.
        let mut sim = Simulator::new(11);
        let hub = sim.add_device(Box::new(tcpfo_net::hub::Hub::new("hub", 3, 100_000_000)));
        let a = spawn_host(
            &mut sim,
            Host::new(HostConfig::new(
                "a",
                MacAddr::from_index(1),
                Ipv4Addr::new(10, 0, 0, 1),
            )),
        );
        let b = spawn_host(
            &mut sim,
            Host::new(HostConfig::new(
                "b",
                MacAddr::from_index(2),
                Ipv4Addr::new(10, 0, 0, 2),
            )),
        );
        let snoop = spawn_host(
            &mut sim,
            Host::new(
                HostConfig::new("snoop", MacAddr::from_index(3), Ipv4Addr::new(10, 0, 0, 3))
                    .promiscuous(),
            ),
        );
        sim.connect((hub, 0), (a, 0), LinkParams::attachment());
        sim.connect((hub, 1), (b, 0), LinkParams::attachment());
        sim.connect((hub, 2), (snoop, 0), LinkParams::attachment());
        sim.with::<Host, _>(b, |h, _| {
            h.add_app(Box::new(EchoServer::new(80)));
        });
        sim.with::<Host, _>(a, |h, _| {
            h.add_app(Box::new(EchoClient::new(
                SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 80),
                b"sniff me".to_vec(),
            )));
        });
        sim.run_for(SimDuration::from_millis(200));
        sim.with::<Host, _>(a, |h, _| {
            assert_eq!(h.app_mut::<EchoClient>(0).received, b"sniff me");
        });
        // The snooper's stack opened no sockets and dropped everything.
        sim.with::<Host, _>(snoop, |h, _| {
            assert!(h.stack().socket_ids().is_empty());
            assert_eq!(h.stack().rst_sent, 0, "must not RST foreign traffic");
        });
    }
}
