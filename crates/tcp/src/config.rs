//! Stack configuration.

use tcpfo_net::time::SimDuration;

/// Tunables of one host's TCP stack.
///
/// Defaults approximate the paper's testbed software (FreeBSD 4.4-era
/// BSD TCP on 100 Mb/s Ethernet): 1460-byte MSS, 64 KB send buffer
/// (whose effect is visible below ~32 KB messages in Fig. 3), 64 KB
/// receive window, 200 ms minimum RTO, 40 ms delayed-ACK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Maximum segment size advertised in our SYN.
    pub mss: u16,
    /// Send buffer capacity in bytes ("the 64 KByte TCP send buffer",
    /// §9). `send` returns once bytes are accepted here, not when they
    /// hit the wire.
    pub send_buffer: usize,
    /// Receive buffer capacity; bounds the advertised window (capped at
    /// 65535 — no window scaling, as in the paper's era).
    pub recv_buffer: usize,
    /// Minimum retransmission timeout.
    pub rto_min: SimDuration,
    /// Maximum retransmission timeout.
    pub rto_max: SimDuration,
    /// Initial RTO before any RTT sample.
    pub rto_initial: SimDuration,
    /// Delayed-ACK timeout; `None` disables delayed ACKs.
    pub delayed_ack: Option<SimDuration>,
    /// Nagle's algorithm (coalesce sub-MSS writes while data is in
    /// flight).
    pub nagle: bool,
    /// Seed for deterministic initial sequence numbers. Give the
    /// primary and secondary *different* seeds so that `Δseq ≠ 0` and
    /// the bridge's offset machinery is actually exercised.
    pub isn_seed: u64,
    /// First ephemeral port. Replicated stacks must agree so that
    /// server-initiated failover connections (§7.2) pick identical
    /// local ports on P and S.
    pub ephemeral_start: u16,
    /// How long a closed connection lingers in TIME-WAIT.
    pub time_wait: SimDuration,
    /// Enable Reno congestion control; disabling fixes cwnd wide open
    /// (useful for LAN microbenchmarks).
    pub congestion_control: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buffer: 64 * 1024,
            recv_buffer: 64 * 1024 - 1,
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            rto_initial: SimDuration::from_millis(1000),
            delayed_ack: Some(SimDuration::from_millis(40)),
            nagle: true,
            isn_seed: 0,
            ephemeral_start: 49152,
            time_wait: SimDuration::from_millis(1000),
            congestion_control: true,
        }
    }
}

impl TcpConfig {
    /// Returns a copy with the given ISN seed.
    pub fn with_isn_seed(mut self, seed: u64) -> Self {
        self.isn_seed = seed;
        self
    }

    /// Returns a copy with Nagle disabled (small-message latency
    /// benchmarks).
    pub fn without_nagle(mut self) -> Self {
        self.nagle = false;
        self
    }

    /// Advertised window for `free` bytes of receive buffer space.
    pub fn clamp_window(&self, free: usize) -> u16 {
        free.min(self.recv_buffer).min(u16::MAX as usize) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_era() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.send_buffer, 65536);
        assert!(c.nagle);
        assert_eq!(c.rto_min, SimDuration::from_millis(200));
    }

    #[test]
    fn window_clamping() {
        let c = TcpConfig::default();
        assert_eq!(c.clamp_window(0), 0);
        assert_eq!(c.clamp_window(1000), 1000);
        assert_eq!(c.clamp_window(1 << 20), c.recv_buffer as u16);
    }

    #[test]
    fn builder_helpers() {
        let c = TcpConfig::default().with_isn_seed(9).without_nagle();
        assert_eq!(c.isn_seed, 9);
        assert!(!c.nagle);
    }
}
