//! Addressing types shared across the stack and the bridges.

use std::fmt;
use tcpfo_wire::ipv4::Ipv4Addr;

/// An (IP address, TCP port) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates an endpoint.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// The 4-tuple identifying a TCP connection (§7.1: "A TCP connection is
/// uniquely identified by the 4-tuple").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FourTuple {
    /// This host's endpoint.
    pub local: SocketAddr,
    /// The peer's endpoint.
    pub remote: SocketAddr,
}

impl FourTuple {
    /// Creates a 4-tuple.
    pub const fn new(local: SocketAddr, remote: SocketAddr) -> Self {
        FourTuple { local, remote }
    }

    /// The same connection from the peer's perspective.
    pub fn flipped(self) -> FourTuple {
        FourTuple {
            local: self.remote,
            remote: self.local,
        }
    }
}

impl fmt::Display for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<->{}", self.local, self.remote)
    }
}

/// Handle to a connection socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketId(pub usize);

/// Handle to a listening socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerId(pub usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 80);
        let b = SocketAddr::new(Ipv4Addr::new(192, 168, 0, 9), 51000);
        assert_eq!(a.to_string(), "10.0.0.1:80");
        let t = FourTuple::new(a, b);
        assert_eq!(t.to_string(), "10.0.0.1:80<->192.168.0.9:51000");
    }

    #[test]
    fn flipped_is_involution() {
        let a = SocketAddr::new(Ipv4Addr::new(1, 1, 1, 1), 1);
        let b = SocketAddr::new(Ipv4Addr::new(2, 2, 2, 2), 2);
        let t = FourTuple::new(a, b);
        assert_eq!(t.flipped().flipped(), t);
        assert_eq!(t.flipped().local, b);
    }
}
