//! Application interface.
//!
//! Applications (the replicated servers and the clients of the paper's
//! experiments) are level-triggered state machines: the host calls
//! [`SocketApp::poll`] after every network event and clock tick, and
//! the app drives its sockets through the [`SocketApi`]. Determinism of
//! the *application* given the same input stream is the paper's §1
//! requirement for active replication; a poll-style API makes that easy
//! to honour — there are no callbacks whose ordering could diverge
//! between the primary and the secondary.

use crate::socket::{Socket, TcpState};
use crate::stack::{StackError, TcpStack};
use crate::types::{ListenerId, SocketAddr, SocketId};
use std::any::Any;
use tcpfo_net::time::SimTime;
use tcpfo_wire::ipv4::Ipv4Addr;

/// The capability handed to applications on each poll.
pub struct SocketApi<'a> {
    pub(crate) stack: &'a mut TcpStack,
    pub(crate) now: SimTime,
    pub(crate) local_ip: Ipv4Addr,
}

impl<'a> SocketApi<'a> {
    /// Creates an API view over a stack (also used by tests/benches).
    pub fn new(stack: &'a mut TcpStack, now: SimTime, local_ip: Ipv4Addr) -> Self {
        SocketApi {
            stack,
            now,
            local_ip,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This host's primary IP address.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.local_ip
    }

    /// Opens a listener. `failover` is the §7 socket-option method.
    ///
    /// # Errors
    ///
    /// [`StackError::AddrInUse`] if the port is taken.
    pub fn listen(&mut self, port: u16, failover: bool) -> Result<ListenerId, StackError> {
        self.stack.listen(port, failover)
    }

    /// Accepts a pending connection, if any completed the handshake.
    pub fn accept(&mut self, listener: ListenerId) -> Option<SocketId> {
        self.stack.accept(listener)
    }

    /// Starts an active open. `failover` is the §7 socket-option
    /// method for client-side (server-initiated, §7.2) connections.
    ///
    /// # Errors
    ///
    /// [`StackError::PortsExhausted`] if no ephemeral port is free.
    pub fn connect(&mut self, remote: SocketAddr, failover: bool) -> Result<SocketId, StackError> {
        self.stack
            .connect(self.local_ip, remote, failover, self.now)
    }

    /// Active open from a specific local port (FTP active mode uses
    /// port 20 for data connections).
    ///
    /// # Errors
    ///
    /// [`StackError::AddrInUse`] if the 4-tuple is taken.
    pub fn connect_from(
        &mut self,
        local_port: u16,
        remote: SocketAddr,
        failover: bool,
    ) -> Result<SocketId, StackError> {
        self.stack
            .connect_from(self.local_ip, Some(local_port), remote, failover, self.now)
    }

    /// Writes bytes; returns how many were buffered.
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn send(&mut self, id: SocketId, data: &[u8]) -> Result<usize, StackError> {
        self.stack.send(id, data, self.now)
    }

    /// Reads up to `max` bytes.
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn recv(&mut self, id: SocketId, max: usize) -> Result<Vec<u8>, StackError> {
        self.stack.recv(id, max, self.now)
    }

    /// Half-closes the send direction.
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn close(&mut self, id: SocketId) -> Result<(), StackError> {
        self.stack.close(id, self.now)
    }

    /// Aborts with RST.
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn abort(&mut self, id: SocketId) -> Result<(), StackError> {
        self.stack.abort(id, self.now)
    }

    /// Releases a finished socket handle.
    pub fn release(&mut self, id: SocketId) {
        self.stack.release(id, self.now)
    }

    /// Socket state, or `None` for a released handle.
    pub fn state(&self, id: SocketId) -> Option<TcpState> {
        self.stack.socket(id).map(|s| s.state)
    }

    /// Immutable socket view (counters, establishment, …).
    pub fn socket(&self, id: SocketId) -> Option<&Socket> {
        self.stack.socket(id)
    }

    /// `true` once the connection is usable for data.
    pub fn is_established(&self, id: SocketId) -> bool {
        self.stack
            .socket(id)
            .map(|s| s.is_established())
            .unwrap_or(false)
    }

    /// Bytes readable right now.
    pub fn recv_available(&self, id: SocketId) -> usize {
        self.stack
            .socket(id)
            .map(|s| s.recv_available())
            .unwrap_or(0)
    }

    /// Free send-buffer space.
    pub fn send_space(&self, id: SocketId) -> usize {
        self.stack.socket(id).map(|s| s.send_space()).unwrap_or(0)
    }

    /// Bytes written but not yet acknowledged end-to-end.
    pub fn unacked(&self, id: SocketId) -> usize {
        self.stack.socket(id).map(|s| s.unacked()).unwrap_or(0)
    }

    /// `true` when the peer has closed and all its data was read.
    pub fn peer_closed(&self, id: SocketId) -> bool {
        self.stack
            .socket(id)
            .map(|s| s.peer_closed())
            .unwrap_or(true)
    }
}

/// A deterministic, poll-driven application.
pub trait SocketApp: 'static {
    /// Advances the application; called after every event on the host.
    /// Implementations must be idempotent when nothing changed.
    fn poll(&mut self, api: &mut SocketApi<'_>);

    /// Downcast access for tests and measurements.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcpConfig;

    struct Probe {
        polled: u32,
    }

    impl SocketApp for Probe {
        fn poll(&mut self, api: &mut SocketApi<'_>) {
            self.polled += 1;
            assert_eq!(api.local_ip(), Ipv4Addr::new(9, 9, 9, 9));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn api_wraps_stack_operations() {
        let mut stack = TcpStack::new(TcpConfig::default());
        let mut api = SocketApi::new(&mut stack, SimTime::ZERO, Ipv4Addr::new(9, 9, 9, 9));
        let l = api.listen(80, false).unwrap();
        assert!(api.accept(l).is_none());
        let id = api
            .connect(SocketAddr::new(Ipv4Addr::new(1, 1, 1, 1), 80), false)
            .unwrap();
        assert!(!api.is_established(id));
        assert_eq!(api.state(id), Some(TcpState::SynSent));
        assert_eq!(api.recv_available(id), 0);
        let mut probe = Probe { polled: 0 };
        probe.poll(&mut api);
        assert_eq!(probe.polled, 1);
    }
}
