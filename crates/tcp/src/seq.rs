//! Wrapping 32-bit sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a circle of size 2³². All comparisons are
//! relative: `a` is "before" `b` when the signed distance from `a` to
//! `b` is positive. The failover bridge leans on this arithmetic
//! everywhere — the Δseq offset between the two replicas' sequence
//! spaces is itself a wrapping difference (§3.3 of the paper).

/// Signed distance from `a` to `b` on the sequence circle.
#[inline]
pub fn seq_diff(b: u32, a: u32) -> i32 {
    b.wrapping_sub(a) as i32
}

/// `a < b` in sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    seq_diff(b, a) > 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    seq_diff(b, a) >= 0
}

/// `a > b` in sequence space.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_diff(a, b) > 0
}

/// `a >= b` in sequence space.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    seq_diff(a, b) >= 0
}

/// The earlier of two sequence numbers.
#[inline]
pub fn seq_min(a: u32, b: u32) -> u32 {
    if seq_le(a, b) {
        a
    } else {
        b
    }
}

/// The later of two sequence numbers.
#[inline]
pub fn seq_max(a: u32, b: u32) -> u32 {
    if seq_ge(a, b) {
        a
    } else {
        b
    }
}

/// `low <= x < high` on the circle (the RFC 793 window test).
#[inline]
pub fn seq_in_window(x: u32, low: u32, high: u32) -> bool {
    seq_le(low, x) && seq_lt(x, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_ordering() {
        assert!(seq_lt(1, 2));
        assert!(seq_le(2, 2));
        assert!(seq_gt(2, 1));
        assert!(seq_ge(2, 2));
        assert!(!seq_lt(2, 1));
    }

    #[test]
    fn wraparound_ordering() {
        // 0xffff_fff0 is "before" 0x10 (it wrapped).
        assert!(seq_lt(0xffff_fff0, 0x10));
        assert!(seq_gt(0x10, 0xffff_fff0));
        assert_eq!(seq_diff(0x10, 0xffff_fff0), 0x20);
        assert_eq!(seq_min(0xffff_fff0, 0x10), 0xffff_fff0);
        assert_eq!(seq_max(0xffff_fff0, 0x10), 0x10);
    }

    #[test]
    fn window_test_wraps() {
        assert!(seq_in_window(0x5, 0xffff_fffa, 0x10));
        assert!(seq_in_window(0xffff_fffb, 0xffff_fffa, 0x10));
        assert!(!seq_in_window(0x10, 0xffff_fffa, 0x10));
        assert!(!seq_in_window(0xffff_fff0, 0xffff_fffa, 0x10));
    }

    proptest! {
        /// Shifting both operands by any offset preserves ordering —
        /// this is exactly why the bridge's Δseq normalisation is sound.
        #[test]
        fn prop_shift_invariance(a in any::<u32>(), b in any::<u32>(), shift in any::<u32>()) {
            // Only meaningful when the distance is well inside the
            // signed range (real windows are tiny compared to 2^31).
            prop_assume!(seq_diff(b, a).unsigned_abs() < 1 << 30);
            prop_assert_eq!(
                seq_lt(a, b),
                seq_lt(a.wrapping_add(shift), b.wrapping_add(shift))
            );
            prop_assert_eq!(
                seq_diff(b, a),
                seq_diff(b.wrapping_add(shift), a.wrapping_add(shift))
            );
        }

        /// min/max are consistent with the ordering predicates.
        #[test]
        fn prop_min_max(a in any::<u32>(), b in any::<u32>()) {
            prop_assume!(seq_diff(b, a).unsigned_abs() < 1 << 30);
            let lo = seq_min(a, b);
            let hi = seq_max(a, b);
            prop_assert!(seq_le(lo, hi));
            prop_assert!(lo == a || lo == b);
            prop_assert!(hi == a || hi == b);
        }
    }
}
