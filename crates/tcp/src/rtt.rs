//! Retransmission-timeout estimation (Jacobson/Karels, with Karn's
//! rule applied by the caller: no samples from retransmitted data).

use tcpfo_net::time::SimDuration;

/// Smoothed RTT state and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT, `None` until the first sample.
    srtt: Option<SimDuration>,
    /// RTT variance estimate.
    rttvar: SimDuration,
    rto: SimDuration,
    rto_min: SimDuration,
    rto_max: SimDuration,
    /// Exponential back-off multiplier (power of two), reset on a new
    /// sample.
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given bounds and initial RTO.
    pub fn new(initial: SimDuration, rto_min: SimDuration, rto_max: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial,
            rto_min,
            rto_max,
            backoff: 0,
        }
    }

    /// Feeds a round-trip sample from a *non-retransmitted* segment.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = SimDuration::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
        self.backoff = 0;
        self.recompute();
    }

    fn recompute(&mut self) {
        let srtt = self.srtt.unwrap_or(self.rto);
        let base = srtt + self.rttvar.saturating_mul(4);
        let backed = base.saturating_mul(1 << self.backoff.min(16));
        self.rto = backed.max(self.rto_min).min(self.rto_max);
    }

    /// Doubles the RTO after a retransmission timeout (Karn).
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
        self.recompute();
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(1000),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn first_sample_initialises() {
        let mut e = est();
        assert!(e.srtt().is_none());
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = SRTT + 4*RTTVAR = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn rto_respects_minimum() {
        let mut e = est();
        for _ in 0..20 {
            e.sample(SimDuration::from_micros(200)); // LAN-fast RTT
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn steady_samples_converge() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 80).abs() <= 1, "srtt={srtt}");
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100)); // RTO 300ms
        e.back_off();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.back_off();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        e.sample(SimDuration::from_millis(100));
        assert!(e.rto() < SimDuration::from_millis(600));
    }

    #[test]
    fn rto_capped_at_max() {
        let mut e = est();
        for _ in 0..40 {
            e.back_off();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }
}
