//! The per-host TCP stack: demultiplexing, listeners, port and ISN
//! allocation, and the outbox feeding the TCP/IP-boundary filter.
//!
//! The stack is deliberately I/O-free: segments arrive through
//! [`TcpStack::on_segment`] and leave through [`TcpStack::take_outbox`];
//! the [`crate::host::Host`] device moves them through the
//! [`crate::filter::SegmentFilter`] and the IP layer.

use crate::config::TcpConfig;
use crate::filter::{AddressedSegment, FailoverRule};
use crate::socket::{Socket, TcpState};
use crate::types::{FourTuple, ListenerId, SocketAddr, SocketId};
use std::collections::{HashMap, HashSet, VecDeque};
use tcpfo_net::time::SimTime;
use tcpfo_wire::ipv4::Ipv4Addr;
use tcpfo_wire::tcp::{verify_segment_checksum, TcpFlags, TcpSegment};

/// Errors returned by stack API calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// The port is already bound by a listener.
    AddrInUse,
    /// No ephemeral ports are available.
    PortsExhausted,
    /// The socket handle does not refer to a live socket.
    BadSocket,
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::AddrInUse => f.write_str("address already in use"),
            StackError::PortsExhausted => f.write_str("ephemeral ports exhausted"),
            StackError::BadSocket => f.write_str("invalid socket handle"),
        }
    }
}

impl std::error::Error for StackError {}

/// A passive-open endpoint with its accept backlog.
#[derive(Debug)]
struct Listener {
    port: u16,
    backlog: VecDeque<SocketId>,
    failover: bool,
}

/// Deterministic ISN: a hash of the stack seed and the 4-tuple, so a
/// replica deterministically re-derives the same ISN for the same
/// connection regardless of arrival interleaving — while replicas with
/// *different* seeds produce different ISNs (giving a non-trivial
/// `Δseq` for the bridge to compensate, §3.3).
fn initial_sequence(seed: u64, tuple: &FourTuple) -> u32 {
    let mut x = seed
        ^ (u64::from(u32::from(tuple.local.ip)) << 32)
        ^ (u64::from(u32::from(tuple.remote.ip)))
        ^ (u64::from(tuple.local.port) << 48)
        ^ (u64::from(tuple.remote.port) << 16);
    // splitmix64 finaliser.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x as u32
}

/// The TCP stack of one host.
///
/// # Example
///
/// ```
/// use tcpfo_net::time::SimTime;
/// use tcpfo_tcp::config::TcpConfig;
/// use tcpfo_tcp::stack::TcpStack;
/// use tcpfo_tcp::types::SocketAddr;
/// use tcpfo_wire::ipv4::Ipv4Addr;
///
/// // Two stacks wired back to back (no simulator needed for a demo).
/// let now = SimTime::ZERO;
/// let (a_ip, b_ip) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
/// let mut server = TcpStack::new(TcpConfig::default().with_isn_seed(1));
/// let listener = server.listen(80, false)?;
/// let mut client = TcpStack::new(TcpConfig::default().with_isn_seed(2));
/// let conn = client.connect(a_ip, SocketAddr::new(b_ip, 80), false, now)?;
/// // Shuttle segments until the handshake settles.
/// for _ in 0..8 {
///     for seg in client.take_outbox() { server.on_segment(&seg, now); }
///     for seg in server.take_outbox() { client.on_segment(&seg, now); }
/// }
/// assert!(client.socket(conn).unwrap().is_established());
/// assert!(server.accept(listener).is_some());
/// # Ok::<(), tcpfo_tcp::stack::StackError>(())
/// ```
pub struct TcpStack {
    cfg: TcpConfig,
    sockets: Vec<Option<Socket>>,
    demux: HashMap<FourTuple, usize>,
    listeners: Vec<Option<Listener>>,
    next_ephemeral: u16,
    outbox: Vec<AddressedSegment>,
    /// Ports designated for failover by configuration (§7 method 2).
    failover_ports: HashSet<u16>,
    /// Designations newly made via the socket option (§7 method 1),
    /// drained by the host into the filter. A failover *listener*
    /// designates its port (the bridges must recognise SYNs before any
    /// socket exists); a failover *connect* designates its 4-tuple.
    pub(crate) pending_designations: Vec<FailoverRule>,
    /// Segments dropped due to bad checksums (observability — a bridge
    /// bug would show up here first).
    pub checksum_drops: u64,
    /// Segments that matched no socket and were answered with RST.
    pub rst_sent: u64,
    /// Retransmits carried by sockets that have since been reaped, so
    /// [`TcpStack::total_retransmits`] never goes backwards.
    retired_retransmits: u64,
    /// RTO expiries carried by reaped sockets.
    retired_rto_expiries: u64,
}

impl TcpStack {
    /// Creates a stack.
    pub fn new(cfg: TcpConfig) -> Self {
        let next_ephemeral = cfg.ephemeral_start;
        TcpStack {
            cfg,
            sockets: Vec::new(),
            demux: HashMap::new(),
            listeners: Vec::new(),
            next_ephemeral,
            outbox: Vec::new(),
            failover_ports: HashSet::new(),
            pending_designations: Vec::new(),
            checksum_drops: 0,
            rst_sent: 0,
            retired_retransmits: 0,
            retired_rto_expiries: 0,
        }
    }

    /// The stack's configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Adds `port` to the failover port set (§7 method 2). The same
    /// set must be configured on the primary and the secondary.
    pub fn add_failover_port(&mut self, port: u16) {
        self.failover_ports.insert(port);
    }

    /// Whether `port` is in the failover port set.
    pub fn is_failover_port(&self, port: u16) -> bool {
        self.failover_ports.contains(&port)
    }

    // ---------------------------------------------------------------
    // Socket API
    // ---------------------------------------------------------------

    /// Opens a listener on `port`. With `failover`, every accepted
    /// connection is designated a failover connection (§7 method 1).
    ///
    /// # Errors
    ///
    /// [`StackError::AddrInUse`] if the port is already listening.
    pub fn listen(&mut self, port: u16, failover: bool) -> Result<ListenerId, StackError> {
        if self.listeners.iter().flatten().any(|l| l.port == port) {
            return Err(StackError::AddrInUse);
        }
        if failover {
            // The socket option on a listening socket designates every
            // connection it will accept — the bridges must treat the
            // port as a failover port from this moment (the secondary
            // has to claim the very first client SYN).
            self.pending_designations.push(FailoverRule::Port(port));
            self.failover_ports.insert(port);
        }
        self.listeners.push(Some(Listener {
            port,
            backlog: VecDeque::new(),
            failover,
        }));
        Ok(ListenerId(self.listeners.len() - 1))
    }

    /// Dequeues an established connection from a listener's backlog.
    pub fn accept(&mut self, listener: ListenerId) -> Option<SocketId> {
        let l = self.listeners.get_mut(listener.0)?.as_mut()?;
        // Only hand out connections that completed the handshake.
        let pos = l.backlog.iter().position(|sid| {
            self.sockets
                .get(sid.0)
                .and_then(|s| s.as_ref())
                .map(|s| s.is_established())
                .unwrap_or(false)
        })?;
        l.backlog.remove(pos)
    }

    /// Initiates an active open from `local_ip` to `remote`.
    ///
    /// # Errors
    ///
    /// [`StackError::PortsExhausted`] when no ephemeral port is free.
    pub fn connect(
        &mut self,
        local_ip: Ipv4Addr,
        remote: SocketAddr,
        failover: bool,
        now: SimTime,
    ) -> Result<SocketId, StackError> {
        self.connect_from(local_ip, None, remote, failover, now)
    }

    /// Initiates an active open binding a specific local port (e.g.
    /// FTP's active-mode data connections originate from port 20).
    /// `None` allocates a deterministic ephemeral port.
    ///
    /// # Errors
    ///
    /// [`StackError::AddrInUse`] if the explicit 4-tuple is taken;
    /// [`StackError::PortsExhausted`] when no ephemeral port is free.
    pub fn connect_from(
        &mut self,
        local_ip: Ipv4Addr,
        local_port: Option<u16>,
        remote: SocketAddr,
        failover: bool,
        now: SimTime,
    ) -> Result<SocketId, StackError> {
        let port = match local_port {
            Some(p) => {
                let tuple = FourTuple::new(SocketAddr::new(local_ip, p), remote);
                if self.demux.contains_key(&tuple) {
                    return Err(StackError::AddrInUse);
                }
                p
            }
            None => self.alloc_ephemeral(local_ip, remote)?,
        };
        let tuple = FourTuple::new(SocketAddr::new(local_ip, port), remote);
        let iss = initial_sequence(self.cfg.isn_seed, &tuple);
        let mut sock = Socket::client(tuple, iss, &self.cfg);
        // Server-initiated failover connections (§7.2) are designated
        // by *our* port (e.g. FTP data port 20); outbound connections
        // to a replicated service by the remote port.
        let designated = failover
            || self.failover_ports.contains(&remote.port)
            || self.failover_ports.contains(&port);
        sock.failover = designated;
        if designated {
            self.pending_designations.push(FailoverRule::Tuple(tuple));
        }
        let id = self.insert_socket(sock);
        self.run_output(id, now);
        Ok(id)
    }

    /// Adopts a mid-connection flow from a reprovisioning handoff (PR9
    /// chain catch-up): the socket is synthesised `Established` at the
    /// snapshot's sequence positions — no handshake, no SYN on the
    /// wire — and designated for failover so the local bridge diverts
    /// everything it produces.
    ///
    /// # Errors
    ///
    /// [`StackError::AddrInUse`] if the 4-tuple is already tracked.
    pub fn adopt(
        &mut self,
        local: SocketAddr,
        remote: SocketAddr,
        snd_nxt: u32,
        rcv_nxt: u32,
        peer_mss: u16,
        peer_wnd: u16,
    ) -> Result<SocketId, StackError> {
        let tuple = FourTuple::new(local, remote);
        if self.demux.contains_key(&tuple) {
            return Err(StackError::AddrInUse);
        }
        let sock = Socket::adopted(tuple, snd_nxt, rcv_nxt, peer_mss, peer_wnd, &self.cfg);
        self.pending_designations.push(FailoverRule::Tuple(tuple));
        Ok(self.insert_socket(sock))
    }

    /// Writes bytes; returns how many were accepted into the send
    /// buffer (the paper's §9 send-call semantics).
    pub fn send(&mut self, id: SocketId, data: &[u8], now: SimTime) -> Result<usize, StackError> {
        let sock = self.socket_mut(id)?;
        let n = sock.send(data);
        self.run_output(id, now);
        Ok(n)
    }

    /// Reads up to `max` bytes of in-order data.
    pub fn recv(&mut self, id: SocketId, max: usize, now: SimTime) -> Result<Vec<u8>, StackError> {
        let cfg = self.cfg.clone();
        let sock = self.socket_mut(id)?;
        let data = sock.recv(max, &cfg);
        self.run_output(id, now); // may emit a window update
        Ok(data)
    }

    /// Half-closes the send direction (FIN after queued data).
    pub fn close(&mut self, id: SocketId, now: SimTime) -> Result<(), StackError> {
        self.socket_mut(id)?.close();
        self.run_output(id, now);
        Ok(())
    }

    /// Aborts with RST.
    pub fn abort(&mut self, id: SocketId, now: SimTime) -> Result<(), StackError> {
        self.socket_mut(id)?.abort();
        self.run_output(id, now);
        self.reap(id);
        Ok(())
    }

    /// Releases a socket handle the application is done with. Closed
    /// and TIME-WAIT sockets are reaped silently; live ones are
    /// aborted (RST) first.
    pub fn release(&mut self, id: SocketId, now: SimTime) {
        if let Ok(sock) = self.socket_mut(id) {
            if !matches!(sock.state, TcpState::Closed | TcpState::TimeWait) {
                sock.abort();
                self.run_output(id, now);
            }
        }
        self.reap(id);
    }

    /// Immutable access to a socket (state queries).
    pub fn socket(&self, id: SocketId) -> Option<&Socket> {
        self.sockets.get(id.0).and_then(|s| s.as_ref())
    }

    fn socket_mut(&mut self, id: SocketId) -> Result<&mut Socket, StackError> {
        self.sockets
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(StackError::BadSocket)
    }

    /// Iterates over the ids of all live sockets.
    pub fn socket_ids(&self) -> Vec<SocketId> {
        self.sockets
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| SocketId(i)))
            .collect()
    }

    // ---------------------------------------------------------------
    // Segment input / timers / outbox
    // ---------------------------------------------------------------

    /// Processes a TCP segment addressed to this stack. The checksum is
    /// verified against the addressed pair (bridge-patched segments must
    /// still verify — this catches incremental-checksum bugs).
    pub fn on_segment(&mut self, seg: &AddressedSegment, now: SimTime) {
        if !verify_segment_checksum(seg.src, seg.dst, &seg.bytes) {
            self.checksum_drops += 1;
            return;
        }
        let Ok(parsed) = TcpSegment::decode(&seg.bytes) else {
            self.checksum_drops += 1;
            return;
        };
        let tuple = FourTuple::new(
            SocketAddr::new(seg.dst, parsed.dst_port),
            SocketAddr::new(seg.src, parsed.src_port),
        );
        if let Some(&idx) = self.demux.get(&tuple) {
            let id = SocketId(idx);
            if let Some(sock) = self.sockets[idx].as_mut() {
                sock.on_segment(&parsed, now, &self.cfg);
                self.run_output(id, now);
                self.maybe_undemux(id);
            }
            return;
        }
        // New connection?
        if parsed.flags.contains(TcpFlags::SYN) && !parsed.flags.contains(TcpFlags::ACK) {
            let listener_info = self
                .listeners
                .iter()
                .enumerate()
                .find(|(_, l)| l.as_ref().is_some_and(|l| l.port == parsed.dst_port))
                .map(|(i, l)| (i, l.as_ref().unwrap().failover));
            if let Some((lidx, l_failover)) = listener_info {
                let iss = initial_sequence(self.cfg.isn_seed, &tuple);
                let mut sock = Socket::server(tuple, iss, &parsed, &self.cfg);
                let designated = l_failover || self.failover_ports.contains(&parsed.dst_port);
                sock.failover = designated;
                if designated {
                    self.pending_designations.push(FailoverRule::Tuple(tuple));
                }
                let id = self.insert_socket(sock);
                self.listeners[lidx].as_mut().unwrap().backlog.push_back(id);
                self.run_output(id, now);
                return;
            }
        }
        // No socket, no listener: RST (RFC 793), unless it is an RST.
        if !parsed.flags.contains(TcpFlags::RST) {
            self.rst_sent += 1;
            let mut b = TcpSegment::builder(parsed.dst_port, parsed.src_port).flags(TcpFlags::RST);
            if parsed.flags.contains(TcpFlags::ACK) {
                b = b.seq(parsed.ack);
            } else {
                b = b.ack(parsed.seq.wrapping_add(parsed.seq_len()));
            }
            let rst = b.build();
            let bytes = rst.encode(seg.dst, seg.src);
            self.outbox
                .push(AddressedSegment::new(seg.dst, seg.src, bytes));
        }
    }

    /// Fires due timers on every socket.
    pub fn on_tick(&mut self, now: SimTime) {
        for idx in 0..self.sockets.len() {
            if self.sockets[idx].is_some() {
                let id = SocketId(idx);
                if let Some(sock) = self.sockets[idx].as_mut() {
                    sock.on_tick(now, &self.cfg);
                }
                self.run_output(id, now);
                self.maybe_undemux(id);
            }
        }
    }

    /// Takes every segment the stack wants transmitted.
    pub fn take_outbox(&mut self) -> Vec<AddressedSegment> {
        std::mem::take(&mut self.outbox)
    }

    /// Takes newly made designations (socket-option method).
    pub fn take_designations(&mut self) -> Vec<FailoverRule> {
        std::mem::take(&mut self.pending_designations)
    }

    /// Re-keys every *failover* socket bound to `old` onto `new`.
    ///
    /// This is the clarified final step of IP takeover (§5): after the
    /// secondary takes over `a_p`, its TCBs — keyed by `a_s` while the
    /// bridge translated addresses — must answer to `a_p`. On the wire
    /// nothing changes: sequence numbers, ACKs and windows are already
    /// the ones the client has seen all along.
    pub fn rebind_local_ip(&mut self, old: Ipv4Addr, new: Ipv4Addr) -> usize {
        let mut rebound = 0;
        let mut updates = Vec::new();
        for (tuple, &idx) in &self.demux {
            if tuple.local.ip == old {
                if let Some(sock) = self.sockets[idx].as_ref() {
                    if sock.failover {
                        updates.push((*tuple, idx));
                    }
                }
            }
        }
        for (old_tuple, idx) in updates {
            self.demux.remove(&old_tuple);
            let mut new_tuple = old_tuple;
            new_tuple.local.ip = new;
            if let Some(sock) = self.sockets[idx].as_mut() {
                sock.tuple = new_tuple;
            }
            self.demux.insert(new_tuple, idx);
            rebound += 1;
        }
        rebound
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn insert_socket(&mut self, sock: Socket) -> SocketId {
        let tuple = sock.tuple;
        let idx = self
            .sockets
            .iter()
            .position(|s| s.is_none())
            .unwrap_or_else(|| {
                self.sockets.push(None);
                self.sockets.len() - 1
            });
        self.sockets[idx] = Some(sock);
        self.demux.insert(tuple, idx);
        SocketId(idx)
    }

    /// Runs the socket's output routine and encodes results into the
    /// outbox.
    fn run_output(&mut self, id: SocketId, now: SimTime) {
        let Some(sock) = self.sockets.get_mut(id.0).and_then(|s| s.as_mut()) else {
            return;
        };
        let mut segs = Vec::new();
        sock.output(now, &self.cfg, &mut segs);
        let (src, dst) = (sock.tuple.local.ip, sock.tuple.remote.ip);
        for seg in segs {
            let bytes = seg.encode(src, dst);
            self.outbox.push(AddressedSegment::new(src, dst, bytes));
        }
    }

    /// Removes the demux entry once a socket is fully closed so the
    /// tuple can be reused; the socket object stays until released.
    fn maybe_undemux(&mut self, id: SocketId) {
        if let Some(sock) = self.sockets.get(id.0).and_then(|s| s.as_ref()) {
            if sock.state == TcpState::Closed {
                self.demux.remove(&sock.tuple);
            }
        }
    }

    fn reap(&mut self, id: SocketId) {
        if let Some(Some(sock)) = self.sockets.get(id.0) {
            self.retired_retransmits += sock.retransmits;
            self.retired_rto_expiries += sock.rto_expiries;
            self.demux.remove(&sock.tuple);
            self.sockets[id.0] = None;
        }
    }

    /// Segments retransmitted across all sockets, including ones that
    /// have since been released (monotone over the stack's lifetime).
    pub fn total_retransmits(&self) -> u64 {
        self.retired_retransmits
            + self
                .sockets
                .iter()
                .flatten()
                .map(|s| s.retransmits)
                .sum::<u64>()
    }

    /// Retransmission-timer expiries across all sockets, including
    /// released ones (monotone over the stack's lifetime).
    pub fn total_rto_expiries(&self) -> u64 {
        self.retired_rto_expiries
            + self
                .sockets
                .iter()
                .flatten()
                .map(|s| s.rto_expiries)
                .sum::<u64>()
    }

    fn alloc_ephemeral(
        &mut self,
        local_ip: Ipv4Addr,
        remote: SocketAddr,
    ) -> Result<u16, StackError> {
        let start = self.next_ephemeral;
        loop {
            let port = self.next_ephemeral;
            self.next_ephemeral = if port == u16::MAX {
                self.cfg.ephemeral_start
            } else {
                port + 1
            };
            let tuple = FourTuple::new(SocketAddr::new(local_ip, port), remote);
            if !self.demux.contains_key(&tuple) {
                return Ok(port);
            }
            if self.next_ephemeral == start {
                return Err(StackError::PortsExhausted);
            }
        }
    }

    /// Test/bench helper: delivers a raw already-encoded segment.
    pub fn inject(&mut self, src: Ipv4Addr, dst: Ipv4Addr, seg: &TcpSegment, now: SimTime) {
        let bytes = seg.encode(src, dst);
        self.on_segment(&AddressedSegment::new(src, dst, bytes), now);
    }

    /// Test helper: the parsed segments currently in the outbox,
    /// without draining it.
    pub fn peek_outbox(&self) -> Vec<(Ipv4Addr, Ipv4Addr, TcpSegment)> {
        self.outbox
            .iter()
            .map(|s| {
                (
                    s.src,
                    s.dst,
                    TcpSegment::decode(&s.bytes).expect("own segment"),
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for TcpStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStack")
            .field("sockets", &self.sockets.iter().flatten().count())
            .field("listeners", &self.listeners.iter().flatten().count())
            .field("outbox", &self.outbox.len())
            .finish()
    }
}

/// Convenience: is this segment (by ports) on a failover connection
/// according to a port set? Used by bridges configured with method 2.
pub fn port_set_matches(ports: &HashSet<u16>, src_port: u16, dst_port: u16) -> bool {
    ports.contains(&src_port) || ports.contains(&dst_port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::SocketError;
    use bytes::Bytes as B;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn cfg(seed: u64) -> TcpConfig {
        TcpConfig {
            delayed_ack: None,
            nagle: false,
            ..TcpConfig::default().with_isn_seed(seed)
        }
    }

    /// Moves outbox segments from one stack into the other.
    fn exchange(a: &mut TcpStack, b: &mut TcpStack, now: SimTime) {
        for _ in 0..400 {
            let from_a = a.take_outbox();
            let from_b = b.take_outbox();
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for seg in from_a {
                b.on_segment(&seg, now);
            }
            for seg in from_b {
                a.on_segment(&seg, now);
            }
        }
        panic!("exchange did not quiesce");
    }

    fn connected_pair() -> (TcpStack, SocketId, TcpStack, SocketId) {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        let listener = server.listen(80, false).unwrap();
        let mut client = TcpStack::new(cfg(3));
        let cs = client
            .connect(A, SocketAddr::new(B_IP, 80), false, now)
            .unwrap();
        exchange(&mut client, &mut server, now);
        let ss = server.accept(listener).expect("accepted");
        assert!(client.socket(cs).unwrap().is_established());
        assert!(server.socket(ss).unwrap().is_established());
        (client, cs, server, ss)
    }

    #[test]
    fn listen_connect_accept_transfer() {
        let now = SimTime::ZERO;
        let (mut client, cs, mut server, ss) = connected_pair();
        client.send(cs, b"ping", now).unwrap();
        exchange(&mut client, &mut server, now);
        assert_eq!(server.recv(ss, 100, now).unwrap(), b"ping");
        server.send(ss, b"pong", now).unwrap();
        exchange(&mut client, &mut server, now);
        assert_eq!(client.recv(cs, 100, now).unwrap(), b"pong");
    }

    #[test]
    fn duplicate_listen_rejected() {
        let mut s = TcpStack::new(cfg(1));
        s.listen(80, false).unwrap();
        assert_eq!(s.listen(80, false).unwrap_err(), StackError::AddrInUse);
        s.listen(81, false).unwrap();
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        let mut client = TcpStack::new(cfg(3));
        let cs = client
            .connect(A, SocketAddr::new(B_IP, 9999), false, now)
            .unwrap();
        exchange(&mut client, &mut server, now);
        assert_eq!(server.rst_sent, 1);
        let sock = client.socket(cs).unwrap();
        assert_eq!(sock.state, TcpState::Closed);
        assert_eq!(sock.error, Some(SocketError::Reset));
    }

    #[test]
    fn checksum_corruption_dropped() {
        let now = SimTime::ZERO;
        let (mut client, _cs, mut server, _ss) = connected_pair();
        client.send(SocketId(0), b"data", now).unwrap();
        let mut segs = client.take_outbox();
        assert_eq!(segs.len(), 1);
        let mut corrupted = segs[0].bytes.to_vec();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        segs[0].bytes = corrupted.into();
        server.on_segment(&segs[0], now);
        assert_eq!(server.checksum_drops, 1);
    }

    #[test]
    fn deterministic_isns_differ_across_seeds() {
        let t = FourTuple::new(SocketAddr::new(A, 1000), SocketAddr::new(B_IP, 80));
        assert_eq!(initial_sequence(1, &t), initial_sequence(1, &t));
        assert_ne!(initial_sequence(1, &t), initial_sequence(2, &t));
        let t2 = FourTuple::new(SocketAddr::new(A, 1001), SocketAddr::new(B_IP, 80));
        assert_ne!(initial_sequence(1, &t), initial_sequence(1, &t2));
    }

    #[test]
    fn ephemeral_ports_deterministic_across_replicas() {
        // Two stacks with the same ephemeral_start allocate the same
        // ports for the same sequence of connects — required for
        // server-initiated failover connections (§7.2).
        let now = SimTime::ZERO;
        let mut p = TcpStack::new(cfg(1));
        let mut s = TcpStack::new(cfg(2));
        for _ in 0..5 {
            let a = p
                .connect(A, SocketAddr::new(B_IP, 5432), false, now)
                .unwrap();
            let b = s
                .connect(B_IP, SocketAddr::new(A, 5432), false, now)
                .unwrap();
            assert_eq!(
                p.socket(a).unwrap().tuple.local.port,
                s.socket(b).unwrap().tuple.local.port
            );
        }
    }

    #[test]
    fn failover_designation_via_port_set() {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        server.add_failover_port(80);
        server.listen(80, false).unwrap();
        let mut client = TcpStack::new(cfg(3));
        client
            .connect(A, SocketAddr::new(B_IP, 80), false, now)
            .unwrap();
        exchange(&mut client, &mut server, now);
        let des = server.take_designations();
        assert_eq!(des.len(), 1);
        assert!(matches!(des[0], FailoverRule::Tuple(t) if t.local.port == 80));
    }

    #[test]
    fn failover_designation_via_socket_option() {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        server.listen(443, true).unwrap(); // listener opts in
        let mut client = TcpStack::new(cfg(3));
        let cs = client
            .connect(A, SocketAddr::new(B_IP, 443), true, now) // client opts in
            .unwrap();
        assert_eq!(client.take_designations().len(), 1);
        exchange(&mut client, &mut server, now);
        // The listener designated its port at listen() time, and the
        // accepted connection adds its tuple.
        let des = server.take_designations();
        assert_eq!(des.len(), 2, "{des:?}");
        assert!(matches!(des[0], FailoverRule::Port(443)));
        assert!(matches!(des[1], FailoverRule::Tuple(_)));
        assert!(client.socket(cs).unwrap().failover);
    }

    #[test]
    fn orderly_close_and_tuple_reuse() {
        let now = SimTime::ZERO;
        let (mut client, cs, mut server, ss) = connected_pair();
        client.close(cs, now).unwrap();
        exchange(&mut client, &mut server, now);
        server.close(ss, now).unwrap();
        exchange(&mut client, &mut server, now);
        assert_eq!(server.socket(ss).unwrap().state, TcpState::Closed);
        assert_eq!(client.socket(cs).unwrap().state, TcpState::TimeWait);
        // TIME-WAIT expiry frees the tuple.
        let later = now + client.config().time_wait + tcpfo_net::time::SimDuration::from_millis(2);
        client.on_tick(later);
        assert_eq!(client.socket(cs).unwrap().state, TcpState::Closed);
        assert!(client.demux.is_empty());
    }

    #[test]
    fn rebind_local_ip_moves_only_failover_sockets() {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        server.listen(80, true).unwrap(); // failover
        server.listen(81, false).unwrap(); // plain
        let mut client = TcpStack::new(cfg(3));
        let c1 = client
            .connect(A, SocketAddr::new(B_IP, 80), false, now)
            .unwrap();
        let c2 = client
            .connect(A, SocketAddr::new(B_IP, 81), false, now)
            .unwrap();
        exchange(&mut client, &mut server, now);
        let new_ip = Ipv4Addr::new(10, 0, 0, 99);
        let moved = server.rebind_local_ip(B_IP, new_ip);
        assert_eq!(moved, 1, "only the failover socket is re-keyed");
        let _ = (c1, c2);
        let moved_tuples: Vec<_> = server
            .demux
            .keys()
            .filter(|t| t.local.ip == new_ip)
            .collect();
        assert_eq!(moved_tuples.len(), 1);
        assert_eq!(moved_tuples[0].local.port, 80);
    }

    #[test]
    fn release_aborts_live_socket() {
        let now = SimTime::ZERO;
        let (mut client, cs, mut server, ss) = connected_pair();
        client.release(cs, now);
        exchange(&mut client, &mut server, now);
        assert!(client.socket(cs).is_none());
        let sock = server.socket(ss).unwrap();
        assert_eq!(sock.state, TcpState::Closed);
        assert_eq!(sock.error, Some(SocketError::Reset));
    }

    #[test]
    fn inject_and_peek_helpers() {
        let now = SimTime::ZERO;
        let mut server = TcpStack::new(cfg(7));
        server.listen(80, false).unwrap();
        let syn = TcpSegment::builder(5555, 80)
            .seq(9)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(1000)
            .payload(B::new())
            .build();
        server.inject(A, B_IP, &syn, now);
        let out = server.peek_outbox();
        assert_eq!(out.len(), 1);
        assert!(out[0].2.flags.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert_eq!(out[0].2.ack, 10);
    }
}
