#![warn(missing_docs)]

//! # tcpfo-tcp
//!
//! A from-scratch userspace TCP stack over the `tcpfo-net` simulator,
//! built for the *Transparent TCP Connection Failover* (DSN 2003)
//! reproduction.
//!
//! The stack implements the RFC 793 state machine with sliding-window
//! flow control, Reno congestion control, retransmission timeouts
//! (Jacobson/Karels estimation, Karn's rule, exponential backoff), fast
//! retransmit on triple duplicate ACKs, delayed ACKs, Nagle, the MSS
//! option, zero-window probing and TIME-WAIT — the behaviours the
//! paper's bridge must coexist with (§3, §4, §8).
//!
//! The deliberate extension point is [`filter::SegmentFilter`]: every
//! segment crossing the TCP/IP boundary, in either direction, passes
//! through the host's filter. That boundary is exactly where the paper
//! inserts its *bridge* sublayer; `tcpfo-core` provides the primary and
//! secondary bridge implementations.
//!
//! Layering (one [`host::Host`] per simulated machine):
//!
//! * [`app`] — poll-driven deterministic applications ([`app::SocketApp`])
//! * [`stack`] — demux, listeners, ports, ISNs ([`stack::TcpStack`])
//! * [`socket`] — the TCB and state machine ([`socket::Socket`])
//! * [`filter`] — the TCP/IP-boundary hook (the paper's bridge site)
//! * [`host`] — NIC (promiscuous mode), ARP, IP, controller hook
//!
//! Supporting modules: [`buffer`] (send/reassembly buffers), [`seq`]
//! (wrapping sequence arithmetic), [`rtt`] (RTO estimation),
//! [`config`], [`types`].

pub mod app;
pub mod buffer;
pub mod config;
pub mod filter;
pub mod host;
pub mod rtt;
pub mod seq;
pub mod socket;
pub mod stack;
pub mod types;

pub use app::{SocketApi, SocketApp};
pub use config::TcpConfig;
pub use filter::{AddressedSegment, FailoverRule, FilterOutput, NoopFilter, SegmentFilter};
pub use host::{spawn_host, Host, HostConfig, HostController, HostServices};
pub use socket::{Socket, SocketError, TcpState};
pub use stack::{StackError, TcpStack};
pub use types::{FourTuple, ListenerId, SocketAddr, SocketId};
