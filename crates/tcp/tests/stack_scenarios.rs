//! Two-stack scenario tests for behaviours the in-module unit tests do
//! not reach: simultaneous open, asymmetric MSS negotiation, listener
//! backlogs, TIME-WAIT tuple retirement, and mid-stream RST.

use tcpfo_net::time::{SimDuration, SimTime};
use tcpfo_tcp::config::TcpConfig;
use tcpfo_tcp::socket::{SocketError, TcpState};
use tcpfo_tcp::stack::TcpStack;
use tcpfo_tcp::types::SocketAddr;
use tcpfo_wire::ipv4::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn cfg(seed: u64) -> TcpConfig {
    TcpConfig {
        delayed_ack: None,
        nagle: false,
        ..TcpConfig::default().with_isn_seed(seed)
    }
}

fn exchange(a: &mut TcpStack, b: &mut TcpStack, now: SimTime) {
    for _ in 0..500 {
        let fa = a.take_outbox();
        let fb = b.take_outbox();
        if fa.is_empty() && fb.is_empty() {
            return;
        }
        for s in fa {
            b.on_segment(&s, now);
        }
        for s in fb {
            a.on_segment(&s, now);
        }
    }
    panic!("exchange did not quiesce");
}

/// Deliver segments with explicit control: returns (a_out, b_out).
fn tick_both(a: &mut TcpStack, b: &mut TcpStack, now: SimTime) {
    a.on_tick(now);
    b.on_tick(now);
}

#[test]
fn simultaneous_open_establishes() {
    // Both sides actively connect to each other's pre-agreed ports.
    // RFC 793's simultaneous open: SYN crossing SYN.
    let now = SimTime::ZERO;
    let mut a = TcpStack::new(TcpConfig {
        ephemeral_start: 7000,
        ..cfg(1)
    });
    let mut b = TcpStack::new(TcpConfig {
        ephemeral_start: 7000,
        ..cfg(2)
    });
    // Same deterministic ephemeral port (7000) on both sides.
    let ca = a.connect(A, SocketAddr::new(B, 7000), false, now).unwrap();
    let cb = b.connect(B, SocketAddr::new(A, 7000), false, now).unwrap();
    // Cross-deliver the SYNs simultaneously.
    let syn_a = a.take_outbox();
    let syn_b = b.take_outbox();
    for s in syn_b {
        a.on_segment(&s, now);
    }
    for s in syn_a {
        b.on_segment(&s, now);
    }
    exchange(&mut a, &mut b, now);
    assert!(
        a.socket(ca).unwrap().is_established(),
        "a: {:?}",
        a.socket(ca).unwrap().state
    );
    assert!(
        b.socket(cb).unwrap().is_established(),
        "b: {:?}",
        b.socket(cb).unwrap().state
    );
    // Data flows in both directions afterwards.
    a.send(ca, b"from a", now).unwrap();
    b.send(cb, b"from b", now).unwrap();
    exchange(&mut a, &mut b, now);
    assert_eq!(b.recv(cb, 100, now).unwrap(), b"from a");
    assert_eq!(a.recv(ca, 100, now).unwrap(), b"from b");
}

#[test]
fn asymmetric_mss_uses_minimum() {
    let now = SimTime::ZERO;
    let mut server = TcpStack::new(TcpConfig { mss: 700, ..cfg(1) });
    server.listen(80, false).unwrap();
    let mut client = TcpStack::new(TcpConfig {
        mss: 1460,
        ..cfg(2)
    });
    let cs = client
        .connect(A, SocketAddr::new(B, 80), false, now)
        .unwrap();
    exchange(&mut client, &mut server, now);
    assert_eq!(client.socket(cs).unwrap().effective_mss(), 700);
    // A 2 KB write goes out in ≤700-byte segments.
    client.send(cs, &vec![9u8; 2000], now).unwrap();
    let segs = client.peek_outbox();
    assert!(!segs.is_empty());
    for (_, _, seg) in &segs {
        assert!(seg.payload.len() <= 700, "segment of {}", seg.payload.len());
    }
}

#[test]
fn listener_backlog_holds_multiple_pending_accepts() {
    let now = SimTime::ZERO;
    let mut server = TcpStack::new(cfg(1));
    let l = server.listen(80, false).unwrap();
    let mut client = TcpStack::new(cfg(2));
    let mut conns = Vec::new();
    for _ in 0..5 {
        conns.push(
            client
                .connect(A, SocketAddr::new(B, 80), false, now)
                .unwrap(),
        );
    }
    exchange(&mut client, &mut server, now);
    // The server app accepts them all, in order, after the fact.
    let mut accepted = 0;
    while server.accept(l).is_some() {
        accepted += 1;
    }
    assert_eq!(accepted, 5);
    for c in conns {
        assert!(client.socket(c).unwrap().is_established());
    }
}

#[test]
fn time_wait_blocks_then_frees_tuple() {
    let now = SimTime::ZERO;
    let mut server = TcpStack::new(cfg(1));
    let l = server.listen(80, false).unwrap();
    let mut client = TcpStack::new(TcpConfig {
        ephemeral_start: 9000,
        ..cfg(2)
    });
    let c1 = client
        .connect(A, SocketAddr::new(B, 80), false, now)
        .unwrap();
    exchange(&mut client, &mut server, now);
    let s1 = server.accept(l).unwrap();
    client.close(c1, now).unwrap();
    exchange(&mut client, &mut server, now);
    server.close(s1, now).unwrap();
    exchange(&mut client, &mut server, now);
    assert_eq!(client.socket(c1).unwrap().state, TcpState::TimeWait);
    // The same 4-tuple cannot be reused while TIME-WAIT holds it...
    let tuple_port = client.socket(c1).unwrap().tuple.local.port;
    let retry = client.connect_from(A, Some(tuple_port), SocketAddr::new(B, 80), false, now);
    assert!(retry.is_err(), "tuple reuse during TIME-WAIT");
    // ...but after expiry it can.
    let later = now + client.config().time_wait + SimDuration::from_millis(5);
    tick_both(&mut client, &mut server, later);
    let retry = client.connect_from(A, Some(tuple_port), SocketAddr::new(B, 80), false, later);
    assert!(retry.is_ok(), "tuple must be free after TIME-WAIT");
    exchange(&mut client, &mut server, later);
    assert!(client.socket(retry.unwrap()).unwrap().is_established());
}

#[test]
fn rst_mid_stream_resets_both_reader_and_writer() {
    let now = SimTime::ZERO;
    let mut server = TcpStack::new(cfg(1));
    let l = server.listen(80, false).unwrap();
    let mut client = TcpStack::new(cfg(2));
    let cs = client
        .connect(A, SocketAddr::new(B, 80), false, now)
        .unwrap();
    exchange(&mut client, &mut server, now);
    let ss = server.accept(l).unwrap();
    client.send(cs, b"some data", now).unwrap();
    exchange(&mut client, &mut server, now);
    server.abort(ss, now).unwrap();
    exchange(&mut client, &mut server, now);
    let sock = client.socket(cs).unwrap();
    assert_eq!(sock.state, TcpState::Closed);
    assert_eq!(sock.error, Some(SocketError::Reset));
}

#[test]
fn half_close_keeps_reverse_stream_flowing() {
    let now = SimTime::ZERO;
    let mut server = TcpStack::new(cfg(1));
    let l = server.listen(80, false).unwrap();
    let mut client = TcpStack::new(cfg(2));
    let cs = client
        .connect(A, SocketAddr::new(B, 80), false, now)
        .unwrap();
    exchange(&mut client, &mut server, now);
    let ss = server.accept(l).unwrap();
    // Client closes its direction immediately (a request/response
    // pattern with early shutdown, §8's half-closed state).
    client.send(cs, b"REQUEST", now).unwrap();
    client.close(cs, now).unwrap();
    exchange(&mut client, &mut server, now);
    assert_eq!(server.recv(ss, 100, now).unwrap(), b"REQUEST");
    assert!(server.socket(ss).unwrap().peer_closed());
    // The server may stream a long response into the half-closed pipe.
    for chunk in 0..10 {
        server.send(ss, &vec![chunk as u8; 5000], now).unwrap();
        exchange(&mut client, &mut server, now);
        let got = client.recv(cs, usize::MAX, now).unwrap();
        assert_eq!(got.len(), 5000, "chunk {chunk}");
        assert!(got.iter().all(|&b| b == chunk as u8));
    }
    server.close(ss, now).unwrap();
    exchange(&mut client, &mut server, now);
    assert_eq!(server.socket(ss).unwrap().state, TcpState::Closed);
    assert_eq!(client.socket(cs).unwrap().state, TcpState::TimeWait);
}
