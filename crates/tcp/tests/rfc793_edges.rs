//! RFC 793 edge-case conformance: crafted segments injected directly
//! into a stack, checking the responses a conforming implementation
//! must give. These are the corners the bridge leans on (§4's loss
//! analysis assumes the TCP layers below behave exactly like this).

use bytes::Bytes;
use tcpfo_net::time::SimTime;
use tcpfo_tcp::config::TcpConfig;
use tcpfo_tcp::socket::TcpState;
use tcpfo_tcp::stack::TcpStack;
use tcpfo_tcp::types::SocketAddr;
use tcpfo_wire::ipv4::Ipv4Addr;
use tcpfo_wire::tcp::{TcpFlags, TcpSegment};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1); // remote
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2); // the stack under test

fn cfg() -> TcpConfig {
    TcpConfig {
        delayed_ack: None,
        nagle: false,
        ..TcpConfig::default().with_isn_seed(5)
    }
}

/// A server stack with one established connection from A:5555.
/// Returns (stack, server ISS, client next seq).
fn established() -> (TcpStack, u32, u32) {
    let now = SimTime::ZERO;
    let mut stack = TcpStack::new(cfg());
    stack.listen(80, false).unwrap();
    let syn = TcpSegment::builder(5555, 80)
        .seq(1_000)
        .flags(TcpFlags::SYN)
        .mss(1460)
        .window(60_000)
        .build();
    stack.inject(A, B, &syn, now);
    let synack = stack.peek_outbox().pop().expect("syn+ack").2;
    let iss = synack.seq;
    stack.take_outbox();
    let ack = TcpSegment::builder(5555, 80)
        .seq(1_001)
        .ack(iss.wrapping_add(1))
        .window(60_000)
        .build();
    stack.inject(A, B, &ack, now);
    stack.take_outbox();
    (stack, iss, 1_001)
}

fn sole_response(stack: &mut TcpStack) -> Option<TcpSegment> {
    let mut out = stack.take_outbox();
    match out.len() {
        0 => None,
        1 => Some(TcpSegment::decode(&out.remove(0).bytes).unwrap()),
        n => panic!("expected at most one response, got {n}"),
    }
}

#[test]
fn ack_of_unsent_data_elicits_reack_not_accept() {
    let (mut stack, iss, cseq) = established();
    let now = SimTime::ZERO;
    // Acknowledge a byte the server never sent.
    let bogus = TcpSegment::builder(5555, 80)
        .seq(cseq)
        .ack(iss.wrapping_add(50_000))
        .window(60_000)
        .build();
    stack.inject(A, B, &bogus, now);
    let resp = sole_response(&mut stack).expect("must re-ACK");
    assert!(resp.flags.contains(TcpFlags::ACK));
    assert_eq!(resp.ack, cseq, "correct state re-announced");
    let id = stack.socket_ids()[0];
    assert_eq!(
        stack.socket(id).unwrap().snd_una(),
        iss.wrapping_add(1),
        "SND.UNA untouched"
    );
}

#[test]
fn old_duplicate_data_is_reacked_and_discarded() {
    let (mut stack, iss, cseq) = established();
    let now = SimTime::ZERO;
    let data = TcpSegment::builder(5555, 80)
        .seq(cseq)
        .ack(iss.wrapping_add(1))
        .window(60_000)
        .payload(Bytes::from_static(b"hello"))
        .build();
    stack.inject(A, B, &data, now);
    stack.take_outbox();
    // The exact same segment again (a retransmission the §4 analysis
    // relies on being re-ACKed).
    stack.inject(A, B, &data, now);
    let resp = sole_response(&mut stack).expect("duplicate must be re-ACKed");
    assert_eq!(resp.ack, cseq.wrapping_add(5));
    assert!(resp.payload.is_empty());
    let id = stack.socket_ids()[0];
    assert_eq!(
        stack.recv(id, 100, now).unwrap(),
        b"hello",
        "payload delivered exactly once"
    );
}

#[test]
fn data_far_beyond_window_rejected_with_ack() {
    let (mut stack, iss, cseq) = established();
    let now = SimTime::ZERO;
    let wild = TcpSegment::builder(5555, 80)
        .seq(cseq.wrapping_add(1_000_000))
        .ack(iss.wrapping_add(1))
        .window(60_000)
        .payload(Bytes::from_static(b"far future"))
        .build();
    stack.inject(A, B, &wild, now);
    let resp = sole_response(&mut stack).expect("out-of-window elicits ACK");
    assert_eq!(resp.ack, cseq, "window edge re-announced");
    let id = stack.socket_ids()[0];
    assert_eq!(stack.socket(id).unwrap().recv_available(), 0);
}

#[test]
fn rst_must_be_in_window_to_kill() {
    let (mut stack, iss, cseq) = established();
    let now = SimTime::ZERO;
    // Out-of-window RST: blind reset attack; must NOT kill the
    // connection (RFC 793 acceptability applies to RST too).
    let blind = TcpSegment::builder(5555, 80)
        .seq(cseq.wrapping_sub(100_000))
        .flags(TcpFlags::RST)
        .build();
    stack.inject(A, B, &blind, now);
    let id = stack.socket_ids()[0];
    assert_eq!(stack.socket(id).unwrap().state, TcpState::Established);
    // In-window RST kills.
    let valid = TcpSegment::builder(5555, 80)
        .seq(cseq)
        .flags(TcpFlags::RST)
        .build();
    stack.inject(A, B, &valid, now);
    assert_eq!(stack.socket(id).unwrap().state, TcpState::Closed);
    let _ = iss;
}

#[test]
fn syn_ack_retransmission_is_reacked() {
    // The client's final handshake ACK was lost; the server (here: the
    // remote) retransmits its SYN+ACK; a synchronized receiver must
    // re-ACK rather than reset — the bridge's merged SYN+ACK
    // retransmission path (§7.1) depends on this.
    let now = SimTime::ZERO;
    let mut client = TcpStack::new(cfg());
    let cs = client
        .connect(B, SocketAddr::new(A, 80), false, now)
        .unwrap();
    let syn = client.peek_outbox().pop().unwrap().2;
    client.take_outbox();
    let synack = TcpSegment::builder(80, syn.src_port)
        .seq(40_000)
        .ack(syn.seq.wrapping_add(1))
        .flags(TcpFlags::SYN)
        .mss(1460)
        .window(50_000)
        .build();
    client.inject(A, B, &synack, now);
    client.take_outbox(); // the handshake ACK (lost, per scenario)
    assert!(client.socket(cs).unwrap().is_established());
    // SYN+ACK again.
    client.inject(A, B, &synack, now);
    let resp = sole_response(&mut client).expect("re-ACK the SYN+ACK");
    assert!(resp.flags.contains(TcpFlags::ACK));
    assert!(!resp.flags.contains(TcpFlags::RST), "no reset");
    assert_eq!(resp.ack, 40_001);
}

#[test]
fn segment_to_listening_port_without_syn_gets_rst() {
    let now = SimTime::ZERO;
    let mut stack = TcpStack::new(cfg());
    stack.listen(80, false).unwrap();
    // Stray data to a listening port (no connection): RST.
    let stray = TcpSegment::builder(5555, 80)
        .seq(1)
        .ack(2)
        .window(100)
        .payload(Bytes::from_static(b"?"))
        .build();
    stack.inject(A, B, &stray, now);
    let resp = sole_response(&mut stack).expect("RST for stray data");
    assert!(resp.flags.contains(TcpFlags::RST));
    assert_eq!(resp.seq, 2, "RST carries the stray segment's ack");
}

#[test]
fn fin_with_missing_data_waits_for_the_hole() {
    let (mut stack, iss, cseq) = established();
    let now = SimTime::ZERO;
    // FIN after a hole: bytes [cseq, cseq+4) never delivered.
    let fin = TcpSegment::builder(5555, 80)
        .seq(cseq.wrapping_add(4))
        .ack(iss.wrapping_add(1))
        .window(60_000)
        .flags(TcpFlags::FIN)
        .payload(Bytes::from_static(b"tail"))
        .build();
    stack.inject(A, B, &fin, now);
    stack.take_outbox();
    let id = stack.socket_ids()[0];
    assert_eq!(
        stack.socket(id).unwrap().state,
        TcpState::Established,
        "FIN must not take effect before the stream is complete"
    );
    // The hole fills: now the FIN is consumed.
    let head = TcpSegment::builder(5555, 80)
        .seq(cseq)
        .ack(iss.wrapping_add(1))
        .window(60_000)
        .payload(Bytes::from_static(b"head"))
        .build();
    stack.inject(A, B, &head, now);
    stack.take_outbox();
    assert_eq!(stack.socket(id).unwrap().state, TcpState::CloseWait);
    assert_eq!(stack.recv(id, 100, now).unwrap(), b"headtail");
}
