//! The paper's own motivating application (§1): an on-line store where
//! "each client will get a well-defined response to a browse or
//! purchase request". A customer browses and buys across a primary
//! failure; order ids, stock levels and every reply stay consistent
//! because the secondary executed the same deterministic request
//! stream.
//!
//! Run with: `cargo run --example store_failover`

use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn main() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let secondary = tb.secondary.expect("replicated testbed");
    for node in [tb.primary, secondary] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(StoreServer::new(80)));
        });
    }

    // A long shopping session: browse + buy 30 different items.
    let mut script: Vec<String> = Vec::new();
    for i in 0..30 {
        script.push(format!("BROWSE item{i}"));
        script.push(format!("BUY item{i} 1"));
    }
    script.push("QUIT".into());
    let total = script.len();
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(
            SocketAddr::new(addrs::A_P, 80),
            script,
        )));
    });

    // Let the session get going, then pull the plug on the primary.
    tb.run_for(SimDuration::from_millis(30));
    let replies_before = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<StoreClient>(0).replies.len());
    println!("{replies_before}/{total} replies in — killing the primary");
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(15));

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<StoreClient>(0);
        assert!(
            c.is_done(),
            "session stalled at {} replies",
            c.replies.len()
        );
        assert_eq!(c.mismatches, 0, "a reply diverged after failover");
        println!(
            "{} replies, 0 mismatches across the failover. Sample:",
            c.replies.len()
        );
        for r in c.replies.iter().take(4) {
            println!("  {r}");
        }
        println!("  …");
        for r in c.replies.iter().rev().take(2).rev() {
            println!("  {r}");
        }
    });
    // The secondary executed every command the client ever sent.
    tb.sim.with::<Host, _>(secondary, |h, _| {
        println!(
            "secondary processed {} commands (active replication)",
            h.app_mut::<StoreServer>(0).commands
        );
    });
}
