//! The paper's real-world workload (§9, Fig. 6): FTP over a wide-area
//! network against the replicated server. Control connections are
//! client-initiated (§7.1); active-mode data connections are
//! *server-initiated* from port 20 (§7.2) — both replicas SYN, the
//! primary bridge merges the handshakes. The session survives a
//! primary failure between transfers.
//!
//! Run with: `cargo run --example ftp_wan`

use tcp_failover::apps::ftp::{FtpClient, FtpOp, FtpServer, FTP_CTRL_PORT, FTP_DATA_PORT};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::link::LinkParams;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn main() {
    let cfg = TestbedConfig {
        failover_ports: vec![FTP_CTRL_PORT, FTP_DATA_PORT],
        // A ~22 ms RTT, 2 Mb/s, slightly lossy wide-area path.
        client_link: LinkParams::wan(2_000_000, SimDuration::from_millis(11), 0.002),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::new(cfg);
    let secondary = tb.secondary.expect("replicated testbed");
    for node in [tb.primary, secondary] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(FtpServer::new()));
        });
    }

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(FtpClient::new(
            SocketAddr::new(addrs::A_P, FTP_CTRL_PORT),
            vec![
                FtpOp::Get(18_200),
                FtpOp::Put(144_900),
                FtpOp::Get(1_738_100),
            ],
        )));
    });

    // Fail the primary somewhere inside the big download.
    tb.run_for(SimDuration::from_secs(12));
    println!("t={}: killing the primary mid-session", tb.sim.now());
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(60));

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<FtpClient>(0);
        assert!(c.is_done(), "ftp session incomplete: {:?}", c.records);
        assert_eq!(c.mismatches, 0, "file content corrupted");
        println!("session complete; client-reported rates:");
        for r in &c.records {
            let dir = match r.op {
                FtpOp::Get(_) => "get",
                FtpOp::Put(_) => "put",
            };
            println!("  {dir} {:>9} bytes  {:>10.2} KB/s", r.bytes, r.rate_kbps());
        }
    });
}
