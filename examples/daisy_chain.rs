//! Daisy-chained replication (the §1 extension the paper leaves as
//! future work): four replicas, two successive failures mid-download,
//! the client's connection never breaks.
//!
//! Run with: `cargo run --example daisy_chain`

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::chain_testbed::{ChainConfig, ChainTestbed};
use tcp_failover::core::testbed::addrs;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn progress(tb: &mut ChainTestbed) -> u64 {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.app_mut::<RequestReplyClient>(0).received_len()
    })
}

fn main() {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas: 4,
        ..ChainConfig::default()
    });
    println!(
        "chain: {} (head, owns VIP {}) → {} → {} → {} (tail)",
        tb.replica_addrs[0],
        addrs::A_P,
        tb.replica_addrs[1],
        tb.replica_addrs[2],
        tb.replica_addrs[3]
    );
    tb.install_servers(|| SourceServer::new(80));
    let total = 40_000_000u64;
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });

    tb.run_for(SimDuration::from_millis(300));
    println!(
        "t={}: {} bytes — killing the HEAD",
        tb.sim.now(),
        progress(&mut tb)
    );
    tb.kill_replica(0);

    tb.run_for(SimDuration::from_secs(2));
    println!(
        "t={}: {} bytes — replica 1 promoted; killing the MIDDLE (replica 2)",
        tb.sim.now(),
        progress(&mut tb)
    );
    tb.kill_replica(2);

    tb.run_for(SimDuration::from_secs(60));
    let now = tb.sim.now();
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "download stalled at {}", c.received_len());
        assert_eq!(c.mismatches, 0);
        println!(
            "t={now}: download complete — {} bytes, 0 mismatches, across two failures",
            c.received_len()
        );
    });
    tb.sim.with::<Host, _>(tb.replicas[1], |h, _| {
        let ctl = h.controller_mut::<tcp_failover::core::ChainController>();
        println!(
            "replica 1 promoted at t={}",
            ctl.promoted_at.expect("promoted")
        );
        assert!(h.net_mut().local_ips.contains(&addrs::A_P));
    });
    println!("survivors: replica 1 (new head) and replica 3 (tail), still replicated.");
}
