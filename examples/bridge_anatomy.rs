//! Anatomy of the bridges: drive the primary and secondary bridges
//! directly with hand-built segments and print what they do at each
//! step of §3 — diversion with the orig-dest option, Δseq
//! normalisation, output-queue matching, min-ack/min-window merging,
//! and the §3.4 empty-ACK rule. No network, no hosts: just the
//! sublayer the paper adds between TCP and IP.
//!
//! Run with: `cargo run --example bridge_anatomy`

use bytes::Bytes;
use tcp_failover::core::{FailoverConfig, PrimaryBridge, SecondaryBridge};
use tcp_failover::tcp::filter::{AddressedSegment, SegmentFilter};
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::tcp::{TcpFlags, TcpSegment};

const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
const A_P: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const A_S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

fn seg(src: Ipv4Addr, dst: Ipv4Addr, s: TcpSegment) -> AddressedSegment {
    AddressedSegment::new(src, dst, s.encode(src, dst).to_vec())
}

fn show(prefix: &str, out: &tcp_failover::tcp::filter::FilterOutput) {
    for w in &out.to_wire {
        let p = TcpSegment::decode(&w.bytes).unwrap();
        println!(
            "{prefix} → wire {}→{} seq={} ack={} win={} len={} [{}]{}",
            w.src,
            w.dst,
            p.seq,
            p.ack,
            p.window,
            p.payload.len(),
            p.flags,
            p.orig_dest()
                .map(|(a, po)| format!(" orig-dest={a}:{po}"))
                .unwrap_or_default(),
        );
    }
    for t in &out.to_tcp {
        let p = TcpSegment::decode(&t.bytes).unwrap();
        println!(
            "{prefix} → tcp  {}→{} seq={} ack={} len={} [{}]",
            t.src,
            t.dst,
            p.seq,
            p.ack,
            p.payload.len(),
            p.flags
        );
    }
    if out.to_wire.is_empty() && out.to_tcp.is_empty() {
        println!("{prefix} → (held)");
    }
}

fn main() {
    let cfg = FailoverConfig::from_ports([80]);
    let mut primary = PrimaryBridge::new(A_P, A_S, cfg.clone());
    let mut secondary = SecondaryBridge::new(A_P, A_S, cfg);

    println!("== handshake (§7.1): client SYN, ISNs P=5000 S=9000, Δseq=-4000 ==");
    let client_syn = seg(
        A_C,
        A_P,
        TcpSegment::builder(5555, 80)
            .seq(100)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(60000)
            .build(),
    );
    show(
        "P.in  client SYN     ",
        &primary.on_inbound(client_syn.clone(), 0),
    );
    show(
        "S.in  client SYN     ",
        &secondary.on_inbound(client_syn, 0),
    );
    // Both TCP layers answer; the primary bridge holds P's SYN+ACK…
    let p_synack = seg(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(5000)
            .ack(101)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(50000)
            .build(),
    );
    show("P.out P SYN+ACK      ", &primary.on_outbound(p_synack, 0));
    // …the secondary's is diverted to P with the orig-dest option…
    let s_synack = seg(
        A_S,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(9000)
            .ack(101)
            .flags(TcpFlags::SYN)
            .mss(1200)
            .window(40000)
            .build(),
    );
    let diverted = secondary.on_outbound(s_synack, 0);
    show("S.out S SYN+ACK      ", &diverted);
    // …and on arrival the bridge merges: seq from S's space, MSS=min.
    show(
        "P.in  S SYN+ACK      ",
        &primary.on_inbound(diverted.to_wire.into_iter().next().unwrap(), 0),
    );

    println!("\n== client ACK: translated +Δseq for P's TCP layer ==");
    let client_ack = seg(
        A_C,
        A_P,
        TcpSegment::builder(5555, 80)
            .seq(101)
            .ack(9001)
            .window(60000)
            .build(),
    );
    show(
        "P.in  client ACK     ",
        &primary.on_inbound(client_ack.clone(), 0),
    );
    show(
        "S.in  client ACK     ",
        &secondary.on_inbound(client_ack, 0),
    );

    println!("\n== data (§3.4, Figure 2): released only when both replicas produced it ==");
    let p_data = seg(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(5001)
            .ack(101)
            .window(50000)
            .payload(Bytes::from_static(b"hello from the replicated service"))
            .build(),
    );
    show("P.out P data         ", &primary.on_outbound(p_data, 0));
    let s_data = seg(
        A_S,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(9001)
            .ack(101)
            .window(40000)
            .payload(Bytes::from_static(b"hello from the replicated service"))
            .build(),
    );
    let s_div = secondary.on_outbound(s_data, 0);
    show("S.out S data         ", &s_div);
    show(
        "P.in  S data (match!)",
        &primary.on_inbound(s_div.to_wire.into_iter().next().unwrap(), 0),
    );

    println!("\n== delayed-ACK deadlock prevention (§3.4): min(ack) advance → bare ACK ==");
    let p_ack = seg(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(5035)
            .ack(161)
            .window(50000)
            .build(),
    );
    show("P.out P delayed ack  ", &primary.on_outbound(p_ack, 0));
    let s_ack = seg(
        A_S,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(9035)
            .ack(161)
            .window(40000)
            .build(),
    );
    let s_ack_div = secondary.on_outbound(s_ack, 0);
    show(
        "P.in  S delayed ack  ",
        &primary.on_inbound(s_ack_div.to_wire.into_iter().next().unwrap(), 0),
    );

    println!("\nstats: {:?}", primary.stats);
}
