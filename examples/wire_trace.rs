//! Annotated wire trace of a failover: run a short download, kill the
//! primary, and print what actually crossed the client's wire around
//! the takeover — the gratuitous ARP's effect, the retransmission that
//! restores service, and the unbroken sequence space.
//!
//! Run with: `cargo run --example wire_trace`

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::{SimDuration, SimTime};
use tcp_failover::net::trace::TraceKind;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::eth::{EtherType, EthernetFrame};
use tcp_failover::wire::ipv4::Ipv4Packet;
use tcp_failover::wire::tcp::TcpSegment;

fn main() {
    let mut tb = Testbed::new(TestbedConfig::default());
    let secondary = tb.secondary.expect("replicated");
    for node in [tb.primary, secondary] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(SourceServer::new(80)));
        });
    }
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 3000000\n".to_vec(),
            3_000_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(95));
    tb.sim.set_trace_enabled(true);
    tb.run_for(SimDuration::from_millis(5));
    let kill_time = tb.sim.now();
    tb.kill_primary();
    tb.run_for(SimDuration::from_millis(450));
    tb.sim.set_trace_enabled(false);
    tb.run_for(SimDuration::from_secs(10));

    println!("primary killed at t={kill_time}\n");
    println!("what the CLIENT's wire saw around the takeover:");
    println!("{:>12}  {:<4} segment", "time", "dir");
    let client = tb.client;
    let mut shown_quiet = false;
    let mut last: Option<SimTime> = None;
    for e in tb.sim.take_trace() {
        if e.node != client {
            continue;
        }
        let dir = match e.kind {
            TraceKind::Rx { .. } => "rx",
            TraceKind::Tx { .. } => "tx",
            _ => continue,
        };
        let Some(frame) = e.frame else { continue };
        let Ok(eth) = EthernetFrame::decode(&frame) else {
            continue;
        };
        if eth.ethertype != EtherType::Ipv4 {
            continue;
        }
        let Ok(ip) = Ipv4Packet::decode(&eth.payload) else {
            continue;
        };
        let Ok(seg) = TcpSegment::decode(&ip.payload) else {
            continue;
        };
        // Compress the steady stream: show the lead-up to the kill,
        // the interruption, and the first segments of the recovery.
        let gap_ms = last.map_or(0, |l| e.at.duration_since(l).as_millis());
        if gap_ms > 50 && !shown_quiet {
            println!(
                "{:>12}  ...  ── service interruption ({gap_ms}ms): detection + ARP window T + RTO ──",
                ""
            );
            shown_quiet = true;
        }
        let interesting = e.at <= kill_time + SimDuration::from_millis(2)
            || gap_ms > 20
            || (shown_quiet && seg.payload.is_empty());
        if interesting {
            println!(
                "{:>12}  {:<4} {} {}→{} seq={} ack={} len={} [{}]",
                format!("{}", e.at),
                dir,
                if dir == "rx" { "from" } else { "to  " },
                ip.src,
                ip.dst,
                seg.seq,
                seg.ack,
                seg.payload.len(),
                seg.flags,
            );
        }
        last = Some(e.at);
    }
    let done = tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.app_mut::<RequestReplyClient>(0).is_done()
    });
    println!(
        "\ntransfer completed: {done} — every datagram above came from {}",
        addrs::A_P
    );
}
