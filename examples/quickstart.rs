//! Quickstart: build the paper's testbed, replicate an echo-style
//! service on the primary and the secondary, run a client request
//! through the bridges, kill the primary mid-session, and watch the
//! connection survive.
//!
//! Run with: `cargo run --example quickstart`

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn main() {
    // 1. The paper's Figure-1 topology: client — router — shared
    //    100 Mb/s segment with primary + promiscuous secondary. Port 80
    //    is designated a failover port (§7 method 2) by default.
    let mut tb = Testbed::new(TestbedConfig::default());
    println!(
        "testbed up: client={} primary={} secondary={}",
        addrs::A_C,
        addrs::A_P,
        addrs::A_S
    );

    // 2. Actively replicate the server application: the same
    //    deterministic app runs on both replicas.
    let secondary = tb.secondary.expect("replicated testbed");
    for node in [tb.primary, secondary] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(SourceServer::new(80)));
        });
    }

    // 3. An unmodified client downloads 1 MB from what it believes is a
    //    single server at a_p.
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 1000000\n".to_vec(),
            1_000_000,
        )));
    });

    // 4. Let part of the transfer happen…
    tb.run_for(SimDuration::from_millis(100));
    let progress = tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.app_mut::<RequestReplyClient>(0).received_len()
    });
    println!(
        "t={}: client has {progress} bytes — killing the primary now",
        tb.sim.now()
    );

    // 5. …fail the primary. The secondary's fault detector notices,
    //    performs the §5 takeover (stop egress, drop promiscuous mode,
    //    disable translations, gratuitous ARP for a_p, re-key TCBs)…
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(10));

    // 6. …and the client never noticed.
    let now = tb.sim.now();
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "transfer did not complete");
        assert_eq!(c.mismatches, 0, "stream corrupted");
        println!(
            "t={now}: transfer complete, {} bytes, 0 mismatches — failover was transparent",
            c.received_len(),
        );
    });
    let detected = tb
        .failover_detected_at(secondary)
        .expect("fault detector fired");
    println!("primary failure detected at t={detected}");

    // 7. The telemetry hub recorded the whole thing: the §5 phase
    //    timeline plus per-layer counters (see `tb.metrics_snapshot()`
    //    for the full table, `tb.export_telemetry_json()` for JSON).
    println!("\n{}", tb.telemetry.timeline.breakdown());
    println!("done: the client's TCP connection survived the server failure.");
}
