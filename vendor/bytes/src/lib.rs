//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the API subset this workspace uses: cheaply
//! cloneable immutable [`Bytes`], a growable [`BytesMut`] builder, and
//! the [`BufMut`] write trait. Semantics match the real crate for that
//! subset; representation is a reference-counted `Vec<u8>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied; the real crate
    /// borrows, but the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Write-side buffer trait (big-endian integer writers).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn bytes_mut_builder() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            b,
            Bytes::from(vec![0xAB, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, b'x', b'y'])
        );
    }
}
