//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the API subset this workspace uses: cheaply
//! cloneable immutable [`Bytes`], a growable [`BytesMut`] builder with
//! the real crate's storage-recycling semantics (`reserve` reclaims the
//! allocation once every frozen view has been dropped), and the
//! [`BufMut`] write trait. Semantics match the real crate for that
//! subset; representation is a reference-counted `Vec<u8>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Shared storage for all empty buffers, so `Bytes::new()` /
/// `BytesMut::new()` never touch the allocator after first use (the
/// real crate points empties at a static).
fn empty_storage() -> Arc<Vec<u8>> {
    static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: empty_storage(),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied; the real crate
    /// borrows, but the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Converts into a [`BytesMut`] without copying when this handle is
    /// the sole owner of the backing storage; otherwise hands `self`
    /// back. Mirrors `Bytes::try_into_mut` from the real crate.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        if Arc::strong_count(&self.data) == 1 {
            let Bytes {
                mut data,
                start,
                end,
            } = self;
            Arc::get_mut(&mut data)
                .expect("sole owner checked above")
                .truncate(end);
            Ok(BytesMut { data, start })
        } else {
            Err(self)
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer for building frames.
///
/// Like the real crate, a `BytesMut` can hand out frozen [`Bytes`]
/// views of its contents via [`BytesMut::split`] + [`BytesMut::freeze`]
/// and later *reclaim* the backing allocation in [`BytesMut::reserve`]
/// once every view has been dropped — the reserve/write/split/freeze
/// cycle touches the allocator only while a previous view is still
/// alive. The buffer's view is `data[start..]`; `split` advances
/// `start` past the frozen region.
pub struct BytesMut {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut {
            data: empty_storage(),
            start: 0,
        }
    }
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Arc::new(Vec::with_capacity(cap)),
            start: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spare capacity after the current contents.
    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.start
    }

    /// Makes the storage uniquely owned, copying the current view out
    /// if a frozen `Bytes` (or a clone) still shares it.
    fn vec_mut(&mut self) -> &mut Vec<u8> {
        if Arc::get_mut(&mut self.data).is_none() {
            let mut v = Vec::with_capacity(self.len());
            v.extend_from_slice(&self.data[self.start..]);
            self.data = Arc::new(v);
            self.start = 0;
        }
        Arc::get_mut(&mut self.data).expect("made unique above")
    }

    /// Ensures room for `additional` more bytes.
    ///
    /// When the buffer is empty and the storage is no longer shared
    /// (every split-off `Bytes` has been dropped), the existing
    /// allocation is reclaimed instead of growing — the real crate's
    /// recycling behaviour, which keeps steady-state emit loops off the
    /// allocator.
    pub fn reserve(&mut self, additional: usize) {
        if let Some(v) = Arc::get_mut(&mut self.data) {
            if self.start == v.len() {
                v.clear();
                self.start = 0;
            }
            v.reserve(additional);
        } else {
            let mut v = Vec::with_capacity(self.len() + additional);
            v.extend_from_slice(&self.data[self.start..]);
            self.data = Arc::new(v);
            self.start = 0;
        }
    }

    /// Empties the buffer (the allocation is kept when unshared).
    pub fn clear(&mut self) {
        if let Some(v) = Arc::get_mut(&mut self.data) {
            v.clear();
            self.start = 0;
        } else {
            self.data = Arc::new(Vec::new());
            self.start = 0;
        }
    }

    /// Shortens the buffer to `n` bytes; no-op if already shorter.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        self.vec_mut();
        let end = self.start + n;
        Arc::get_mut(&mut self.data)
            .expect("unique after vec_mut")
            .truncate(end);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec_mut().extend_from_slice(data);
    }

    /// Splits off everything written so far, leaving `self` empty but
    /// still holding (a claim on) the allocation. Freeze the returned
    /// buffer to get an immutable view; once that view drops, the next
    /// [`BytesMut::reserve`] on `self` reclaims the storage.
    pub fn split(&mut self) -> BytesMut {
        let out = BytesMut {
            data: Arc::clone(&self.data),
            start: self.start,
        };
        self.start = self.data.len();
        out
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            data: self.data,
            start: self.start,
            end,
        }
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        BytesMut {
            data: Arc::new(self.data[self.start..].to_vec()),
            start: 0,
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for BytesMut {}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            data: Arc::new(v.to_vec()),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec_mut();
        let start = self.start;
        let v = Arc::get_mut(&mut self.data).expect("unique after vec_mut");
        &mut v[start..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Write-side buffer trait (big-endian integer writers).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn bytes_mut_builder() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            b,
            Bytes::from(vec![0xAB, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, b'x', b'y'])
        );
    }

    #[test]
    fn try_into_mut_unique_and_shared() {
        let b = Bytes::from(vec![1, 2, 3, 4]).slice(1..3);
        let m = b.try_into_mut().expect("sole owner");
        assert_eq!(&m[..], &[2, 3]);

        let b = Bytes::from(vec![1, 2, 3]);
        let keep = b.clone();
        let back = b.try_into_mut().expect_err("shared");
        assert_eq!(back, keep);
    }

    #[test]
    fn split_freeze_and_reclaim() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"first");
        let first = buf.split().freeze();
        assert_eq!(first, Bytes::from_static(b"first"));
        assert!(buf.is_empty());

        // While `first` is alive the storage is shared; writing after a
        // reserve must not corrupt it.
        buf.reserve(6);
        buf.put_slice(b"second");
        assert_eq!(first, Bytes::from_static(b"first"));
        let second = buf.split().freeze();
        assert_eq!(second, Bytes::from_static(b"second"));

        // Once every view drops, reserve reclaims the allocation.
        drop(first);
        drop(second);
        buf.reserve(4);
        buf.put_slice(b"x");
        assert_eq!(&buf[..], b"x");
    }

    #[test]
    fn deref_mut_copies_out_shared_storage() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abcd");
        let frozen = buf.split().freeze();
        buf.put_slice(b"wxyz");
        buf[0] = b'W';
        assert_eq!(&buf[..], b"Wxyz");
        assert_eq!(frozen, Bytes::from_static(b"abcd"));
    }

    #[test]
    fn truncate_and_clear() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello");
        buf.truncate(10); // no-op
        buf.truncate(2);
        assert_eq!(&buf[..], b"he");
        buf.clear();
        assert!(buf.is_empty());
    }
}
