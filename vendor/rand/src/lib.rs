//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the API subset this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`/integers and
//! [`Rng::gen_range`] over half-open integer ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality, deterministic,
//! and stable across platforms, which is all the simulator needs
//! (determinism for a fixed seed; no cryptographic claims).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased draw from `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

/// Convenience draws layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's default).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
        }
        let w = rng.gen_range(0u64..1);
        assert_eq!(w, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
