//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the subset this workspace's micro-benchmarks use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, and [`black_box`]. Timing is a simple
//! warm-up + timed-batch loop over `std::time::Instant` — adequate for
//! relative comparisons, without the real crate's statistics.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    /// Wall-clock budget for each benchmark's timed phase.
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.measure_budget,
            result: None,
        };
        f(&mut b);
        report(name, None, &b);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.criterion.measure_budget,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), self.throughput, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `f` repeatedly, recording total time and iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.budget / 10 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().checked_div(calib_iters.max(1) as u32);
        let target_iters = match per_iter {
            Some(d) if d > Duration::ZERO => {
                (self.budget.as_nanos() / d.as_nanos().max(1)).clamp(10, 10_000_000) as u64
            }
            _ => 10_000_000,
        };
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), target_iters));
    }
}

fn report(name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let Some((total, iters)) = b.result else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mbps = n as f64 / per_iter_ns * 1e9 / 1e6;
            format!("  {mbps:10.1} MB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / per_iter_ns * 1e9;
            format!("  {eps:10.0} elem/s")
        }
    });
    println!(
        "{name:<40} {per_iter_ns:12.1} ns/iter  ({iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
