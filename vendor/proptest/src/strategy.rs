//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform or weighted choice among boxed strategies
/// (see [`crate::prop_oneof!`]).
pub struct OneOf<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Uniform choice.
    pub fn uniform(choices: Vec<BoxedStrategy<V>>) -> Self {
        OneOf::weighted(choices.into_iter().map(|c| (1, c)).collect())
    }

    /// Weighted choice.
    pub fn weighted(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        OneOf { choices, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.choices {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// `&'static str` patterns like `"[a-z]{1,8}"` act as string
/// strategies. Supported syntax: literal characters, `[...]` classes
/// with ranges, and `{m}` / `{m,n}` quantifiers after a class or
/// literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier min"),
                    n.trim().parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        let reps = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..reps {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (0i32..3).generate(&mut rng);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..500 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "[ -~]{0,30}".generate(&mut rng);
            assert!(t.len() <= 30);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn one_of_hits_every_choice() {
        let mut rng = TestRng::for_test("oneof");
        let s = OneOf::uniform(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_and_maps_compose() {
        let mut rng = TestRng::for_test("tuple");
        let s = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }
}
