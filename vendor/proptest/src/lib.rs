//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the API subset this workspace's property tests use:
//!
//! * [`proptest!`] blocks with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * strategies: integer ranges, [`strategy::Just`], `any::<T>()`,
//!   tuples, [`collection::vec`], [`option::of`], simple
//!   `"[a-z]{1,8}"`-style regex strings, `.prop_map`, and
//!   [`prop_oneof!`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: generation is deterministic per test name, so a failure
//! reproduces exactly on re-run. That trades minimal counterexamples
//! for a dependency-free offline build.

pub mod strategy;

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by [`crate::proptest!`] headers.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator (SplitMix64) used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test's name, so every test has a
        /// fixed but distinct case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for [`vec`]: inclusive min, exclusive max.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.min < self.size.max_excl, "empty size range");
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` about three quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ($($arg,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::uniform(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}
