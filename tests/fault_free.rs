//! Integration: the fault-free datapath of §3 — client traffic snooped
//! by the secondary, replica output matched and merged by the primary
//! bridge, a single coherent stream delivered to the client.

use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn server_addr(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

/// Installs the same app on both replicas (active replication).
macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

#[test]
fn client_to_server_stream_is_acked_by_both() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(server_addr(80), 100_000)));
    });
    tb.run_for(SimDuration::from_secs(5));

    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "client transfer did not complete");
    // Both replicas consumed the whole stream.
    let p_received = tb
        .sim
        .with::<Host, _>(tb.primary, |h, _| h.app_mut::<SinkServer>(0).received);
    let s_received = tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        h.app_mut::<SinkServer>(0).received
    });
    assert_eq!(p_received, 100_000, "primary saw the full stream");
    assert_eq!(s_received, 100_000, "secondary snooped the full stream");
    // The secondary's acks were diverted to the primary.
    let sstats = tb.secondary_stats();
    assert!(sstats.ingress_translated > 0);
    assert!(sstats.egress_diverted > 0);
}

#[test]
fn server_to_client_stream_is_merged() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            b"SEND 100000\n".to_vec(),
            100_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(5));

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "reply incomplete: {} bytes", c.received_len());
        assert_eq!(c.mismatches, 0, "merged stream corrupted");
    });
    let pstats = tb.primary_stats();
    assert!(pstats.merged_bytes >= 100_000, "stats: {pstats:?}");
    assert_eq!(pstats.mismatched_bytes, 0, "replicas diverged");
    // No stack ever saw a bad checksum (validates every incremental
    // checksum patch on the path).
    for node in [tb.client, tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            assert_eq!(h.stack().checksum_drops, 0, "checksum drops on {}", h.ip());
        });
    }
}

#[test]
fn store_session_via_replicated_server() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, StoreServer::new(80));
    let script: Vec<String> = vec![
        "BROWSE widget".into(),
        "BUY widget 2".into(),
        "BROWSE widget".into(),
        "BUY gadget 1".into(),
        "QUIT".into(),
    ];
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(server_addr(80), script)));
    });
    tb.run_for(SimDuration::from_secs(5));

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<StoreClient>(0);
        assert!(c.is_done(), "store session incomplete: {:?}", c.replies);
        assert_eq!(c.mismatches, 0, "replies: {:?}", c.replies);
    });
    // Both replicas executed every command.
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            assert_eq!(h.app_mut::<StoreServer>(0).commands, 5);
        });
    }
}
