//! Integration: the unified telemetry layer.
//!
//! * Counter semantics at the bridge level: `empty_acks` increments
//!   exactly when `min(ack_P, ack_S)` advances without matched payload,
//!   and `retransmissions_forwarded` increments on a recognised §4
//!   retransmission — mirrored onto the shared registry.
//! * A §5 takeover stamps every phase of the failover timeline in
//!   monotone sim-time order.
//! * A full failover run exports a JSON metrics snapshot carrying
//!   counters from all layers, and the client-side capture round-trips
//!   through pcapng at `TcpView` level.

use bytes::Bytes;
use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::designation::FailoverConfig;
use tcp_failover::core::primary::PrimaryBridge;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::filter::{AddressedSegment, SegmentFilter};
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::telemetry::{FailoverPhase, Telemetry};
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::pcapng::read_packets;
use tcp_failover::wire::tcp::{SegmentPatcher, TcpFlags, TcpSegment, TcpView};

const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
const A_P: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const A_S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
const ISS_P: u32 = 5_000;
const ISS_S: u32 = 9_000;
const ISS_C: u32 = 100;

fn raw(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> AddressedSegment {
    AddressedSegment::new(src, dst, seg.encode(src, dst).to_vec())
}

/// Builds a segment as the secondary bridge would divert it.
fn diverted(seg: TcpSegment) -> AddressedSegment {
    let bytes = seg.encode(A_S, A_C).to_vec();
    let mut p = SegmentPatcher::new(bytes, A_S, A_C);
    p.push_orig_dest_option(A_C, 5555);
    p.set_pseudo_dst(A_P);
    let (bytes, src, dst) = p.finish();
    AddressedSegment::new(src, dst, bytes)
}

/// A primary bridge with a merged handshake, wired to a fresh hub.
fn established() -> (PrimaryBridge, Telemetry) {
    let hub = Telemetry::new();
    let mut b = PrimaryBridge::new(A_P, A_S, FailoverConfig::from_ports([80]));
    b.set_telemetry(&hub);
    let syn = raw(
        A_C,
        A_P,
        TcpSegment::builder(5555, 80)
            .seq(ISS_C)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(60_000)
            .build(),
    );
    let _ = b.on_inbound(syn, 0);
    let p_synack = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P)
            .ack(ISS_C + 1)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(50_000)
            .build(),
    );
    let _ = b.on_outbound(p_synack, 0);
    let s_synack = diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S)
            .ack(ISS_C + 1)
            .flags(TcpFlags::SYN)
            .mss(1200)
            .window(40_000)
            .build(),
    );
    let out = b.on_inbound(s_synack, 0);
    assert_eq!(out.to_wire.len(), 1, "merged SYN+ACK released");
    (b, hub)
}

fn p_ack(ack: u32) -> AddressedSegment {
    raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P + 1)
            .ack(ack)
            .window(50_000)
            .build(),
    )
}

fn s_ack(ack: u32) -> AddressedSegment {
    diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S + 1)
            .ack(ack)
            .window(40_000)
            .build(),
    )
}

/// `empty_acks` counts exactly the §3.4 events: the minimum of the
/// replica acknowledgments advancing with no matched payload to carry
/// it.
#[test]
fn empty_ack_counter_tracks_min_ack_advance() {
    let (mut b, hub) = established();
    let base = b.stats.empty_acks;
    // P acks 50 bytes; min(ack_P, ack_S) still at the handshake value:
    // no empty ACK may be emitted.
    let out = b.on_outbound(p_ack(ISS_C + 50), 1_000);
    assert!(out.to_wire.is_empty(), "P-only ack advance is held");
    assert_eq!(b.stats.empty_acks, base, "minimum did not advance");
    // S catches up: the minimum advances without any payload — exactly
    // one empty ACK.
    let out = b.on_inbound(s_ack(ISS_C + 50), 2_000);
    assert_eq!(out.to_wire.len(), 1);
    let seg = TcpSegment::decode(&out.to_wire[0].bytes).unwrap();
    assert!(seg.payload.is_empty());
    assert_eq!(seg.ack, ISS_C + 50);
    assert_eq!(b.stats.empty_acks, base + 1);
    // S repeats the same ack: a genuine replica re-ACK, forwarded as
    // the degenerate §4 retransmission (an empty segment) and counted
    // with a distinguishing journal kind.
    let out = b.on_inbound(s_ack(ISS_C + 50), 3_000);
    assert_eq!(out.to_wire.len(), 1, "re-ACK forwarded");
    assert_eq!(b.stats.empty_acks, base + 2);
    assert!(
        hub.journal.events().iter().any(|e| e.kind == "empty_ack"
            && e.at_ns == 3_000
            && e.fields.iter().any(|(k, v)| k == "kind" && v == "re_ack")),
        "re-ACK journal event missing"
    );
    // Now matched payload carries the next advance: no *empty* ACK.
    let p_data = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P + 1)
            .ack(ISS_C + 80)
            .window(50_000)
            .payload(Bytes::from_static(b"hello"))
            .build(),
    );
    let _ = b.on_outbound(p_data, 4_000);
    let s_data = diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S + 1)
            .ack(ISS_C + 80)
            .window(40_000)
            .payload(Bytes::from_static(b"hello"))
            .build(),
    );
    let out = b.on_inbound(s_data, 5_000);
    assert_eq!(out.to_wire.len(), 1, "matched payload released");
    assert_eq!(
        b.stats.empty_acks,
        base + 2,
        "payload segment carried the ack: no empty ACK"
    );
    assert_eq!(b.stats.merged_bytes, 5);
    // The registry mirror observed the same counts.
    b.sync_telemetry(6_000);
    let snap = hub.registry.snapshot(6_000);
    assert_eq!(snap.counter("core.primary.empty_acks"), Some(base + 2));
    assert_eq!(snap.counter("core.primary.merged_bytes"), Some(5));
}

/// `retransmissions_forwarded` increments when a replica resends
/// content entirely below `send_next` (§4) — and only then.
#[test]
fn retransmission_counter_tracks_paragraph4_recognition() {
    let (mut b, hub) = established();
    let payload = b"0123456789";
    let p_data = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P + 1)
            .ack(ISS_C + 1)
            .window(50_000)
            .payload(Bytes::from_static(payload))
            .build(),
    );
    let _ = b.on_outbound(p_data.clone(), 1_000);
    let s_data = diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S + 1)
            .ack(ISS_C + 1)
            .window(40_000)
            .payload(Bytes::from_static(payload))
            .build(),
    );
    let out = b.on_inbound(s_data, 2_000);
    assert_eq!(out.to_wire.len(), 1, "matched payload released");
    assert_eq!(b.stats.retransmissions_forwarded, 0, "first copies merge");
    // P resends the same bytes: now entirely below send_next, so the
    // bridge must recognise the retransmission and forward immediately.
    let out = b.on_outbound(p_data, 3_000);
    assert_eq!(out.to_wire.len(), 1, "retransmission forwarded at once");
    let seg = TcpSegment::decode(&out.to_wire[0].bytes).unwrap();
    assert_eq!(seg.seq, ISS_S + 1, "normalised into client space");
    assert_eq!(&seg.payload[..], payload);
    assert_eq!(b.stats.retransmissions_forwarded, 1);
    b.sync_telemetry(4_000);
    let snap = hub.registry.snapshot(4_000);
    assert_eq!(
        snap.counter("core.primary.retransmissions_forwarded"),
        Some(1)
    );
    // The journal recorded the event at the stamped segment time.
    let events = hub.journal.events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == "retransmission" && e.at_ns == 3_000),
        "journal missing the retransmission event: {events:?}"
    );
}

/// A §5 takeover run: every timeline phase present, in monotone order,
/// and the exported artifacts (JSON snapshot, pcapng capture) carry the
/// run.
#[test]
fn failover_timeline_is_complete_and_monotone() {
    let mut tb = Testbed::new(TestbedConfig::default());
    tb.sim.set_trace_enabled(true);
    tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    let s = tb.secondary.unwrap();
    tb.sim.with::<Host, _>(s, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 400000\n".to_vec(),
            400_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(60));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(10));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "transfer died at {} bytes", c.received_len());
    });

    // (b) The §5 phase timeline: all phases, monotonically ordered.
    let tl = &tb.telemetry.timeline;
    assert!(tl.is_complete(), "missing phases:\n{}", tl.breakdown());
    assert!(tl.is_monotone(), "out of order:\n{}", tl.breakdown());
    let failure = tl.at(FailoverPhase::Failure).unwrap();
    let detection = tl.at(FailoverPhase::Detection).unwrap();
    let first_byte = tl.at(FailoverPhase::FirstClientByte).unwrap();
    assert!(detection > failure, "detection cannot precede the kill");
    assert!(first_byte >= tl.at(FailoverPhase::ArpTakeover).unwrap());
    assert_eq!(tl.total_ns(), Some(first_byte - failure));

    // (a) The JSON export carries counters from every layer.
    let json = tb.export_telemetry_json();
    for key in [
        "core.primary.merged_bytes",
        "core.primary.pq_depth",
        "core.secondary.egress_diverted",
        "core.detector.secondary.heartbeats_sent",
        "net.n", // per-link scopes
        "tcp.client.",
        "\"timeline\"",
        "\"first_client_byte\"",
    ] {
        assert!(json.contains(key), "export missing {key}:\n{json}");
    }
    let snap = tb.metrics_snapshot();
    assert!(snap.counter("core.primary.merged_bytes").unwrap() > 0);
    assert!(
        snap.counter("core.secondary.egress_diverted").unwrap() > 0,
        "secondary diverted nothing"
    );

    // (c) The client-side capture round-trips through pcapng and
    // parses at TcpView level.
    let pcap = tb.client_capture_pcapng();
    let packets = read_packets(&pcap).expect("well-formed pcapng");
    assert!(!packets.is_empty(), "client capture is empty");
    let mut tcp_frames = 0usize;
    let mut last_ts = 0u64;
    for p in &packets {
        assert!(p.ts_ns >= last_ts, "capture timestamps out of order");
        last_ts = p.ts_ns;
        // Ethernet (14) + IPv4 (20, no options in this stack).
        if p.frame.len() > 34 && p.frame[12..14] == [0x08, 0x00] && p.frame[23] == 6 {
            let view = TcpView::new(&p.frame[34..]).expect("TCP segment parses");
            let _ = (view.seq(), view.ack(), view.flags());
            tcp_frames += 1;
        }
    }
    assert!(
        tcp_frames > 10,
        "expected a TCP conversation in the capture"
    );
}

/// The §6 path (secondary dies) stamps Failure + Detection but no
/// takeover phases — and the journal records the degradation.
#[test]
fn degradation_journals_without_takeover_phases() {
    let mut tb = Testbed::new(TestbedConfig::default());
    tb.run_for(SimDuration::from_millis(50));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_millis(300));
    let tl = &tb.telemetry.timeline;
    assert!(tl.at(FailoverPhase::Failure).is_some());
    assert!(tl.at(FailoverPhase::Detection).is_some());
    assert!(tl.is_monotone());
    assert!(
        tl.at(FailoverPhase::ArpTakeover).is_none(),
        "§6 must not run the §5 takeover"
    );
    let events = tb.telemetry.journal.events();
    assert!(
        events.iter().any(|e| e.kind == "degraded"),
        "journal missing degradation: {events:?}"
    );
    assert!(events.iter().any(|e| e.kind == "secondary_failed"));
}
