//! Stress: the paper's §4 and §5 machinery exercised *together* —
//! failover in the middle of a lossy transfer, and repeated randomised
//! failover points. Every run must deliver a byte-exact stream.

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::link::LinkParams;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

fn lossy_download_with_kill(seed: u64, kill_at_ms: u64, kill_primary: bool) {
    let total = 800_000u64;
    let mut tb = Testbed::new(TestbedConfig {
        seed,
        client_link: LinkParams::fast_ethernet().with_loss(0.02),
        loss_to_primary: 0.01,
        loss_to_secondary: 0.01,
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });
    tb.run_for(SimDuration::from_millis(kill_at_ms));
    if kill_primary {
        tb.kill_primary();
    } else {
        tb.kill_secondary();
    }
    tb.run_for(SimDuration::from_secs(120));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(
            c.is_done(),
            "seed {seed} kill@{kill_at_ms}ms primary={kill_primary}: stalled at {} of {total}",
            c.received_len()
        );
        assert_eq!(
            c.mismatches, 0,
            "seed {seed}: corrupted across lossy failover"
        );
    });
}

#[test]
fn primary_failure_under_loss_various_points() {
    for (i, kill_at) in [30u64, 80, 150, 400].into_iter().enumerate() {
        lossy_download_with_kill(100 + i as u64, kill_at, true);
    }
}

#[test]
fn secondary_failure_under_loss_various_points() {
    for (i, kill_at) in [30u64, 80, 150, 400].into_iter().enumerate() {
        lossy_download_with_kill(200 + i as u64, kill_at, false);
    }
}

/// The kill can land during the handshake itself (§7's "failover can
/// occur at any time during the lifetime of a connection" includes its
/// very beginning).
#[test]
fn primary_failure_during_handshake() {
    for seed in [300u64, 301, 302] {
        let mut tb = Testbed::new(TestbedConfig {
            seed,
            ..TestbedConfig::default()
        });
        replicate!(&mut tb, SourceServer::new(80));
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                b"SEND 50000\n".to_vec(),
                50_000,
            )));
        });
        // Kill within the first millisecond: the SYN exchange is in
        // flight, the merged SYN+ACK may or may not have left.
        tb.run_for(SimDuration::from_micros(300 + seed * 37));
        tb.kill_primary();
        tb.run_for(SimDuration::from_secs(60));
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(0);
            assert!(
                c.is_done(),
                "seed {seed}: handshake-time failover stalled at {}",
                c.received_len()
            );
            assert_eq!(c.mismatches, 0);
        });
    }
}

/// Reordering: heavy per-frame jitter on the client path scrambles
/// segment arrival order in both directions; TCP's reassembly and the
/// bridge's queues must still deliver a byte-exact stream.
#[test]
fn reordering_on_client_path_survives() {
    for seed in [400u64, 401] {
        let total = 500_000u64;
        let mut tb = Testbed::new(TestbedConfig {
            seed,
            client_link: LinkParams::fast_ethernet().with_jitter(SimDuration::from_micros(400)),
            ..TestbedConfig::default()
        });
        replicate!(&mut tb, SourceServer::new(80));
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                format!("SEND {total}\n").into_bytes(),
                total,
            )));
        });
        tb.run_for(SimDuration::from_secs(60));
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(0);
            assert!(c.is_done(), "seed {seed}: stalled at {}", c.received_len());
            assert_eq!(
                c.mismatches, 0,
                "seed {seed}: reordering corrupted the stream"
            );
        });
        let stats = tb.primary_stats();
        assert_eq!(stats.mismatched_bytes, 0);
    }
}

/// Reordering + loss + a failover, all at once.
#[test]
fn reordering_loss_and_failover_combined() {
    let total = 700_000u64;
    let mut tb = Testbed::new(TestbedConfig {
        seed: 410,
        client_link: LinkParams::fast_ethernet()
            .with_jitter(SimDuration::from_micros(300))
            .with_loss(0.01),
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });
    tb.run_for(SimDuration::from_millis(100));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(120));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "stalled at {}", c.received_len());
        assert_eq!(c.mismatches, 0);
    });
}
