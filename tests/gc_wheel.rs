//! PR-7 property tests: the incremental (expiry-list) GC must reap
//! exactly the set a full-slab sweep would, at every tick, for
//! arbitrary interleavings of insert / touch / set_state / remove with
//! monotone sim time — and a budgeted tick must never reap early, only
//! late, eventually draining the whole backlog.
//!
//! The oracle is a plain map of `key -> (state, last_activity)` with
//! the table's documented activity semantics: insert and touch stamp
//! `last_activity = now`; a state change that moves the flow between
//! TTL classes (TimeWait vs live vs GC-exempt Degraded) also counts as
//! activity; a same-class transition does not restamp.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use tcp_failover::core::flow::{FlowState, FlowTable, FlowTableConfig, GcPolicy};
use tcp_failover::core::FlowKey;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::ipv4::Ipv4Addr;

const KEYS: u32 = 24;
const TIMEWAIT_TTL: u64 = 50;
const IDLE_TTL: u64 = 200;

fn key(i: u32) -> FlowKey {
    let ip = Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8);
    FlowKey::new(80, SocketAddr::new(ip, 40_000 + i as u16))
}

fn table(shards: usize) -> FlowTable<u32> {
    let mut cfg = FlowTableConfig::new(shards, 4 * KEYS as usize);
    cfg.gc = GcPolicy {
        timewait_ttl: TIMEWAIT_TTL,
        idle_ttl: IDLE_TTL,
        ..GcPolicy::default()
    };
    FlowTable::new(cfg)
}

fn state_of(sel: u8) -> FlowState {
    match sel % 5 {
        0 => FlowState::Establishing,
        1 => FlowState::Replicated,
        2 => FlowState::Closing,
        3 => FlowState::TimeWait,
        _ => FlowState::Degraded,
    }
}

/// The TTL class GC cares about: TimeWait, live, or exempt.
fn class_of(state: FlowState) -> Option<u64> {
    match state {
        FlowState::TimeWait => Some(TIMEWAIT_TTL),
        FlowState::Degraded => None,
        _ => Some(IDLE_TTL),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ModelFlow {
    state: FlowState,
    last_activity: u64,
}

/// Full-sweep oracle: every flow whose TTL has elapsed at `now`.
fn oracle_due(model: &HashMap<FlowKey, ModelFlow>, now: u64) -> HashSet<FlowKey> {
    model
        .iter()
        .filter(|(_, f)| {
            class_of(f.state).is_some_and(|ttl| now.saturating_sub(f.last_activity) >= ttl)
        })
        .map(|(k, _)| *k)
        .collect()
}

/// Applies one op to table and oracle alike, returning the new clock.
fn step(
    table: &mut FlowTable<u32>,
    model: &mut HashMap<FlowKey, ModelFlow>,
    op: (u8, u8, u8, u8),
    now: u64,
) -> u64 {
    let (sel, ki, ss, dt) = op;
    let now = now + u64::from(dt % 40);
    let k = key(u32::from(ki) % KEYS);
    match sel % 4 {
        0 => {
            // Insert (or replace): fresh state machine, la = now. The
            // table is sized so capacity eviction never fires here.
            let st = state_of(ss);
            assert!(
                table.insert(k, st, 0, now).is_none(),
                "no eviction expected"
            );
            model.insert(
                k,
                ModelFlow {
                    state: st,
                    last_activity: now,
                },
            );
        }
        1 => {
            // Touch via get_mut: stamps activity if present.
            let hit = table.get_mut(&k, now).is_some();
            if let Some(f) = model.get_mut(&k) {
                assert!(hit);
                f.last_activity = now;
            } else {
                assert!(!hit);
            }
        }
        2 => {
            // set_state, legal transitions only; the skip decision is
            // driven by the oracle so both sides see the same sequence.
            if let Some(f) = model.get_mut(&k) {
                let st = state_of(ss);
                if f.state != st && f.state.can_transition(st) {
                    table.set_state(&k, st, now);
                    if class_of(f.state) != class_of(st) {
                        f.last_activity = now;
                    }
                    f.state = st;
                }
            }
        }
        _ => {
            let removed = table.remove(&k).is_some();
            assert_eq!(removed, model.remove(&k).is_some());
        }
    }
    now
}

proptest! {
    /// Unbudgeted incremental GC reaps the *identical* flow set as the
    /// full-sweep oracle at every tick, on 1 and 4 shards.
    #[test]
    fn prop_incremental_gc_matches_full_sweep_oracle(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..120,
        ),
        shards in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut t = table(shards);
        let mut model: HashMap<FlowKey, ModelFlow> = HashMap::new();
        let mut now = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            now = step(&mut t, &mut model, op, now);
            // Tick every few ops so expiry interleaves with mutation.
            if i % 5 == 4 {
                let due = oracle_due(&model, now);
                let mut reaped = HashSet::new();
                let mut doubles = 0usize;
                t.gc(now, &mut |ev| {
                    if !reaped.insert(ev.key) {
                        doubles += 1;
                    }
                });
                prop_assert_eq!(doubles, 0, "double reap at now={}", now);
                prop_assert_eq!(&reaped, &due, "tick at now={}", now);
                for k in &due {
                    model.remove(k);
                }
                prop_assert_eq!(t.len(), model.len());
            }
        }
        // Final distant tick drains everything but Degraded flows.
        let end = now + IDLE_TTL + 1;
        let due = oracle_due(&model, end);
        let mut reaped = HashSet::new();
        t.gc(end, &mut |ev| {
            reaped.insert(ev.key);
        });
        prop_assert_eq!(&reaped, &due);
        for k in &due { model.remove(k); }
        prop_assert_eq!(t.len(), model.len());
        prop_assert!(model.values().all(|f| f.state == FlowState::Degraded));
    }

    /// Budgeted GC never reaps early — every reaped flow was due per
    /// the oracle — and repeated budget-limited ticks eventually drain
    /// the entire backlog (delayed, never lost).
    #[test]
    fn prop_budgeted_gc_never_early_and_eventually_drains(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..120,
        ),
        budget in 1usize..8,
        shards in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut t = table(shards);
        let mut model: HashMap<FlowKey, ModelFlow> = HashMap::new();
        let mut now = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            now = step(&mut t, &mut model, op, now);
            if i % 5 == 4 {
                let due = oracle_due(&model, now);
                let mut reaped = HashSet::new();
                let n = t.gc_budgeted(now, budget, &mut |ev| {
                    reaped.insert(ev.key);
                });
                prop_assert!(n <= budget, "budget overrun: {} > {}", n, budget);
                prop_assert_eq!(n, reaped.len());
                // Never early: everything reaped was due.
                prop_assert!(reaped.is_subset(&due), "early reap at now={}", now);
                // Budget binds: either all due flows went, or exactly
                // `budget` did and backlog remains.
                prop_assert!(n == due.len() || n == budget);
                for k in &reaped { model.remove(k); }
            }
        }
        // Drain: keep ticking at a fixed distant time until dry; the
        // shard cursor must hand the carried backlog out in full.
        let end = now + IDLE_TTL + 1;
        let mut rounds = 0usize;
        loop {
            let mut reaped = HashSet::new();
            let n = t.gc_budgeted(end, budget, &mut |ev| {
                reaped.insert(ev.key);
            });
            prop_assert!(n <= budget);
            prop_assert!(reaped.is_subset(&oracle_due(&model, end)));
            for k in &reaped { model.remove(k); }
            if n == 0 { break; }
            rounds += 1;
            prop_assert!(rounds <= 4 * KEYS as usize, "drain does not converge");
        }
        prop_assert!(oracle_due(&model, end).is_empty(), "backlog lost under budget");
        prop_assert_eq!(t.len(), model.len());
        prop_assert!(model.values().all(|f| f.state == FlowState::Degraded));
    }
}
