//! Integration: the §4 message-loss cases. Each test biases random
//! loss onto one path of the testbed so that the corresponding case
//! fires many times during a transfer, then asserts the client's byte
//! stream is delivered intact and in order.
//!
//! §4's five cases map onto the loss knobs as:
//!
//! 1. primary misses a client segment        → `loss_to_primary`
//! 2. secondary misses a client segment      → `loss_to_secondary`
//! 3. both miss a client segment             → `client_link.loss`
//! 4. secondary's segment dropped by primary → `loss_to_primary`
//! 5. merged segment lost towards the client → `loss_to_router` /
//!    `client_link.loss`

use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::link::LinkParams;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn server_addr(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

/// Runs an N-byte download and an N-byte upload through a lossy
/// configuration and checks end-to-end integrity.
fn both_directions_survive(config: TestbedConfig, n: u64, deadline: SimDuration) {
    // Download.
    let mut tb = Testbed::new(config.clone());
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            format!("SEND {n}\n").into_bytes(),
            n,
        )));
    });
    tb.run_for(deadline);
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(
            c.is_done(),
            "download stalled at {} of {n} bytes",
            c.received_len()
        );
        assert_eq!(c.mismatches, 0, "download corrupted");
    });
    let pstats = tb.primary_stats();
    assert_eq!(pstats.mismatched_bytes, 0);

    // Upload.
    let mut tb = Testbed::new(config);
    replicate!(&mut tb, SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(server_addr(80), n)));
    });
    tb.run_for(deadline);
    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "upload stalled");
    for node in [tb.primary, tb.secondary.unwrap()] {
        let got = tb
            .sim
            .with::<Host, _>(node, |h, _| h.app_mut::<SinkServer>(0).received);
        assert_eq!(got, n, "replica missed bytes");
    }
}

/// §4 cases 1 & 4: segments towards the primary are lost — both client
/// segments the primary must not ack alone, and diverted secondary
/// segments whose absence blocks the bridge until retransmission.
#[test]
fn loss_towards_primary() {
    both_directions_survive(
        TestbedConfig {
            loss_to_primary: 0.05,
            seed: 7,
            ..TestbedConfig::default()
        },
        300_000,
        SimDuration::from_secs(60),
    );
}

/// §4 case 2: the secondary misses client segments the primary got.
/// The primary's ack = min(ack_P, ack_S) stays behind until the client
/// retransmits, so no byte is acknowledged that S does not have.
#[test]
fn loss_towards_secondary() {
    both_directions_survive(
        TestbedConfig {
            loss_to_secondary: 0.05,
            seed: 8,
            ..TestbedConfig::default()
        },
        300_000,
        SimDuration::from_secs(60),
    );
}

/// §4 case 3: client segments lost before reaching either server, and
/// case 5: merged segments lost on the way to the client.
#[test]
fn loss_on_client_path() {
    both_directions_survive(
        TestbedConfig {
            client_link: LinkParams::fast_ethernet().with_loss(0.05),
            seed: 9,
            ..TestbedConfig::default()
        },
        300_000,
        SimDuration::from_secs(60),
    );
}

/// §4 case 5 via the server-side egress: merged segments dropped
/// between the shared segment and the router.
#[test]
fn loss_towards_router() {
    both_directions_survive(
        TestbedConfig {
            loss_to_router: 0.05,
            seed: 10,
            ..TestbedConfig::default()
        },
        300_000,
        SimDuration::from_secs(60),
    );
}

/// Everything at once: loss on every path simultaneously.
#[test]
fn loss_everywhere_soak() {
    both_directions_survive(
        TestbedConfig {
            client_link: LinkParams::fast_ethernet().with_loss(0.02),
            attachment_loss: 0.01,
            loss_to_primary: 0.02,
            loss_to_secondary: 0.02,
            loss_to_router: 0.02,
            seed: 11,
            ..TestbedConfig::default()
        },
        150_000,
        SimDuration::from_secs(120),
    );
}

/// The §4 "bridge sends k twice" behaviour: with loss towards the
/// servers, the bridge forwards retransmissions immediately — the
/// retransmission counter must be visibly non-zero while the stream
/// stays correct.
#[test]
fn bridge_forwards_retransmissions() {
    let mut tb = Testbed::new(TestbedConfig {
        client_link: LinkParams::fast_ethernet().with_loss(0.05),
        seed: 12,
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            b"SEND 300000\n".to_vec(),
            300_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(60));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done());
        assert_eq!(c.mismatches, 0);
    });
    let stats = tb.primary_stats();
    assert!(
        stats.retransmissions_forwarded > 0,
        "expected forwarded retransmissions, stats: {stats:?}"
    );
}
