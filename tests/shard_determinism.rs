//! The sharded datapath must be an implementation detail: the same
//! scripted segment stream, run through `process_batch` at any shard
//! count, must produce byte-identical output in identical order.

use tcp_failover::apps::manyflow::{ManyFlowConfig, ManyFlowNet, ManyFlowWorkload};
use tcp_failover::core::flow::FlowTableConfig;
use tcp_failover::core::{FailoverConfig, PrimaryBridge};
use tcp_failover::net::ShardExecutor;
use tcp_failover::tcp::filter::FilterOutput;

fn bridge(shards: usize) -> PrimaryBridge {
    let net = ManyFlowNet::default();
    let mut b = PrimaryBridge::new(net.a_p, net.a_s, FailoverConfig::from_ports([80]));
    b.set_flow_config(FlowTableConfig::new(shards, 65_536));
    b
}

/// Runs the workload through `process_batch` and flattens the output.
fn run(shards: usize, threads: usize, batch: usize) -> (Vec<FilterOutput>, u64) {
    let cfg = ManyFlowConfig {
        flows: 60,
        offset: 0,
        rounds: 3,
        payload: 256,
        close: true,
        seed: 0xD00D,
    };
    let workload = ManyFlowWorkload::generate(&cfg, ManyFlowNet::default());
    let mut b = bridge(shards);
    let exec = ShardExecutor::new(threads);
    let mut outs = Vec::new();
    let mut now = 0u64;
    for chunk in workload.into_batches(batch) {
        now += 1_000_000;
        outs.extend(b.process_batch(chunk, now, &exec));
    }
    let merged = b.stats.merged_bytes;
    (outs, merged)
}

/// FNV-1a over every emitted byte, with direction/lane markers so a
/// reordering cannot hash equal.
fn digest(outs: &[FilterOutput]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    };
    for out in outs {
        eat(b"W");
        for seg in &out.to_wire {
            eat(&seg.bytes);
        }
        eat(b"T");
        for seg in &out.to_tcp {
            eat(&seg.bytes);
        }
    }
    h
}

#[test]
fn output_is_identical_across_shard_counts() {
    let (base, merged) = run(1, 1, 16);
    assert!(merged > 0, "workload must exercise the merge path");
    let reference = digest(&base);
    for shards in [2usize, 8] {
        for threads in [1usize, 4] {
            let (outs, m) = run(shards, threads, 16);
            assert_eq!(
                digest(&outs),
                reference,
                "shards={shards} threads={threads} diverged from the 1-shard run"
            );
            assert_eq!(m, merged, "stats totals must also be identical");
        }
    }
}

#[test]
fn batch_size_does_not_change_output() {
    let (base, _) = run(4, 4, 16);
    let reference = digest(&base);
    for batch in [1usize, 7, 500] {
        let (outs, _) = run(4, 4, batch);
        assert_eq!(digest(&outs), reference, "batch={batch} diverged");
    }
}

#[test]
fn workload_tears_down_every_flow() {
    let (_, _) = run(1, 1, 32);
    let cfg = ManyFlowConfig {
        flows: 25,
        offset: 0,
        rounds: 1,
        payload: 100,
        close: true,
        seed: 3,
    };
    let workload = ManyFlowWorkload::generate(&cfg, ManyFlowNet::default());
    let mut b = bridge(2);
    let exec = ShardExecutor::new(2);
    let mut now = 0;
    for chunk in workload.into_batches(64) {
        now += 1_000_000;
        b.process_batch(chunk, now, &exec);
    }
    assert_eq!(b.conn_count(), 0, "all scripted flows reach teardown");
    assert_eq!(b.stats.conns_closed, 25);
    assert!(b.flow_count() >= 25, "TimeWait tombstones remain until GC");
}
