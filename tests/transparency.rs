//! Wire-level transparency — the paper's headline claim, checked on
//! the client's own wire: across a failover the client must see one
//! single, coherent TCP conversation. No sequence-space jump, no
//! foreign addresses, no reset.

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::net::trace::TraceKind;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::seq::{seq_diff, seq_ge};
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::eth::{EtherType, EthernetFrame};
use tcp_failover::wire::ipv4::Ipv4Packet;
use tcp_failover::wire::tcp::{verify_segment_checksum, TcpFlags, TcpSegment};

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

/// Everything the client's NIC received on a run, parsed.
fn client_rx_segments(tb: &mut Testbed) -> Vec<(Ipv4Packet, TcpSegment)> {
    let client = tb.client;
    tb.sim
        .take_trace()
        .into_iter()
        .filter(|e| e.node == client && matches!(e.kind, TraceKind::Rx { .. }))
        .filter_map(|e| {
            let frame = e.frame?;
            let eth = EthernetFrame::decode(&frame).ok()?;
            if eth.ethertype != EtherType::Ipv4 {
                return None;
            }
            let ip = Ipv4Packet::decode(&eth.payload).ok()?;
            let seg = TcpSegment::decode(&ip.payload).ok()?;
            Some((ip, seg))
        })
        .collect()
}

#[test]
fn client_wire_is_one_coherent_conversation_across_failover() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.set_trace_enabled(true);
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 1500000\n".to_vec(),
            1_500_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done());
        assert_eq!(c.mismatches, 0);
    });

    let segments = client_rx_segments(&mut tb);
    assert!(segments.len() > 500, "trace too small: {}", segments.len());

    // 1. Every datagram the client ever received came from a_p — the
    //    secondary's address never leaks to the client.
    for (ip, _) in &segments {
        assert_eq!(
            ip.src,
            addrs::A_P,
            "foreign source {} on the client wire",
            ip.src
        );
    }
    // 2. No RST: the connection never resets.
    for (_, seg) in &segments {
        assert!(!seg.flags.contains(TcpFlags::RST), "client saw a RST");
    }
    // 3. Exactly one SYN+ACK ISN for the whole conversation, and every
    //    data byte lives in that single sequence space, gap-free up to
    //    the final byte (requirement 4 of §2: "the order of the
    //    sequence numbers must not be violated").
    let isns: Vec<u32> = segments
        .iter()
        .filter(|(_, s)| s.flags.contains(TcpFlags::SYN))
        .map(|(_, s)| s.seq)
        .collect();
    assert!(!isns.is_empty());
    assert!(
        isns.iter().all(|&i| i == isns[0]),
        "sequence space changed across failover: {isns:?}"
    );
    let isn = isns[0];
    let mut max_end = isn.wrapping_add(1);
    for (_, seg) in &segments {
        if seg.payload.is_empty() {
            continue;
        }
        // Data never starts beyond what was previously contiguous: the
        // client can always reassemble without holes the server will
        // not fill (retransmissions may repeat, never skip).
        assert!(
            seq_diff(seg.seq, max_end) <= 0,
            "gap in the client-facing stream at seq {}",
            seg.seq
        );
        let end = seg.seq.wrapping_add(seg.payload.len() as u32);
        if seq_ge(end, max_end) {
            max_end = end;
        }
    }
    assert_eq!(
        max_end.wrapping_sub(isn.wrapping_add(1)),
        1_500_000,
        "stream length on the wire"
    );
    // 4. The orig-dest option never escapes the server segment.
    for (_, seg) in &segments {
        assert!(
            seg.orig_dest().is_none(),
            "internal option leaked to the client"
        );
    }
    // 5. Every checksum on the client wire verifies.
    for (ip, seg) in &segments {
        let bytes = seg.encode(ip.src, ip.dst);
        assert!(verify_segment_checksum(ip.src, ip.dst, &bytes));
    }
}

#[test]
fn acks_to_client_never_exceed_either_replica() {
    // Requirement 2 of §2, on the wire: the client's data is never
    // acknowledged beyond what the *secondary* confirmed — so no
    // acknowledged byte can be lost in a failover. We verify the
    // conservative observable: the merged ack never regresses.
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.set_trace_enabled(true);
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 400000\n".to_vec(),
            400_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(5));
    let segments = client_rx_segments(&mut tb);
    let mut last_ack: Option<u32> = None;
    for (_, seg) in segments
        .iter()
        .filter(|(_, s)| s.flags.contains(TcpFlags::ACK))
    {
        if let Some(prev) = last_ack {
            assert!(
                seq_ge(seg.ack, prev),
                "merged acknowledgment regressed: {} after {prev}",
                seg.ack
            );
        }
        last_ack = Some(seg.ack);
    }
}
