//! Integration: §8 connection termination and §7 connection
//! designation methods.

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::echo::EchoServer;
use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::core::PrimaryBridge;
use tcp_failover::net::link::LinkParams;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::socket::TcpState;
use tcp_failover::tcp::types::SocketAddr;

fn server_addr(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

fn assert_all_quiet(tb: &mut Testbed) {
    // Every socket on every stack reached CLOSED (or was reaped), and
    // the primary bridge dropped its per-connection state (§8: "deletes
    // all internal data structures that were allocated for the
    // connection").
    let nodes = [tb.client, tb.primary, tb.secondary.unwrap()];
    for node in nodes {
        tb.sim.with::<Host, _>(node, |h, _| {
            for id in h.stack().socket_ids() {
                let s = h.stack().socket(id).unwrap();
                assert!(
                    matches!(s.state, TcpState::Closed | TcpState::TimeWait),
                    "socket {:?} stuck in {} on {}",
                    id,
                    s.state,
                    h.ip()
                );
            }
        });
    }
    let conns = tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.filter_mut()
            .as_any_mut()
            .downcast_mut::<PrimaryBridge>()
            .unwrap()
            .conn_count()
    });
    assert_eq!(conns, 0, "bridge kept connection state after close");
}

/// The full four-way close initiated by the client, with bridge state
/// torn down afterwards.
#[test]
fn client_initiated_close_cleans_up() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, StoreServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(
            server_addr(80),
            vec!["BROWSE x".into(), "QUIT".into()],
        )));
    });
    tb.run_for(SimDuration::from_secs(8));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        assert!(h.app_mut::<StoreClient>(0).is_done());
    });
    assert_all_quiet(&mut tb);
    let stats = tb.primary_stats();
    assert!(stats.fins_sent >= 1, "merged FIN released: {stats:?}");
    assert_eq!(stats.conns_closed, 1);
}

/// Many sequential connections: bridge state must not leak.
#[test]
fn sequential_connections_do_not_leak_bridge_state() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    for i in 0..10 {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                server_addr(80),
                format!("SEND {}\n", 1000 + i * 100).into_bytes(),
                1000 + i * 100,
            )));
        });
        tb.run_for(SimDuration::from_secs(4));
    }
    for i in 0..10usize {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(i);
            assert!(c.is_done(), "connection {i} incomplete");
            assert_eq!(c.mismatches, 0);
        });
    }
    assert_all_quiet(&mut tb);
    let stats = tb.primary_stats();
    assert_eq!(stats.conns_closed, 10);
}

/// Close handshake under loss: FIN/ACK retransmissions cross the
/// bridges (§8's late-FIN re-ACK machinery) and everything still
/// reaches CLOSED.
#[test]
fn close_under_loss_terminates_cleanly() {
    let mut tb = Testbed::new(TestbedConfig {
        client_link: LinkParams::fast_ethernet().with_loss(0.08),
        loss_to_primary: 0.05,
        loss_to_secondary: 0.05,
        seed: 77,
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, StoreServer::new(80));
    for _ in 0..5 {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(StoreClient::new(
                server_addr(80),
                vec!["BROWSE a".into(), "BUY a 1".into(), "QUIT".into()],
            )));
        });
        tb.run_for(SimDuration::from_secs(20));
    }
    for i in 0..5usize {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<StoreClient>(i);
            assert!(c.is_done(), "session {i} incomplete: {:?}", c.replies);
            assert_eq!(c.mismatches, 0);
        });
    }
    tb.run_for(SimDuration::from_secs(30)); // let all retransmissions settle
    assert_all_quiet(&mut tb);
}

/// §7 method 1 (socket option): no port set anywhere; the listener's
/// failover flag alone designates connections, propagated from the
/// stack to both bridges.
#[test]
fn socket_option_designation_end_to_end() {
    let mut tb = Testbed::new(TestbedConfig {
        failover_ports: vec![], // no method-2 configuration
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, EchoServer::new(4444).with_failover_option());
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let mut c = RequestReplyClient::new(server_addr(4444), b"option-echo".to_vec(), 11);
        c.verify = false; // echo returns the request, not the pattern
        h.add_app(Box::new(c));
    });
    tb.run_for(SimDuration::from_secs(8));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "echo incomplete");
        assert_eq!(c.received_byte(0), b'o');
    });
    // The secondary really participated (designation reached it).
    let sstats = tb.secondary_stats();
    assert!(sstats.ingress_translated > 0, "stats: {sstats:?}");
    assert!(sstats.egress_diverted > 0);
    let pstats = tb.primary_stats();
    assert!(pstats.merged_bytes >= 11);
}

/// Without any designation, traffic bypasses the bridges entirely and
/// is served by the primary alone (ordinary TCP).
#[test]
fn undesignated_traffic_bypasses_bridges() {
    let mut tb = Testbed::new(TestbedConfig {
        failover_ports: vec![],
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, EchoServer::new(5555)); // no failover option
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let mut c = RequestReplyClient::new(server_addr(5555), b"plain".to_vec(), 5);
        c.verify = false;
        h.add_app(Box::new(c));
    });
    tb.run_for(SimDuration::from_secs(8));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        assert!(h.app_mut::<RequestReplyClient>(0).is_done());
    });
    let pstats = tb.primary_stats();
    assert_eq!(pstats.merged_segments, 0, "bridge must not touch plain TCP");
    let sstats = tb.secondary_stats();
    assert_eq!(sstats.egress_diverted, 0);
}
