//! Integration: daisy-chained N-way replication (the §1 extension).
//! Three or more replicas; the client-facing stream is the tail's
//! sequence space; head, middle and tail failures each heal while a
//! transfer is in flight.

use tcp_failover::apps::chain_ops;
use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::chain_testbed::{ChainConfig, ChainTestbed};
use tcp_failover::core::reprovision::ReprovisionPhase;
use tcp_failover::core::testbed::addrs;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn vip(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

/// A depth-`replicas` chain with the invariant auditor and health
/// observatory attached to every bridge — the PR9 "observed" setup.
fn observed_config(replicas: usize, seed: u64) -> ChainConfig {
    ChainConfig {
        replicas,
        seed,
        audit: Some(true),
        health: Some(true),
        ..ChainConfig::default()
    }
}

fn download_testbed_with(config: ChainConfig, total: u64) -> ChainTestbed {
    let mut tb = ChainTestbed::new(config);
    tb.install_servers(|| SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            vip(80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });
    tb
}

fn download_testbed(replicas: usize, total: u64, seed: u64) -> ChainTestbed {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas,
        seed,
        ..ChainConfig::default()
    });
    tb.install_servers(|| SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            vip(80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });
    tb
}

fn assert_download_done(tb: &mut ChainTestbed, total: u64) {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(
            c.is_done(),
            "download stalled at {} of {total}",
            c.received_len()
        );
        assert_eq!(c.mismatches, 0, "stream corrupted");
    });
}

#[test]
fn three_way_chain_fault_free() {
    let mut tb = download_testbed(3, 300_000, 1);
    tb.run_for(SimDuration::from_secs(10));
    assert_download_done(&mut tb, 300_000);
    // Every replica actually served the stream (active replication).
    for (i, &node) in tb.replicas.clone().iter().enumerate() {
        let served = tb
            .sim
            .with::<Host, _>(node, |h, _| h.app_mut::<SourceServer>(0).served);
        assert_eq!(served, 300_000, "replica {i} did not serve");
    }
}

#[test]
fn five_way_chain_fault_free() {
    let mut tb = download_testbed(5, 120_000, 2);
    tb.run_for(SimDuration::from_secs(20));
    assert_download_done(&mut tb, 120_000);
}

#[test]
fn head_failure_promotes_first_backup() {
    let mut tb = download_testbed(3, 2_000_000, 3);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(0); // the head
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    // The first backup promoted itself and owns the VIP now.
    let b1 = tb.replicas[1];
    tb.sim.with::<Host, _>(b1, |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P), "VIP takeover");
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_some(), "B1 promoted");
    });
}

#[test]
fn middle_failure_heals_around_it() {
    let mut tb = download_testbed(3, 2_000_000, 4);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(1); // the middle
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    // The head still holds the VIP; nobody promoted.
    tb.sim.with::<Host, _>(tb.replicas[2], |h, _| {
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_none(), "tail must not promote");
    });
}

#[test]
fn tail_failure_degrades_last_link() {
    let mut tb = download_testbed(3, 2_000_000, 5);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(2); // the tail
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
}

#[test]
fn sequential_failures_down_to_one() {
    // Kill the head, then the new head: the last replica standing
    // serves the connection to completion (two §5-style takeovers).
    let mut tb = download_testbed(3, 4_000_000, 6);
    tb.run_for(SimDuration::from_millis(150));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(5));
    tb.kill_replica(1);
    tb.run_for(SimDuration::from_secs(40));
    assert_download_done(&mut tb, 4_000_000);
    tb.sim.with::<Host, _>(tb.replicas[2], |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P));
        assert!(!h.net_mut().promiscuous, "classic §5 takeover at the tail");
    });
}

#[test]
fn chain_upload_acked_only_when_all_replicas_have_it() {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas: 3,
        seed: 7,
        ..ChainConfig::default()
    });
    tb.install_servers(|| SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(vip(80), 300_000)));
    });
    tb.run_for(SimDuration::from_secs(15));
    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "upload did not finish");
    for (i, &node) in tb.replicas.clone().iter().enumerate() {
        let got = tb
            .sim
            .with::<Host, _>(node, |h, _| h.app_mut::<SinkServer>(0).received);
        assert_eq!(got, 300_000, "replica {i} missed bytes");
    }
}

#[test]
fn chain_store_session_survives_head_failure() {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas: 3,
        seed: 8,
        ..ChainConfig::default()
    });
    tb.install_servers(|| StoreServer::new(80));
    let mut script: Vec<String> = Vec::new();
    for i in 0..30 {
        script.push(format!("BROWSE item{i}"));
        script.push(format!("BUY item{i} 2"));
    }
    script.push("QUIT".into());
    let n_cmds = script.len() as u64;
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(vip(80), script)));
    });
    tb.run_for(SimDuration::from_millis(40));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(30));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<StoreClient>(0);
        assert!(c.is_done(), "stalled at {} replies", c.replies.len());
        assert_eq!(c.mismatches, 0);
    });
    // The surviving replicas each executed the full command stream.
    for &node in &tb.replicas.clone()[1..] {
        tb.sim.with::<Host, _>(node, |h, _| {
            assert_eq!(h.app_mut::<StoreServer>(0).commands, n_cmds);
        });
    }
}

// ---------------------------------------------------------------------
// PR9: depth-4 chains under the auditor, and standby reprovisioning.
// ---------------------------------------------------------------------

#[test]
fn four_way_head_failure_audited() {
    let mut tb = download_testbed_with(observed_config(4, 9), 2_000_000);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    tb.sim.with::<Host, _>(tb.replicas[1], |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P), "VIP takeover");
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_some(), "B1 promoted");
    });
    assert_eq!(tb.audit_violations(), 0, "auditor fired during takeover");
}

#[test]
fn four_way_middle_failure_audited() {
    let mut tb = download_testbed_with(observed_config(4, 10), 2_000_000);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(2); // second middle
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    for i in [1, 3] {
        tb.sim.with::<Host, _>(tb.replicas[i], |h, _| {
            let c = h.controller_mut::<tcp_failover::core::ChainController>();
            assert!(c.promoted_at.is_none(), "replica {i} must not promote");
        });
    }
    assert_eq!(tb.audit_violations(), 0, "auditor fired during heal");
}

#[test]
fn four_way_tail_failure_audited() {
    let mut tb = download_testbed_with(observed_config(4, 11), 2_000_000);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(3); // tail
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    assert_eq!(tb.audit_violations(), 0, "auditor fired on tail loss");
}

#[test]
fn reprovision_restores_redundancy_after_head_failure() {
    // Head dies mid-transfer; B1 promotes via the health-scored gate;
    // a standby is reprovisioned behind the old tail and the lag
    // ledger proves catch-up drained to zero — all with the auditor
    // attached and silent.
    let mut tb = download_testbed_with(observed_config(3, 12), 8_000_000);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_millis(300));
    tb.sim.with::<Host, _>(tb.replicas[1], |h, _| {
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_some(), "B1 promoted before reprovision");
    });

    let standby = chain_ops::reprovision_tail(&mut tb);
    assert_eq!(standby, 3, "standby appended after the founders");
    assert_eq!(tb.tracker.phase(), ReprovisionPhase::CatchUp);
    assert!(
        tb.run_until_restored(SimDuration::from_millis(10), SimDuration::from_secs(30)),
        "catch-up never drained (lag {})",
        tb.catchup_lag()
    );
    assert_eq!(tb.catchup_lag(), 0, "restored with residual lag");
    assert!(tb.tracker.reprovision_ns().unwrap() > 0);
    assert!(tb.tracker.catchup_ns().unwrap() > 0);
    assert_eq!(
        tb.tracker.total_ns().unwrap(),
        tb.tracker.reprovision_ns().unwrap() + tb.tracker.catchup_ns().unwrap()
    );

    tb.run_for(SimDuration::from_secs(60));
    assert_download_done(&mut tb, 8_000_000);
    // The standby actually took over the tail's serving duties.
    let served = tb
        .sim
        .with::<Host, _>(tb.replicas[3], |h, _| h.app_mut::<SourceServer>(0).served);
    assert!(served > 0, "standby never served the adopted stream");
    assert_eq!(tb.audit_violations(), 0, "auditor fired during round");
}

#[test]
fn failure_during_reprovision_catchup_degrades_gracefully() {
    // The converted middle (the old tail) dies while the standby is
    // still catching up: the chain heals around it (§6 degradation)
    // and the transfer completes on the survivors.
    let mut tb = download_testbed_with(observed_config(3, 13), 8_000_000);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_millis(300));

    let standby = chain_ops::reprovision_tail(&mut tb);
    assert_eq!(tb.tracker.phase(), ReprovisionPhase::CatchUp);
    // Give the standby a moment to join the flow, then kill the link
    // whose lag ledger was proving catch-up.
    tb.run_for(SimDuration::from_millis(30));
    tb.kill_replica(2);
    tb.run_for(SimDuration::from_secs(60));
    assert_download_done(&mut tb, 8_000_000);
    // The promoted head and the standby survive as a two-link chain.
    tb.sim.with::<Host, _>(tb.replicas[1], |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P));
    });
    let served = tb.sim.with::<Host, _>(tb.replicas[standby], |h, _| {
        h.app_mut::<SourceServer>(0).served
    });
    assert!(served > 0, "standby never served after the second failure");
    assert_eq!(tb.audit_violations(), 0);
}
