//! Integration: daisy-chained N-way replication (the §1 extension).
//! Three or more replicas; the client-facing stream is the tail's
//! sequence space; head, middle and tail failures each heal while a
//! transfer is in flight.

use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::chain_testbed::{ChainConfig, ChainTestbed};
use tcp_failover::core::testbed::addrs;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn vip(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

fn download_testbed(replicas: usize, total: u64, seed: u64) -> ChainTestbed {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas,
        seed,
        ..ChainConfig::default()
    });
    tb.install_servers(|| SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            vip(80),
            format!("SEND {total}\n").into_bytes(),
            total,
        )));
    });
    tb
}

fn assert_download_done(tb: &mut ChainTestbed, total: u64) {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(
            c.is_done(),
            "download stalled at {} of {total}",
            c.received_len()
        );
        assert_eq!(c.mismatches, 0, "stream corrupted");
    });
}

#[test]
fn three_way_chain_fault_free() {
    let mut tb = download_testbed(3, 300_000, 1);
    tb.run_for(SimDuration::from_secs(10));
    assert_download_done(&mut tb, 300_000);
    // Every replica actually served the stream (active replication).
    for (i, &node) in tb.replicas.clone().iter().enumerate() {
        let served = tb
            .sim
            .with::<Host, _>(node, |h, _| h.app_mut::<SourceServer>(0).served);
        assert_eq!(served, 300_000, "replica {i} did not serve");
    }
}

#[test]
fn five_way_chain_fault_free() {
    let mut tb = download_testbed(5, 120_000, 2);
    tb.run_for(SimDuration::from_secs(20));
    assert_download_done(&mut tb, 120_000);
}

#[test]
fn head_failure_promotes_first_backup() {
    let mut tb = download_testbed(3, 2_000_000, 3);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(0); // the head
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    // The first backup promoted itself and owns the VIP now.
    let b1 = tb.replicas[1];
    tb.sim.with::<Host, _>(b1, |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P), "VIP takeover");
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_some(), "B1 promoted");
    });
}

#[test]
fn middle_failure_heals_around_it() {
    let mut tb = download_testbed(3, 2_000_000, 4);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(1); // the middle
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
    // The head still holds the VIP; nobody promoted.
    tb.sim.with::<Host, _>(tb.replicas[2], |h, _| {
        let c = h.controller_mut::<tcp_failover::core::ChainController>();
        assert!(c.promoted_at.is_none(), "tail must not promote");
    });
}

#[test]
fn tail_failure_degrades_last_link() {
    let mut tb = download_testbed(3, 2_000_000, 5);
    tb.run_for(SimDuration::from_millis(200));
    tb.kill_replica(2); // the tail
    tb.run_for(SimDuration::from_secs(30));
    assert_download_done(&mut tb, 2_000_000);
}

#[test]
fn sequential_failures_down_to_one() {
    // Kill the head, then the new head: the last replica standing
    // serves the connection to completion (two §5-style takeovers).
    let mut tb = download_testbed(3, 4_000_000, 6);
    tb.run_for(SimDuration::from_millis(150));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(5));
    tb.kill_replica(1);
    tb.run_for(SimDuration::from_secs(40));
    assert_download_done(&mut tb, 4_000_000);
    tb.sim.with::<Host, _>(tb.replicas[2], |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P));
        assert!(!h.net_mut().promiscuous, "classic §5 takeover at the tail");
    });
}

#[test]
fn chain_upload_acked_only_when_all_replicas_have_it() {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas: 3,
        seed: 7,
        ..ChainConfig::default()
    });
    tb.install_servers(|| SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(vip(80), 300_000)));
    });
    tb.run_for(SimDuration::from_secs(15));
    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "upload did not finish");
    for (i, &node) in tb.replicas.clone().iter().enumerate() {
        let got = tb
            .sim
            .with::<Host, _>(node, |h, _| h.app_mut::<SinkServer>(0).received);
        assert_eq!(got, 300_000, "replica {i} missed bytes");
    }
}

#[test]
fn chain_store_session_survives_head_failure() {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas: 3,
        seed: 8,
        ..ChainConfig::default()
    });
    tb.install_servers(|| StoreServer::new(80));
    let mut script: Vec<String> = Vec::new();
    for i in 0..30 {
        script.push(format!("BROWSE item{i}"));
        script.push(format!("BUY item{i} 2"));
    }
    script.push("QUIT".into());
    let n_cmds = script.len() as u64;
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(vip(80), script)));
    });
    tb.run_for(SimDuration::from_millis(40));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(30));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<StoreClient>(0);
        assert!(c.is_done(), "stalled at {} replies", c.replies.len());
        assert_eq!(c.mismatches, 0);
    });
    // The surviving replicas each executed the full command stream.
    for &node in &tb.replicas.clone()[1..] {
        tb.sim.with::<Host, _>(node, |h, _| {
            assert_eq!(h.app_mut::<StoreServer>(0).commands, n_cmds);
        });
    }
}
