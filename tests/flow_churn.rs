//! Connection-churn regression test for the PR-4 leak fix: before the
//! flow table, the primary kept a §8 tombstone and the secondary kept
//! a witness ("seen") entry for every connection *forever* — sequential
//! churn grew both without bound. With lifecycle GC, steady-state
//! occupancy must plateau at (TimeWait TTL ÷ churn period) and drain
//! to zero once the churn stops.

use tcp_failover::core::{FailoverConfig, PrimaryBridge, SecondaryBridge};
use tcp_failover::tcp::filter::{AddressedSegment, SegmentFilter};
use tcp_failover::telemetry::audit::{env_audit_enabled, AuditConfig, InvariantAuditor};
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::tcp::{SegmentPatcher, TcpFlags, TcpSegment};

const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
const A_P: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const A_S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
const SEC: u64 = 1_000_000_000;

/// Churn parameters: 500 sequential connections, one every 2 sim-
/// seconds. TimeWait TTL is 60 s, so tombstones from at most the last
/// 30 cycles coexist.
const CYCLES: u16 = 500;
const PERIOD: u64 = 2 * SEC;
const BOUND: usize = 64;

fn raw(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> AddressedSegment {
    AddressedSegment::new(src, dst, seg.encode(src, dst).to_vec())
}

fn diverted(client_port: u16, seg: TcpSegment) -> AddressedSegment {
    let bytes = seg.encode(A_S, A_C).to_vec();
    let mut p = SegmentPatcher::new(bytes, A_S, A_C);
    p.push_orig_dest_option(A_C, client_port);
    p.set_pseudo_dst(A_P);
    let (bytes, src, dst) = p.finish();
    AddressedSegment::new(src, dst, bytes)
}

/// One full open→close cycle against the primary bridge.
fn primary_cycle(b: &mut PrimaryBridge, port: u16, now: u64) {
    let (iss_c, iss_p, iss_s) = (1000, 5000, 9000);
    let _ = b.on_inbound(
        raw(
            A_C,
            A_P,
            TcpSegment::builder(port, 80)
                .seq(iss_c)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60_000)
                .build(),
        ),
        now,
    );
    let _ = b.on_outbound(
        raw(
            A_P,
            A_C,
            TcpSegment::builder(80, port)
                .seq(iss_p)
                .ack(iss_c + 1)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(50_000)
                .build(),
        ),
        now,
    );
    let _ = b.on_inbound(
        diverted(
            port,
            TcpSegment::builder(80, port)
                .seq(iss_s)
                .ack(iss_c + 1)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(40_000)
                .build(),
        ),
        now,
    );
    // Bidirectional close (§8).
    let _ = b.on_outbound(
        raw(
            A_P,
            A_C,
            TcpSegment::builder(80, port)
                .seq(iss_p + 1)
                .ack(iss_c + 1)
                .window(50_000)
                .flags(TcpFlags::FIN)
                .build(),
        ),
        now,
    );
    let _ = b.on_inbound(
        diverted(
            port,
            TcpSegment::builder(80, port)
                .seq(iss_s + 1)
                .ack(iss_c + 1)
                .window(40_000)
                .flags(TcpFlags::FIN)
                .build(),
        ),
        now,
    );
    let _ = b.on_inbound(
        raw(
            A_C,
            A_P,
            TcpSegment::builder(port, 80)
                .seq(iss_c + 1)
                .ack(iss_s + 2)
                .window(60_000)
                .flags(TcpFlags::FIN)
                .build(),
        ),
        now,
    );
    let _ = b.on_outbound(
        raw(
            A_P,
            A_C,
            TcpSegment::builder(80, port)
                .seq(iss_p + 2)
                .ack(iss_c + 2)
                .window(50_000)
                .build(),
        ),
        now,
    );
    let _ = b.on_inbound(
        diverted(
            port,
            TcpSegment::builder(80, port)
                .seq(iss_s + 2)
                .ack(iss_c + 2)
                .window(40_000)
                .build(),
        ),
        now,
    );
}

#[test]
fn primary_tombstones_do_not_accumulate_under_churn() {
    let mut b = PrimaryBridge::new(A_P, A_S, FailoverConfig::from_ports([80]));
    // The CI soak runs this under `TCPFO_AUDIT=1`: the online auditor
    // rides along the whole churn, checking every segment.
    if env_audit_enabled() {
        b.set_audit(Some(Box::new(InvariantAuditor::new(
            AuditConfig::from_env("primary"),
        ))));
    }
    let mut peak = 0usize;
    for i in 0..CYCLES {
        let now = u64::from(i) * PERIOD;
        // Distinct tuple per cycle — the worst case for tombstone
        // accumulation (tuple reuse would replace in place).
        primary_cycle(&mut b, 10_000 + i, now);
        b.on_tick(now + PERIOD / 2);
        peak = peak.max(b.flow_count());
        assert!(
            b.flow_count() <= BOUND,
            "cycle {i}: {} flow entries — tombstones leaking",
            b.flow_count()
        );
    }
    assert_eq!(b.conn_count(), 0);
    assert_eq!(b.stats.conns_closed, u64::from(CYCLES));
    assert!(
        peak >= 16,
        "churn too slow to exercise tombstone overlap (peak {peak})"
    );
    assert!(b.stats.flows_reaped > 0, "the GC must actually run");

    // Churn stops: everything drains.
    let end = u64::from(CYCLES) * PERIOD + 120 * SEC;
    b.on_tick(end);
    assert_eq!(b.flow_count(), 0, "table drains once churn stops");
    assert_eq!(b.stats.flows_reaped, u64::from(CYCLES));
    if let Some(audit) = b.audit() {
        assert!(audit.ledger().total_checks() > 0, "auditor saw the churn");
        assert!(
            audit.violations().is_empty(),
            "churn tripped invariants: {:?}",
            audit.violations()
        );
    }
}

/// One open→close cycle as the secondary bridge sees it: client SYN
/// and FIN inbound (addressed to the primary), its own server FIN
/// diverted outbound.
fn secondary_cycle(b: &mut SecondaryBridge, port: u16, now: u64) {
    let _ = b.on_inbound(
        raw(
            A_C,
            A_P,
            TcpSegment::builder(port, 80)
                .seq(1000)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .window(60_000)
                .build(),
        ),
        now,
    );
    let _ = b.on_inbound(
        raw(
            A_C,
            A_P,
            TcpSegment::builder(port, 80)
                .seq(1001)
                .ack(9001)
                .window(60_000)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build(),
        ),
        now,
    );
    let _ = b.on_outbound(
        raw(
            A_S,
            A_C,
            TcpSegment::builder(80, port)
                .seq(9001)
                .ack(1002)
                .window(40_000)
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build(),
        ),
        now,
    );
}

#[test]
fn secondary_witness_entries_do_not_accumulate_under_churn() {
    let mut b = SecondaryBridge::new(A_P, A_S, FailoverConfig::from_ports([80]));
    let mut peak = 0usize;
    for i in 0..CYCLES {
        let now = u64::from(i) * PERIOD;
        secondary_cycle(&mut b, 10_000 + i, now);
        b.on_tick(now + PERIOD / 2);
        peak = peak.max(b.flow_count());
        assert!(
            b.flow_count() <= BOUND,
            "cycle {i}: {} witness entries — seen-set leaking",
            b.flow_count()
        );
    }
    assert!(peak >= 16, "churn must overlap TimeWait windows");
    assert!(b.stats.flows_reaped > 0);
    let end = u64::from(CYCLES) * PERIOD + 120 * SEC;
    b.on_tick(end);
    assert_eq!(b.flow_count(), 0, "witness table drains once churn stops");
}
