//! Integration: §5 (primary failure → secondary IP takeover) and §6
//! (secondary failure → primary degrades), at various points in a
//! connection's lifetime — the paper's headline property is that the
//! failover can happen *at any time* and the client never notices.

use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::store::{StoreClient, StoreServer};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::detector::ReplicaController;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn server_addr(port: u16) -> SocketAddr {
    SocketAddr::new(addrs::A_P, port)
}

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

/// §5: kill the primary mid-download; the secondary takes over the
/// primary's IP and finishes the transfer; the client's byte stream is
/// intact.
#[test]
fn primary_fails_mid_download() {
    let mut tb = Testbed::new(TestbedConfig::default());
    // Keep the packet trace so a failure dumps its tail (bounded by
    // the ring, so a long run cannot exhaust memory).
    tb.sim.set_trace_enabled(true);
    tb.sim.set_trace_capacity(4_096);
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            b"SEND 2000000\n".to_vec(),
            2_000_000,
        )));
    });
    // Let roughly half the transfer happen, then fail the primary.
    tb.run_for(SimDuration::from_millis(120));
    let before = tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.app_mut::<RequestReplyClient>(0).received_len()
    });
    assert!(
        before > 0 && before < 2_000_000,
        "failover must hit mid-transfer, got {before}"
    );
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));

    // Headline assertions go through `tb.expect`, which dumps the
    // trace tail, timeline and metrics snapshot on failure so a CI
    // log alone is enough to diagnose a regression.
    let (done, received, mismatches) = tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        (c.is_done(), c.received_len(), c.mismatches)
    });
    tb.expect(done, &format!("transfer died at {received} bytes"));
    tb.expect(mismatches == 0, "stream corrupted across failover");
    // The secondary detected the failure and took over.
    let s = tb.secondary.unwrap();
    let detected = tb.failover_detected_at(s);
    tb.expect(detected.is_some(), "fault detector never fired");
    let (promiscuous, owns_a_p) = tb.sim.with::<Host, _>(s, |h, _| {
        (
            h.net_mut().promiscuous,
            h.net_mut().local_ips.contains(&addrs::A_P),
        )
    });
    tb.expect(!promiscuous, "promiscuous mode disabled (§5 step 2)");
    tb.expect(owns_a_p, "IP takeover (§5 step 5)");
}

/// §5 again, but for a client→server upload: no byte the primary acked
/// may be lost (requirement 2 of §2).
#[test]
fn primary_fails_mid_upload() {
    let mut tb = Testbed::new(TestbedConfig::default());
    tb.sim.set_trace_enabled(true);
    tb.sim.set_trace_capacity(4_096);
    replicate!(&mut tb, SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(server_addr(80), 2_000_000)));
    });
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));

    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    tb.expect(done, "upload did not finish after failover");
    // The surviving replica has the complete stream.
    let s_received = tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        h.app_mut::<SinkServer>(0).received
    });
    tb.expect(
        s_received == 2_000_000,
        &format!("secondary missed acknowledged bytes: got {s_received}"),
    );
}

/// §5 with an interactive session: the store keeps answering after the
/// takeover, with per-connection state (stock, order ids) intact.
#[test]
fn primary_fails_mid_store_session() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, StoreServer::new(80));
    let mut script: Vec<String> = Vec::new();
    for i in 0..40 {
        script.push(format!("BROWSE item{i}"));
        script.push(format!("BUY item{i} 1"));
    }
    script.push("QUIT".into());
    let expected_cmds = script.len() as u64;
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(StoreClient::new(server_addr(80), script)));
    });
    tb.run_for(SimDuration::from_millis(40));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));

    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<StoreClient>(0);
        assert!(
            c.is_done(),
            "session stalled after {} replies",
            c.replies.len()
        );
        assert_eq!(c.mismatches, 0, "post-failover replies diverged");
    });
    tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        assert_eq!(h.app_mut::<StoreServer>(0).commands, expected_cmds);
    });
}

/// §6: kill the secondary mid-download; the primary flushes its output
/// queue, stops delaying, and the transfer completes — with `Δseq`
/// still subtracted from every outgoing sequence number.
#[test]
fn secondary_fails_mid_download() {
    let mut tb = Testbed::new(TestbedConfig::default());
    tb.sim.set_trace_enabled(true);
    tb.sim.set_trace_capacity(4_096);
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            b"SEND 2000000\n".to_vec(),
            2_000_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_secs(20));

    let (done, received, mismatches) = tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        (c.is_done(), c.received_len(), c.mismatches)
    });
    tb.expect(done, &format!("transfer died at {received} bytes"));
    tb.expect(mismatches == 0, "Δseq compensation broke the stream");
    let detected = tb.failover_detected_at(tb.primary);
    tb.expect(detected.is_some(), "primary never noticed");
    assert_eq!(
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.filter_mut()
                .as_any_mut()
                .downcast_mut::<tcp_failover::core::PrimaryBridge>()
                .unwrap()
                .mode()
        }),
        tcp_failover::core::PrimaryMode::SecondaryFailed
    );
}

/// §6 for an upload.
#[test]
fn secondary_fails_mid_upload() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(server_addr(80), 2_000_000)));
    });
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_secs(20));

    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "upload did not finish after secondary failure");
    let p_received = tb
        .sim
        .with::<Host, _>(tb.primary, |h, _| h.app_mut::<SinkServer>(0).received);
    assert_eq!(p_received, 2_000_000);
}

/// Failover before any connection exists: connections opened *after*
/// the takeover go straight to the secondary (now owning a_p).
#[test]
fn connection_opened_after_takeover() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    tb.run_for(SimDuration::from_millis(20));
    tb.kill_primary();
    // Wait out detection + takeover.
    tb.run_for(SimDuration::from_millis(500));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            server_addr(80),
            b"SEND 50000\n".to_vec(),
            50_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(10));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "post-takeover connect failed");
        assert_eq!(c.mismatches, 0);
    });
}

/// The detection timestamp respects the configured timeout.
#[test]
fn detection_latency_tracks_timeout() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SinkServer::new(80));
    tb.run_for(SimDuration::from_millis(100));
    let kill_time = tb.sim.now();
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(1));
    let s = tb.secondary.unwrap();
    let detected = tb.failover_detected_at(s).expect("detected");
    let latency = detected.duration_since(kill_time);
    let timeout = tb.config.detector.timeout;
    assert!(latency >= timeout, "detected before timeout: {latency}");
    assert!(
        latency.as_millis() <= timeout.as_millis() + 30,
        "detection too slow: {latency}"
    );
    // The controller counted heartbeats both ways before the failure.
    tb.sim.with::<Host, _>(s, |h, _| {
        let c = h.controller_mut::<ReplicaController>();
        assert!(c.heartbeats_sent > 0);
        assert!(c.heartbeats_received > 0);
        assert!(c.failover_done_at.is_some());
    });
}
