//! Negative ablation: requirement 2 of §2 is load-bearing.
//!
//! "The primary server must not acknowledge a client's TCP segment
//! until it has received an acknowledgment of that segment from the
//! secondary server." This test breaks exactly that rule (the bridge
//! acknowledges with the primary's own ack instead of the minimum),
//! drops some client segments on their way to the secondary, and kills
//! the primary: the client has already discarded acknowledged bytes
//! from its retransmission buffer, the secondary is missing them, and
//! the upload can never complete. The same scenario with the rule
//! intact completes byte-exactly.

use tcp_failover::apps::driver::BulkSendClient;
use tcp_failover::apps::stream::SinkServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::core::PrimaryBridge;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

/// Runs an upload with loss towards the secondary and a primary
/// failure; returns (client finished, bytes the surviving secondary
/// actually received).
fn run(unsafe_ack: bool, seed: u64) -> (bool, u64) {
    let total = 2_000_000u64;
    let mut tb = Testbed::new(TestbedConfig {
        seed,
        loss_to_secondary: 0.05,
        ..TestbedConfig::default()
    });
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(SinkServer::new(80)));
        });
    }
    if unsafe_ack {
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            let bridge = h
                .filter_mut()
                .as_any_mut()
                .downcast_mut::<PrimaryBridge>()
                .unwrap();
            bridge.unsafe_ack_without_min = true;
            // The whole point of this run is to violate the §3.2 min-ack
            // invariant; detach the auditor (if `TCPFO_AUDIT=1` attached
            // one) so it doesn't — correctly — abort the ablation.
            bridge.set_audit(None);
        });
    }
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(
            SocketAddr::new(addrs::A_P, 80),
            total,
        )));
    });
    tb.run_for(SimDuration::from_millis(250));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(90));
    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    let s_received = tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        h.app_mut::<SinkServer>(0).received
    });
    (done, s_received)
}

#[test]
fn with_min_ack_discipline_the_upload_survives() {
    let (done, s_received) = run(false, 600);
    assert!(done, "correct bridge must deliver");
    assert_eq!(s_received, 2_000_000, "no acknowledged byte may be missing");
}

#[test]
fn without_min_ack_discipline_acknowledged_bytes_are_lost() {
    let (done, s_received) = run(true, 600);
    // The client was told its data arrived; the surviving secondary
    // never got some of it and the client cannot retransmit what it
    // already discarded: the transfer is stuck and incomplete.
    assert!(
        !done || s_received < 2_000_000,
        "breaking requirement 2 must lose data (done={done}, secondary has {s_received})"
    );
    assert!(
        s_received < 2_000_000,
        "secondary should be missing acknowledged bytes, has {s_received}"
    );
}
