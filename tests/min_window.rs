//! §3.2's window rule, observed end-to-end: "Choosing the smaller of
//! the two window sizes adapts the client's send rate to the slower of
//! the two servers." A slow-reading secondary must throttle the whole
//! upload; a slow-reading *client-side* of the same size on a single
//! server gives the baseline.

use tcp_failover::apps::driver::BulkSendClient;
use tcp_failover::apps::stream::SinkServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::{SimDuration, SimTime};
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

/// Uploads `total` bytes; the secondary reads at most `s_budget` bytes
/// per poll. Returns the simulated completion time.
fn upload_time(s_budget: usize, total: u64, seed: u64) -> SimTime {
    let mut tb = Testbed::new(TestbedConfig {
        seed,
        ..TestbedConfig::default()
    });
    tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.add_app(Box::new(SinkServer::new(80)));
    });
    tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        h.add_app(Box::new(SinkServer::new(80).with_read_budget(s_budget)));
    });
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(
            SocketAddr::new(addrs::A_P, 80),
            total,
        )));
    });
    tb.run_for(SimDuration::from_secs(120));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<BulkSendClient>(0);
        assert!(c.is_done(), "budget {s_budget}: upload incomplete");
        c.t_acked.expect("acked")
    })
}

#[test]
fn slow_secondary_throttles_the_client() {
    let total = 400_000;
    let fast = upload_time(usize::MAX, total, 70);
    // The secondary drains only 128 bytes per poll (apps poll once per
    // host event): far below the arrival rate, so its receive window
    // collapses and min(win_P, win_S) must pace the client down.
    let slow = upload_time(128, total, 70);
    assert!(
        slow.as_nanos() > fast.as_nanos() * 2,
        "slow secondary must throttle the transfer: fast={fast} slow={slow}"
    );
}

#[test]
fn equal_speed_replicas_cost_nothing_extra() {
    // Sanity companion: a finite but ample budget behaves like the
    // eager reader.
    let total = 400_000;
    let fast = upload_time(usize::MAX, total, 71);
    let ample = upload_time(1 << 20, total, 71);
    let ratio = ample.as_nanos() as f64 / fast.as_nanos() as f64;
    assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
}
