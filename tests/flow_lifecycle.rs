//! Flow lifecycle edges at the primary bridge: TimeWait tombstones
//! answering late FINs until — and not after — the GC reaps them, a
//! fresh SYN superseding TimeWait residue (tuple reuse), and LRU
//! eviction of an established flow resetting the client with an RST.

use tcp_failover::core::flow::{FlowState, FlowTableConfig};
use tcp_failover::core::{FailoverConfig, FlowKey, PrimaryBridge};
use tcp_failover::tcp::filter::{AddressedSegment, SegmentFilter};
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::tcp::{SegmentPatcher, TcpFlags, TcpSegment};

const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
const A_P: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const A_S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

/// One sim-second in nanoseconds.
const SEC: u64 = 1_000_000_000;

fn bridge() -> PrimaryBridge {
    PrimaryBridge::new(A_P, A_S, FailoverConfig::from_ports([80]))
}

fn raw(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> AddressedSegment {
    AddressedSegment::new(src, dst, seg.encode(src, dst).to_vec())
}

fn diverted(client_port: u16, seg: TcpSegment) -> AddressedSegment {
    let bytes = seg.encode(A_S, A_C).to_vec();
    let mut p = SegmentPatcher::new(bytes, A_S, A_C);
    p.push_orig_dest_option(A_C, client_port);
    p.set_pseudo_dst(A_P);
    let (bytes, src, dst) = p.finish();
    AddressedSegment::new(src, dst, bytes)
}

/// Per-flow script constants: distinct ISNs per client port so two
/// concurrent flows cannot alias.
fn isn(client_port: u16) -> (u32, u32, u32) {
    let b = u32::from(client_port) * 10_000;
    (b + 100, b + 5_000, b + 9_000)
}

/// Drives the full client-initiated handshake for `client_port`.
fn establish(b: &mut PrimaryBridge, client_port: u16, now: u64) {
    let (iss_c, iss_p, iss_s) = isn(client_port);
    let syn = raw(
        A_C,
        A_P,
        TcpSegment::builder(client_port, 80)
            .seq(iss_c)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(60_000)
            .build(),
    );
    let _ = b.on_inbound(syn, now);
    let p_synack = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, client_port)
            .seq(iss_p)
            .ack(iss_c + 1)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(50_000)
            .build(),
    );
    let _ = b.on_outbound(p_synack, now);
    let s_synack = diverted(
        client_port,
        TcpSegment::builder(80, client_port)
            .seq(iss_s)
            .ack(iss_c + 1)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(40_000)
            .build(),
    );
    let out = b.on_inbound(s_synack, now);
    assert_eq!(out.to_wire.len(), 1, "merged SYN+ACK released");
}

/// Runs the §8 bidirectional close for `client_port`.
fn close_both_sides(b: &mut PrimaryBridge, client_port: u16, now: u64) {
    let (iss_c, iss_p, iss_s) = isn(client_port);
    let p_fin = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, client_port)
            .seq(iss_p + 1)
            .ack(iss_c + 1)
            .window(50_000)
            .flags(TcpFlags::FIN)
            .build(),
    );
    let _ = b.on_outbound(p_fin, now);
    let s_fin = diverted(
        client_port,
        TcpSegment::builder(80, client_port)
            .seq(iss_s + 1)
            .ack(iss_c + 1)
            .window(40_000)
            .flags(TcpFlags::FIN)
            .build(),
    );
    let _ = b.on_inbound(s_fin, now);
    let client_finack = raw(
        A_C,
        A_P,
        TcpSegment::builder(client_port, 80)
            .seq(iss_c + 1)
            .ack(iss_s + 2)
            .window(60_000)
            .flags(TcpFlags::FIN)
            .build(),
    );
    let _ = b.on_inbound(client_finack, now);
    let p_ack = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, client_port)
            .seq(iss_p + 2)
            .ack(iss_c + 2)
            .window(50_000)
            .build(),
    );
    let _ = b.on_outbound(p_ack, now);
    let s_ack = diverted(
        client_port,
        TcpSegment::builder(80, client_port)
            .seq(iss_s + 2)
            .ack(iss_c + 2)
            .window(40_000)
            .build(),
    );
    let _ = b.on_inbound(s_ack, now);
}

fn key(client_port: u16) -> FlowKey {
    FlowKey::new(80, SocketAddr::new(A_C, client_port))
}

fn late_client_fin(client_port: u16) -> AddressedSegment {
    let (iss_c, _, iss_s) = isn(client_port);
    raw(
        A_C,
        A_P,
        TcpSegment::builder(client_port, 80)
            .seq(iss_c + 1)
            .ack(iss_s + 2)
            .window(60_000)
            .flags(TcpFlags::FIN)
            .build(),
    )
}

#[test]
fn late_fin_reacked_until_gc_reaps_the_tombstone() {
    let mut b = bridge();
    establish(&mut b, 5555, 0);
    close_both_sides(&mut b, 5555, 0);
    assert_eq!(b.conn_count(), 0, "live state deleted after close");
    assert_eq!(b.flow_count(), 1, "TimeWait tombstone remains");

    // Within the TimeWait TTL: the tombstone answers (§8).
    let out = b.on_inbound(late_client_fin(5555), SEC);
    assert_eq!(out.to_wire.len(), 1, "tombstone re-ACKs the late FIN");
    assert_eq!(b.stats.late_fin_acks, 1);

    // Past the TTL, the GC tick reaps the tombstone…
    b.on_tick(62 * SEC);
    assert_eq!(b.flow_count(), 0, "tombstone reaped after TimeWait TTL");
    assert_eq!(b.stats.flows_reaped, 1);

    // …after which a later FIN retransmission is no longer ours to
    // answer: it passes through like any unknown-connection segment.
    let out = b.on_inbound(late_client_fin(5555), 63 * SEC);
    assert!(out.to_wire.is_empty(), "no re-ACK after the reap");
    assert_eq!(out.to_tcp.len(), 1, "unknown traffic passes through");
    assert_eq!(b.stats.late_fin_acks, 1, "counter unchanged");
}

#[test]
fn fresh_syn_supersedes_timewait_tombstone() {
    let mut b = bridge();
    establish(&mut b, 5555, 0);
    close_both_sides(&mut b, 5555, 0);
    assert_eq!(b.flow_state(&key(5555)), Some(FlowState::TimeWait));

    // The client reuses the tuple before the tombstone expires: the
    // SYN must win — a new connection establishes end to end.
    establish(&mut b, 5555, 2 * SEC);
    assert_eq!(b.conn_count(), 1, "tuple reuse yields a live flow");
    assert_eq!(b.flow_state(&key(5555)), Some(FlowState::Replicated));
}

#[test]
fn capacity_eviction_resets_established_flow_with_rst() {
    let mut b = bridge();
    // One shard, two slots: the third handshake must push one out.
    b.set_flow_config(FlowTableConfig::new(1, 2));
    establish(&mut b, 6001, 0);
    establish(&mut b, 6002, 1);
    assert_eq!(b.conn_count(), 2);

    // Flow 6001 is now the LRU entry; a third client's SYN evicts it.
    let (iss_c, _, _) = isn(6003);
    let syn = raw(
        A_C,
        A_P,
        TcpSegment::builder(6003, 80)
            .seq(iss_c)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(60_000)
            .build(),
    );
    let out = b.on_inbound(syn, 2);
    assert!(!b.flows_contain(&key(6001)), "LRU flow evicted");
    assert!(b.flows_contain(&key(6002)), "recently-used flow survives");

    // The evicted client is told, not silently wedged: an RST in its
    // sequence space rides out with the SYN's output.
    let rst = out
        .to_wire
        .iter()
        .map(|seg| TcpSegment::decode(&seg.bytes).expect("decodes"))
        .find(|seg| seg.flags.contains(TcpFlags::RST))
        .expect("eviction emits an RST");
    assert_eq!(rst.dst_port, 6001, "RST targets the evicted client");
    let (_, _, iss_s) = isn(6001);
    assert_eq!(rst.seq, iss_s + 1, "RST in the client-facing (S) space");
    assert_eq!(b.stats.evicted_flows, 1);
    assert_eq!(b.stats.evicted_rsts, 1);
}
