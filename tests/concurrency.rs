//! Integration: many simultaneous failover connections through one
//! bridge pair — per-connection state isolation, interleaved merges,
//! and failover with a mixed population of connections in different
//! states.

use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::core::PrimaryBridge;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

#[test]
fn ten_concurrent_downloads() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    let sizes: Vec<u64> = (0..10).map(|i| 20_000 + i * 13_000).collect();
    for &n in &sizes {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                format!("SEND {n}\n").into_bytes(),
                n,
            )));
        });
    }
    tb.run_for(SimDuration::from_secs(30));
    for (i, &n) in sizes.iter().enumerate() {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(i);
            assert!(
                c.is_done(),
                "conn {i} stalled at {} of {n}",
                c.received_len()
            );
            assert_eq!(c.mismatches, 0, "conn {i} corrupted");
        });
    }
    let stats = tb.primary_stats();
    assert_eq!(stats.mismatched_bytes, 0);
    assert!(stats.merged_bytes >= sizes.iter().sum::<u64>());
}

#[test]
fn mixed_uploads_and_downloads() {
    let mut tb = Testbed::new(TestbedConfig {
        failover_ports: vec![80, 81],
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SourceServer::new(80));
    replicate!(&mut tb, SinkServer::new(81));
    for i in 0..4u64 {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                format!("SEND {}\n", 50_000 + i * 10_000).into_bytes(),
                50_000 + i * 10_000,
            )));
            h.add_app(Box::new(BulkSendClient::new(
                SocketAddr::new(addrs::A_P, 81),
                40_000 + i * 10_000,
            )));
        });
    }
    tb.run_for(SimDuration::from_secs(40));
    for i in 0..8usize {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            if i % 2 == 0 {
                let c = h.app_mut::<RequestReplyClient>(i);
                assert!(c.is_done(), "download app {i} stalled");
                assert_eq!(c.mismatches, 0);
            } else {
                assert!(
                    h.app_mut::<BulkSendClient>(i).is_done(),
                    "upload app {i} stalled"
                );
            }
        });
    }
}

#[test]
fn failover_with_mixed_connection_states() {
    // Connections in different phases when the primary dies: one
    // finished, several mid-flight, one opened after the failover.
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    // Finished before the kill.
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 10000\n".to_vec(),
            10_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(100));
    // Mid-flight at the kill.
    for _ in 0..3 {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                b"SEND 1500000\n".to_vec(),
                1_500_000,
            )));
        });
    }
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(2));
    // Opened after the takeover.
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 30000\n".to_vec(),
            30_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(30));
    for i in 0..5usize {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(i);
            assert!(c.is_done(), "app {i} stalled at {}", c.received_len());
            assert_eq!(c.mismatches, 0, "app {i} corrupted");
        });
    }
}

#[test]
fn bridge_state_scales_and_cleans_up() {
    let mut tb = Testbed::new(TestbedConfig::default());
    replicate!(&mut tb, SourceServer::new(80));
    for _ in 0..20 {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_P, 80),
                b"SEND 5000\n".to_vec(),
                5_000,
            )));
        });
        tb.run_for(SimDuration::from_millis(400));
    }
    tb.run_for(SimDuration::from_secs(10));
    for i in 0..20usize {
        tb.sim.with::<Host, _>(tb.client, |h, _| {
            assert!(h.app_mut::<RequestReplyClient>(i).is_done(), "conn {i}");
        });
    }
    let conns = tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.filter_mut()
            .as_any_mut()
            .downcast_mut::<PrimaryBridge>()
            .unwrap()
            .conn_count()
    });
    assert_eq!(conns, 0, "bridge leaked state across 20 connections");
    let stats = tb.primary_stats();
    assert_eq!(stats.conns_closed, 20);
}
