//! Integration: §7.2 — the replicated application acting as a TCP
//! *client* of an unreplicated back-end T (the paper's "replicated Web
//! server that connects to an unreplicated back-end database"), with T
//! sitting on the server segment.

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

const BACKEND_PORT: u16 = 5432;

fn backend_testbed(seed: u64) -> Testbed {
    let mut tb = Testbed::new(TestbedConfig {
        with_backend: true,
        // Method 2 on the *remote* port: every connection the replicas
        // open towards the back-end service is a failover connection.
        failover_ports: vec![BACKEND_PORT],
        seed,
        ..TestbedConfig::default()
    });
    // The unreplicated back-end service.
    let t = tb.backend.expect("backend host");
    tb.sim.with::<Host, _>(t, |h, _| {
        h.add_app(Box::new(SourceServer::new(BACKEND_PORT)));
    });
    // The replicated application, acting as a TCP client of T.
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(RequestReplyClient::new(
                SocketAddr::new(addrs::A_T, BACKEND_PORT),
                b"SEND 2000000\n".to_vec(),
                2_000_000,
            )));
        });
    }
    tb
}

#[test]
fn replicated_client_queries_unreplicated_backend() {
    let mut tb = backend_testbed(31);
    tb.run_for(SimDuration::from_secs(10));
    // Both replicas received the full (single) response stream.
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            let c = h.app_mut::<RequestReplyClient>(0);
            assert!(c.is_done(), "replica stalled at {}", c.received_len());
            assert_eq!(c.mismatches, 0);
            assert_eq!(c.received_len(), 2_000_000);
        });
    }
    // The back-end served the request exactly once: the replicas'
    // duplicate request streams were merged by the primary bridge.
    let t = tb.backend.unwrap();
    tb.sim.with::<Host, _>(t, |h, _| {
        let s = h.app_mut::<SourceServer>(0);
        assert_eq!(s.requests, 1, "backend saw a duplicated request");
        assert_eq!(s.served, 2_000_000);
    });
    // The secondary really diverted its copy of the request stream.
    let sstats = tb.secondary_stats();
    assert!(sstats.egress_diverted > 0);
}

#[test]
fn backend_connection_survives_primary_failure() {
    let mut tb = backend_testbed(32);
    tb.run_for(SimDuration::from_millis(60));
    let before = tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        h.app_mut::<RequestReplyClient>(0).received_len()
    });
    assert!(
        before < 2_000_000,
        "kill must land mid-transfer (got {before})"
    );
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));
    // The surviving replica's back-end session completed intact.
    tb.sim.with::<Host, _>(tb.secondary.unwrap(), |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        assert!(c.is_done(), "stalled at {}", c.received_len());
        assert_eq!(c.mismatches, 0);
    });
    // And the back-end never noticed: one request, no resets.
    let t = tb.backend.unwrap();
    tb.sim.with::<Host, _>(t, |h, _| {
        assert_eq!(h.app_mut::<SourceServer>(0).requests, 1);
        assert_eq!(h.stack().rst_sent, 0, "backend reset a connection");
    });
}
