//! Cross-crate exercises of the `tcpfo-core` flow-table subsystem:
//! LRU eviction order, capacity limits, GC TTLs, shard placement
//! stability and stat accounting — through the public API only.

use tcp_failover::core::flow::{FlowState, FlowTable, FlowTableConfig, GcPolicy};
use tcp_failover::core::FlowKey;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::ipv4::Ipv4Addr;

fn key(i: u32) -> FlowKey {
    let ip = Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
    FlowKey::new(80, SocketAddr::new(ip, 40_000 + (i % 20_000) as u16))
}

fn table(shards: usize, cap: usize) -> FlowTable<u32> {
    FlowTable::new(FlowTableConfig::new(shards, cap))
}

#[test]
fn insert_get_remove_roundtrip() {
    let mut t = table(4, 64);
    assert!(t.is_empty());
    for i in 0..50 {
        assert!(t.insert(key(i), FlowState::Replicated, i, 0).is_none());
    }
    assert_eq!(t.len(), 50);
    for i in 0..50 {
        assert_eq!(t.peek(&key(i)), Some(&i));
        assert_eq!(t.state(&key(i)), Some(FlowState::Replicated));
    }
    assert_eq!(t.remove(&key(7)), Some((FlowState::Replicated, 7)));
    assert!(!t.contains(&key(7)));
    assert_eq!(t.len(), 49);
}

#[test]
fn lru_evicts_least_recently_used() {
    // Single shard so the LRU order is global and observable.
    let mut t = table(1, 4);
    for i in 0..4 {
        t.insert(key(i), FlowState::Replicated, i, i as u64);
    }
    // Touch 0 so 1 becomes the LRU tail.
    t.get_mut(&key(0), 10);
    let ev = t.insert(key(99), FlowState::Replicated, 99, 11).unwrap();
    assert_eq!(ev.key, key(1), "least-recently-used flow is evicted");
    assert!(t.contains(&key(0)));
    assert!(t.contains(&key(99)));
    assert_eq!(t.stats_total().evicted, 1);
}

#[test]
fn replace_in_place_never_evicts() {
    let mut t = table(1, 2);
    t.insert(key(0), FlowState::Replicated, 0, 0);
    t.insert(key(1), FlowState::Replicated, 1, 0);
    // Same-key insert at capacity replaces in place — no eviction, and
    // the state resets without a lifecycle transition check (tuple
    // reuse across failover epochs).
    assert!(t.insert(key(0), FlowState::Establishing, 42, 1).is_none());
    assert_eq!(t.len(), 2);
    assert_eq!(t.peek(&key(0)), Some(&42));
    assert_eq!(t.state(&key(0)), Some(FlowState::Establishing));
}

#[test]
fn gc_reaps_timewait_after_ttl_and_spares_live_flows() {
    let mut t = table(2, 64);
    let policy = GcPolicy::default();
    t.insert(key(0), FlowState::TimeWait, 0, 0);
    t.insert(key(1), FlowState::Replicated, 1, 0);
    t.insert(key(2), FlowState::Degraded, 2, 0);

    let mut reaped = Vec::new();
    t.gc(policy.timewait_ttl - 1, &mut |ev| reaped.push(ev.key));
    assert!(reaped.is_empty(), "nothing reaped before the TTL");

    t.gc(policy.timewait_ttl + 1, &mut |ev| reaped.push(ev.key));
    assert_eq!(reaped, vec![key(0)], "only the expired TimeWait entry");
    assert!(t.contains(&key(1)));
    assert!(
        t.contains(&key(2)),
        "Degraded flows are GC-exempt (§6: pass-through forever)"
    );

    // The live flow is a leak backstop: it does go after idle_ttl.
    reaped.clear();
    t.gc(policy.idle_ttl + 2, &mut |ev| reaped.push(ev.key));
    assert_eq!(reaped, vec![key(1)]);
    assert!(t.contains(&key(2)), "Degraded still exempt");
    assert_eq!(t.stats_total().reaped, 2);
}

#[test]
fn shard_placement_is_stable_and_key_derived() {
    let t = table(8, 1024);
    assert_eq!(t.shard_count(), 8);
    for i in 0..500 {
        let k = key(i);
        let s = t.shard_of(&k);
        assert!(s < 8);
        assert_eq!(s, t.shard_of(&k), "same key, same shard, always");
        assert_eq!(s, k.shard_of(8), "table defers to the key's own hash");
    }
    // The hash must actually spread: 500 keys over 8 shards should
    // leave no shard empty.
    let mut hist = [0u32; 8];
    for i in 0..500 {
        hist[t.shard_of(&key(i))] += 1;
    }
    assert!(
        hist.iter().all(|&c| c > 0),
        "degenerate shard spread: {hist:?}"
    );
}

#[test]
fn shard_count_rounds_to_power_of_two() {
    for (asked, got) in [(0, 1), (1, 1), (3, 4), (5, 8), (8, 8), (9, 16)] {
        assert_eq!(
            FlowTableConfig::new(asked, 16).shards,
            got,
            "shards({asked})"
        );
    }
}

#[test]
fn iteration_order_is_shard_then_slab() {
    // Determinism contract: iter() yields shard 0's slab order, then
    // shard 1's, … — independent of hash history or access order.
    let mut t = table(4, 64);
    for i in (0..40).rev() {
        t.insert(key(i), FlowState::Replicated, i, 0);
    }
    // Touching entries must not change iteration order (it is slab
    // order, not LRU order).
    for i in 0..40 {
        t.get_mut(&key(i), 5);
    }
    let order: Vec<FlowKey> = t.iter().map(|(k, _, _)| k).collect();
    let mut shard_of_prev = 0;
    for k in &order {
        let s = t.shard_of(k);
        assert!(s >= shard_of_prev, "shards visited in ascending order");
        shard_of_prev = s;
    }
    let again: Vec<FlowKey> = t.iter().map(|(k, _, _)| k).collect();
    assert_eq!(order, again);
}

#[test]
fn stats_count_lookups_and_inserts() {
    let mut t = table(2, 16);
    t.insert(key(0), FlowState::Replicated, 0, 0);
    t.get_mut(&key(0), 1);
    t.get_mut(&key(1), 1);
    let s = t.stats_total();
    assert_eq!(s.inserted, 1);
    assert_eq!(s.occupancy, 1);
    assert!(s.lookups >= 2, "hits and misses both count: {s:?}");
}
