//! Integration: FTP over a three-replica daisy chain — the hardest
//! composition in the repository. Control connections are merged
//! through two links; active-mode data connections are *initiated by
//! all three replicas* (§7.2), merged link by link, and the whole
//! session survives a head failure.

use tcp_failover::apps::ftp::{FtpClient, FtpOp, FtpServer, FTP_CTRL_PORT, FTP_DATA_PORT};
use tcp_failover::core::chain_testbed::{ChainConfig, ChainTestbed};
use tcp_failover::core::testbed::addrs;
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn ftp_chain(replicas: usize, seed: u64) -> ChainTestbed {
    let mut tb = ChainTestbed::new(ChainConfig {
        replicas,
        seed,
        failover_ports: vec![FTP_CTRL_PORT, FTP_DATA_PORT],
        ..ChainConfig::default()
    });
    tb.install_servers(FtpServer::new);
    tb
}

fn run_session(tb: &mut ChainTestbed, script: Vec<FtpOp>, secs: u64) {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(FtpClient::new(
            SocketAddr::new(addrs::A_P, FTP_CTRL_PORT),
            script,
        )));
    });
    tb.run_for(SimDuration::from_secs(secs));
}

#[test]
fn ftp_get_and_put_through_three_replicas() {
    let mut tb = ftp_chain(3, 51);
    run_session(&mut tb, vec![FtpOp::Get(60_000), FtpOp::Put(40_000)], 60);
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<FtpClient>(0);
        assert!(c.is_done(), "session incomplete: {:?}", c.records);
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.mismatches, 0);
    });
    // Every replica's FTP server performed both transfers.
    for (i, &node) in tb.replicas.clone().iter().enumerate() {
        tb.sim.with::<Host, _>(node, |h, _| {
            let s = h.app_mut::<FtpServer>(0);
            assert_eq!(s.transfers, 2, "replica {i}");
            assert_eq!(s.bytes_moved, 40_000, "replica {i} upload bytes");
        });
    }
}

#[test]
fn chain_ftp_survives_head_failure_mid_download() {
    let mut tb = ftp_chain(3, 52);
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(FtpClient::new(
            SocketAddr::new(addrs::A_P, FTP_CTRL_PORT),
            vec![FtpOp::Get(3_000_000), FtpOp::Get(800)],
        )));
    });
    tb.run_for(SimDuration::from_millis(400));
    tb.kill_replica(0);
    tb.run_for(SimDuration::from_secs(90));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<FtpClient>(0);
        assert!(c.is_done(), "ftp chain session died: {:?}", c.records);
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].bytes, 3_000_000);
        assert_eq!(c.mismatches, 0);
    });
    // The promoted replica holds the VIP.
    tb.sim.with::<Host, _>(tb.replicas[1], |h, _| {
        assert!(h.net_mut().local_ips.contains(&addrs::A_P));
    });
}
