//! Integration: §7.2 server-initiated connection establishment — the
//! replicated server acting as a TCP *client* — via FTP active-mode
//! data connections: both replicas SYN from port 20, the primary
//! bridge merges the handshake, and the unreplicated peer completes it.

use tcp_failover::apps::ftp::{FtpClient, FtpOp, FtpServer, FTP_CTRL_PORT, FTP_DATA_PORT};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn ftp_config() -> TestbedConfig {
    TestbedConfig {
        // Both the control port and the data port are failover ports
        // (§7 method 2): the same set on P and S.
        failover_ports: vec![FTP_CTRL_PORT, FTP_DATA_PORT],
        ..TestbedConfig::default()
    }
}

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

fn run_ftp(mut tb: Testbed, script: Vec<FtpOp>, deadline: SimDuration) -> (Testbed, FtpClient) {
    replicate!(&mut tb, FtpServer::new());
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(FtpClient::new(
            SocketAddr::new(addrs::A_P, FTP_CTRL_PORT),
            script,
        )));
    });
    tb.run_for(deadline);
    let client = tb.sim.with::<Host, _>(tb.client, |h, _| {
        std::mem::replace(
            h.app_mut::<FtpClient>(0),
            FtpClient::new(SocketAddr::new(addrs::A_P, FTP_CTRL_PORT), Vec::new()),
        )
    });
    (tb, client)
}

#[test]
fn ftp_get_via_replicated_server() {
    let (mut tb, client) = run_ftp(
        Testbed::new(ftp_config()),
        vec![FtpOp::Get(100_000)],
        SimDuration::from_secs(30),
    );
    assert!(client.is_done(), "session incomplete: {:?}", client.records);
    assert_eq!(client.records.len(), 1);
    assert_eq!(client.records[0].bytes, 100_000);
    assert_eq!(client.mismatches, 0);
    // The data connection was truly replicated: the secondary diverted
    // its own copy of the file to the primary.
    let sstats = tb.secondary_stats();
    assert!(sstats.egress_diverted > 50, "stats: {sstats:?}");
}

#[test]
fn ftp_put_via_replicated_server() {
    let (mut tb, client) = run_ftp(
        Testbed::new(ftp_config()),
        vec![FtpOp::Put(80_000)],
        SimDuration::from_secs(30),
    );
    assert!(client.is_done());
    // Both replicas' FTP servers swallowed the full upload.
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            let srv = h.app_mut::<FtpServer>(0);
            assert_eq!(srv.bytes_moved, 80_000, "replica missed upload bytes");
            assert_eq!(srv.transfers, 1);
        });
    }
}

#[test]
fn ftp_mixed_session() {
    let (_tb, client) = run_ftp(
        Testbed::new(ftp_config()),
        vec![
            FtpOp::Get(200),
            FtpOp::Put(1_300),
            FtpOp::Get(18_200),
            FtpOp::Put(18_200),
        ],
        SimDuration::from_secs(60),
    );
    assert!(client.is_done(), "records: {:?}", client.records);
    assert_eq!(client.records.len(), 4);
    assert_eq!(client.mismatches, 0);
}

/// Kill the primary in the middle of an FTP download: both the control
/// connection and the server-initiated data connection fail over.
#[test]
fn ftp_survives_primary_failure() {
    let mut tb = Testbed::new(ftp_config());
    replicate!(&mut tb, FtpServer::new());
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(FtpClient::new(
            SocketAddr::new(addrs::A_P, FTP_CTRL_PORT),
            vec![FtpOp::Get(2_000_000), FtpOp::Get(500)],
        )));
    });
    tb.run_for(SimDuration::from_millis(150));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(40));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<FtpClient>(0);
        assert!(c.is_done(), "ftp session died: {:?}", c.records);
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].bytes, 2_000_000);
        assert_eq!(c.mismatches, 0, "download corrupted across failover");
    });
}
