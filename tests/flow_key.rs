//! Property tests for [`FlowKey`] canonicalisation: the two segment
//! orientations of the same connection must always map to the same
//! key, the byte-level parsers must agree with the field-level
//! constructors, and the shard hash must be total and stable.

use proptest::prelude::*;
use tcp_failover::core::FlowKey;
use tcp_failover::tcp::filter::AddressedSegment;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::tcp::{TcpFlags, TcpSegment};

proptest! {
    /// A peer→server segment and the server→peer reply on the same
    /// connection canonicalise to one key — the satellite-2 contract:
    /// no caller ever needs to know which orientation it holds.
    #[test]
    fn prop_both_orientations_one_key(
        ip in any::<u32>(),
        peer_port in any::<u16>(),
        server_port in any::<u16>(),
    ) {
        let peer_ip = Ipv4Addr::from_bits(ip);
        let up = FlowKey::from_segment_ingress(peer_ip, peer_port, server_port);
        let down = FlowKey::from_segment_egress(peer_ip, server_port, peer_port);
        prop_assert_eq!(up, down);
        prop_assert_eq!(up.server_port, server_port);
        prop_assert_eq!(up.peer, SocketAddr::new(peer_ip, peer_port));
        prop_assert_eq!(up.hash64(), down.hash64());
    }

    /// The raw-bytes parsers (`of_ingress` / `of_egress`) agree with
    /// the field constructors on real encoded segments — parsing the
    /// wire is not a second, divergent canonicalisation.
    #[test]
    fn prop_wire_parsers_match_constructors(
        ip in 1u32..0xffff_ffff,
        srv_ip in 1u32..0xffff_ffff,
        peer_port in 1u16..u16::MAX,
        server_port in 1u16..u16::MAX,
        seq in any::<u32>(),
    ) {
        let peer_ip = Ipv4Addr::from_bits(ip);
        let server_ip = Ipv4Addr::from_bits(srv_ip);
        let expect = FlowKey::new(server_port, SocketAddr::new(peer_ip, peer_port));

        let up_seg = TcpSegment::builder(peer_port, server_port)
            .seq(seq)
            .flags(TcpFlags::ACK)
            .build();
        let up = AddressedSegment::new(
            peer_ip,
            server_ip,
            up_seg.encode(peer_ip, server_ip).to_vec(),
        );
        prop_assert_eq!(FlowKey::of_ingress(&up), Some(expect));

        let down_seg = TcpSegment::builder(server_port, peer_port)
            .seq(seq)
            .flags(TcpFlags::ACK)
            .build();
        let down = AddressedSegment::new(
            server_ip,
            peer_ip,
            down_seg.encode(server_ip, peer_ip).to_vec(),
        );
        prop_assert_eq!(FlowKey::of_egress(&down), Some(expect));
    }

    /// `shard_of` is in range for every power-of-two shard count and
    /// depends only on the key.
    #[test]
    fn prop_shard_of_total_and_stable(
        ip in any::<u32>(),
        peer_port in any::<u16>(),
        server_port in any::<u16>(),
        shards_log2 in 0u32..8,
    ) {
        let shards = 1usize << shards_log2;
        let k = FlowKey::new(
            server_port,
            SocketAddr::new(Ipv4Addr::from_bits(ip), peer_port),
        );
        let s = k.shard_of(shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, k.shard_of(shards));
        // Distinct server ports on the same peer must be able to land
        // on distinct shards — i.e. the hash reads all fields. (Checked
        // statistically by the spread test in tests/flow_table.rs; here
        // we just pin the 1-shard degenerate case.)
        prop_assert_eq!(k.shard_of(1), 0);
    }
}

#[test]
fn truncated_segments_yield_no_key() {
    let ip = Ipv4Addr::new(10, 0, 0, 1);
    let short = AddressedSegment::new(ip, ip, vec![0u8; 3]);
    assert_eq!(FlowKey::of_ingress(&short), None);
    assert_eq!(FlowKey::of_egress(&short), None);
}
