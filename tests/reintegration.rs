//! Integration: partial reintegration (extension — the paper leaves
//! reintegration out of scope, §1). After the secondary dies and the
//! primary degrades (§6), a freshly rebooted secondary announces
//! itself via heartbeats; from then on *new* connections replicate
//! and can fail over again, while connections from the degraded epoch
//! finish on their Δ-adjusted pass-through tombstones.

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::detector::ReplicaController;
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::core::{PrimaryBridge, PrimaryMode};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

fn add_download(tb: &mut Testbed, bytes: u64) {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            format!("SEND {bytes}\n").into_bytes(),
            bytes,
        )));
    });
}

fn assert_done(tb: &mut Testbed, app: usize) {
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(app);
        assert!(c.is_done(), "app {app} stalled at {}", c.received_len());
        assert_eq!(c.mismatches, 0, "app {app} corrupted");
    });
}

fn primary_mode(tb: &mut Testbed) -> PrimaryMode {
    tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.filter_mut()
            .as_any_mut()
            .downcast_mut::<PrimaryBridge>()
            .unwrap()
            .mode()
    })
}

#[test]
fn secondary_rejoins_and_new_connections_replicate() {
    let mut tb = Testbed::new(TestbedConfig::default());
    tb.sim.with::<Host, _>(tb.primary, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    let s = tb.secondary.unwrap();
    tb.sim.with::<Host, _>(s, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });

    // Connection A starts replicated, then the secondary dies mid-way.
    add_download(&mut tb, 2_000_000); // app 0
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_millis(300));
    assert_eq!(primary_mode(&mut tb), PrimaryMode::SecondaryFailed);

    // Connection B is born during the degraded epoch.
    add_download(&mut tb, 600_000); // app 1

    // The secondary reboots; the primary reintegrates on heartbeat.
    tb.run_for(SimDuration::from_millis(200));
    tb.revive_secondary();
    tb.sim.with::<Host, _>(s, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    tb.run_for(SimDuration::from_millis(200));
    assert_eq!(primary_mode(&mut tb), PrimaryMode::Normal, "reintegrated");
    tb.sim.with::<Host, _>(tb.primary, |h, _| {
        assert_eq!(h.controller_mut::<ReplicaController>().rejoins, 1);
    });

    // Connection C is born after reintegration: replicated again.
    add_download(&mut tb, 800_000); // app 2
    tb.run_for(SimDuration::from_secs(20));
    for app in 0..3 {
        assert_done(&mut tb, app);
    }
    // The revived secondary actually served connection C.
    tb.sim.with::<Host, _>(s, |h, _| {
        let srv = h.app_mut::<SourceServer>(0);
        assert_eq!(srv.served, 800_000, "revived secondary served C only");
    });
    let pstats = tb.primary_stats();
    assert_eq!(pstats.mismatched_bytes, 0);
}

#[test]
fn post_rejoin_connections_survive_primary_failure() {
    // The full circle: S dies, rejoins, then P dies — the connection
    // opened after the rejoin fails over to the revived secondary.
    let mut tb = Testbed::new(TestbedConfig::default());
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(SourceServer::new(80)));
        });
    }
    tb.run_for(SimDuration::from_millis(50));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_millis(300));
    tb.revive_secondary();
    let s = tb.secondary.unwrap();
    tb.sim.with::<Host, _>(s, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    tb.run_for(SimDuration::from_millis(200));
    assert_eq!(primary_mode(&mut tb), PrimaryMode::Normal);

    add_download(&mut tb, 2_000_000);
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(25));
    assert_done(&mut tb, 0);
    tb.sim.with::<Host, _>(s, |h, _| {
        assert!(
            h.net_mut().local_ips.contains(&addrs::A_P),
            "revived secondary took over after the primary died"
        );
    });
}

#[test]
fn degraded_epoch_connection_unaffected_by_rejoin() {
    // A connection born while degraded keeps working across the
    // rejoin, served by the primary alone (zero-Δ tombstone).
    let mut tb = Testbed::new(TestbedConfig::default());
    for node in [tb.primary, tb.secondary.unwrap()] {
        tb.sim.with::<Host, _>(node, |h, _| {
            h.add_app(Box::new(SourceServer::new(80)));
        });
    }
    tb.run_for(SimDuration::from_millis(50));
    tb.kill_secondary();
    tb.run_for(SimDuration::from_millis(300));
    // Born degraded, long enough to straddle the rejoin.
    add_download(&mut tb, 3_000_000);
    tb.run_for(SimDuration::from_millis(150));
    tb.revive_secondary();
    let s = tb.secondary.unwrap();
    tb.sim.with::<Host, _>(s, |h, _| {
        h.add_app(Box::new(SourceServer::new(80)));
    });
    tb.run_for(SimDuration::from_secs(20));
    assert_done(&mut tb, 0);
    // The revived secondary never participated in that connection —
    // and critically, never reset it.
    tb.sim.with::<Host, _>(s, |h, _| {
        assert_eq!(h.stack().rst_sent, 0, "revived secondary RST a live conn");
        assert_eq!(h.app_mut::<SourceServer>(0).served, 0);
    });
}
