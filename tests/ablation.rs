//! Integration: the shared-segment requirement (ablation E8 in
//! DESIGN.md). The paper's secondary snoops promiscuously, which only
//! works on a shared medium — on a learning switch, unicast client
//! frames never reach the secondary, and a failover connection cannot
//! even be established (the primary bridge holds its SYN+ACK waiting
//! for a secondary that hears nothing).

use tcp_failover::apps::driver::RequestReplyClient;
use tcp_failover::apps::stream::SourceServer;
use tcp_failover::core::testbed::{addrs, SegmentKind, Testbed, TestbedConfig};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;

macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

fn attempt_transfer(segment: SegmentKind, replicated: bool) -> (bool, u64) {
    let mut tb = Testbed::new(TestbedConfig {
        segment,
        replicated,
        detector: tcp_failover::core::DetectorConfig {
            // Keep heartbeats healthy; this test is about the datapath.
            ..Default::default()
        },
        ..TestbedConfig::default()
    });
    if replicated {
        replicate!(&mut tb, SourceServer::new(80));
    } else {
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new(SourceServer::new(80)));
        });
    }
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 50000\n".to_vec(),
            50_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(10));
    let done = tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.app_mut::<RequestReplyClient>(0).is_done()
    });
    let snooped = if replicated {
        tb.secondary_stats().ingress_translated
    } else {
        0
    };
    (done, snooped)
}

#[test]
fn failover_works_on_hub() {
    let (done, snooped) = attempt_transfer(SegmentKind::Hub, true);
    assert!(done);
    assert!(snooped > 0, "secondary must snoop on a hub");
}

#[test]
fn failover_breaks_on_switch() {
    // The paper's design assumption, demonstrated by its absence: on a
    // switched segment the secondary never sees the client SYN, so the
    // SYN+ACK merge cannot happen.
    let (done, snooped) = attempt_transfer(SegmentKind::Switch, true);
    assert!(!done, "replicated transfer must stall on a switch");
    // At most the first frames flooded before MAC learning reach the
    // secondary; the sustained unicast stream is invisible to it.
    assert!(
        snooped <= 2,
        "secondary snooped {snooped} frames on a switch"
    );
}

#[test]
fn standard_tcp_works_on_switch() {
    // The stall above is not the switch's fault: plain TCP is fine.
    let (done, _) = attempt_transfer(SegmentKind::Switch, false);
    assert!(done);
}

#[test]
fn standard_tcp_works_on_hub() {
    let (done, _) = attempt_transfer(SegmentKind::Hub, false);
    assert!(done);
}
