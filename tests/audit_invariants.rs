//! The online invariant auditor, end to end.
//!
//! Four angles: (a) a clean audited testbed run exercises the rule
//! catalogue with zero violations; (b) an intentionally broken bridge
//! (primary-only acknowledgments instead of `min(ack_P, ack_S)`) trips
//! the auditor and produces a complete flight-recorder bundle; (c) the
//! §3.4 bare-ACK synthesis holds under mismatched replica segmentation
//! and delayed client acknowledgment, with the auditor attached and
//! armed to panic; (d) a §5 failover run is sequenced by the secondary
//! auditor's takeover-ordering checks.

use bytes::Bytes;
use tcp_failover::apps::driver::{BulkSendClient, RequestReplyClient};
use tcp_failover::apps::stream::{SinkServer, SourceServer};
use tcp_failover::core::testbed::{addrs, Testbed, TestbedConfig};
use tcp_failover::core::{FailoverConfig, PrimaryBridge};
use tcp_failover::net::time::SimDuration;
use tcp_failover::tcp::filter::{AddressedSegment, FilterOutput, SegmentFilter};
use tcp_failover::tcp::host::Host;
use tcp_failover::tcp::types::SocketAddr;
use tcp_failover::telemetry::{AuditConfig, InvariantAuditor, Rule};
use tcp_failover::wire::ipv4::Ipv4Addr;
use tcp_failover::wire::pcapng::read_packets;
use tcp_failover::wire::tcp::{SegmentPatcher, TcpFlags, TcpSegment};

// ---------------------------------------------------------------------
// Bridge-level scaffolding (mirrors the primary bridge's unit tests)
// ---------------------------------------------------------------------

const A_C: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 9);
const A_P: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const A_S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
const ISS_P: u32 = 5_000;
const ISS_S: u32 = 9_000;
const ISS_C: u32 = 100;
const MS: u64 = 1_000_000;

fn raw(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> AddressedSegment {
    AddressedSegment::new(src, dst, seg.encode(src, dst).to_vec())
}

/// Builds a segment as the secondary bridge would divert it.
fn diverted(seg: TcpSegment) -> AddressedSegment {
    let bytes = seg.encode(A_S, A_C).to_vec();
    let mut p = SegmentPatcher::new(bytes, A_S, A_C);
    p.push_orig_dest_option(A_C, 5555);
    p.set_pseudo_dst(A_P);
    let (bytes, src, dst) = p.finish();
    AddressedSegment::new(src, dst, bytes)
}

fn decode_wire(out: &FilterOutput, i: usize) -> TcpSegment {
    TcpSegment::decode(&out.to_wire[i].bytes).expect("wire segment decodes")
}

/// Runs the client-initiated handshake through an audited bridge and
/// returns it established.
fn established(audit: InvariantAuditor) -> PrimaryBridge {
    let mut b = PrimaryBridge::new(A_P, A_S, FailoverConfig::from_ports([80]));
    b.set_audit(Some(Box::new(audit)));
    let syn = raw(
        A_C,
        A_P,
        TcpSegment::builder(5555, 80)
            .seq(ISS_C)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(60_000)
            .build(),
    );
    b.on_inbound(syn, 0);
    let p_synack = raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P)
            .ack(ISS_C + 1)
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window(50_000)
            .build(),
    );
    let held = b.on_outbound(p_synack, 0);
    assert!(held.to_wire.is_empty(), "P's SYN+ACK is held");
    let s_synack = diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S)
            .ack(ISS_C + 1)
            .flags(TcpFlags::SYN)
            .mss(1200)
            .window(40_000)
            .build(),
    );
    let merged = b.on_inbound(s_synack, 0);
    assert_eq!(merged.to_wire.len(), 1, "merged SYN+ACK released");
    b
}

fn client_data(seq_off: u32, payload: &'static [u8]) -> AddressedSegment {
    raw(
        A_C,
        A_P,
        TcpSegment::builder(5555, 80)
            .seq(ISS_C + 1 + seq_off)
            .ack(ISS_S + 1)
            .window(60_000)
            .payload(Bytes::from_static(payload))
            .build(),
    )
}

fn p_seg(seq_off: u32, payload: &'static [u8], ack: u32) -> AddressedSegment {
    raw(
        A_P,
        A_C,
        TcpSegment::builder(80, 5555)
            .seq(ISS_P + 1 + seq_off)
            .ack(ack)
            .window(50_000)
            .payload(Bytes::from_static(payload))
            .build(),
    )
}

fn s_seg(seq_off: u32, payload: &'static [u8], ack: u32) -> AddressedSegment {
    diverted(
        TcpSegment::builder(80, 5555)
            .seq(ISS_S + 1 + seq_off)
            .ack(ack)
            .window(40_000)
            .payload(Bytes::from_static(payload))
            .build(),
    )
}

/// Installs the same app on both replicas (active replication).
macro_rules! replicate {
    ($tb:expr, $mk:expr) => {{
        let tb: &mut Testbed = $tb;
        tb.sim.with::<Host, _>(tb.primary, |h, _| {
            h.add_app(Box::new($mk));
        });
        let s = tb.secondary.expect("replicated testbed");
        tb.sim.with::<Host, _>(s, |h, _| {
            h.add_app(Box::new($mk));
        });
    }};
}

// ---------------------------------------------------------------------
// (a) Clean audited run: the catalogue is exercised, nothing fires.
// ---------------------------------------------------------------------

#[test]
fn clean_run_exercises_rules_without_violations() {
    let mut tb = Testbed::new(TestbedConfig {
        audit: Some(true),
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SinkServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(BulkSendClient::new(
            SocketAddr::new(addrs::A_P, 80),
            100_000,
        )));
    });
    tb.run_for(SimDuration::from_secs(5));

    let done = tb
        .sim
        .with::<Host, _>(tb.client, |h, _| h.app_mut::<BulkSendClient>(0).is_done());
    assert!(done, "audited transfer did not complete");
    assert_eq!(tb.audit_violations(), 0, "clean run must not trip a rule");
    let p_ledger = tb
        .with_primary_audit(|a| a.ledger().clone())
        .expect("primary auditor attached");
    assert!(
        p_ledger.total_checks() > 0,
        "auditor never checked anything"
    );
    for rule in [
        Rule::AckMin,
        Rule::WinMin,
        Rule::MatchedOnly,
        Rule::SeqSpace,
    ] {
        assert!(
            p_ledger.stat(rule).checks > 0,
            "rule {} never exercised:\n{}",
            rule.id(),
            p_ledger.to_table()
        );
    }
    let s_ledger = tb
        .with_secondary_audit(|a| a.ledger().clone())
        .expect("secondary auditor attached");
    assert!(
        s_ledger.stat(Rule::Translate).checks > 0,
        "secondary translation never audited:\n{}",
        s_ledger.to_table()
    );
    // No violation → no flight-recorder bundle.
    assert_eq!(
        tb.with_primary_audit(|a| a.bundle_path().is_some()),
        Some(false)
    );
}

// ---------------------------------------------------------------------
// (b) Broken bridge: the ablation flag trips the auditor and the
//     flight recorder dumps a complete bundle.
// ---------------------------------------------------------------------

#[test]
fn broken_bridge_trips_auditor_and_dumps_bundle() {
    let dir = std::env::temp_dir().join(format!("tcpfo-audit-test-{}", std::process::id()));
    let audit = InvariantAuditor::new(
        AuditConfig::new("broken")
            .panic_on_violation(false)
            .bundle_dir(&dir),
    );
    let mut b = established(audit);
    b.unsafe_ack_without_min = true;

    // The client sends two bytes; P acknowledges them, S does not.
    // The broken bridge treats P's lone ack advance as a min(ack)
    // advance and leaks an acknowledgment for bytes the secondary has
    // not confirmed — exactly the §2 requirement-2 violation, caught
    // by the auditor at the moment of release.
    b.on_inbound(client_data(0, b"hi"), 0);
    let leaked = b.on_outbound(p_seg(0, b"resp", ISS_C + 3), MS);
    assert!(
        leaked
            .to_wire
            .iter()
            .any(|s| TcpSegment::decode(&s.bytes).is_ok_and(|t| t.ack == ISS_C + 3)),
        "broken bridge must leak the unsafe primary-only ack"
    );
    // S's copy still acknowledges only the SYN: the matched data
    // release repeats the unsafe ack.
    let out = b.on_inbound(s_seg(0, b"resp", ISS_C + 1), 2 * MS);
    assert_eq!(out.to_wire.len(), 1, "matched data still released");
    assert_eq!(
        decode_wire(&out, 0).ack,
        ISS_C + 3,
        "broken bridge released the unsafe primary-only ack"
    );

    let aud = b.audit().expect("auditor still attached");
    assert!(
        aud.ledger().stat(Rule::AckMin).violations >= 1,
        "ack_min must have fired:\n{}",
        aud.ledger().to_table()
    );
    let v = aud
        .violations()
        .iter()
        .find(|v| v.rule == Rule::AckMin)
        .expect("ack_min violation recorded");
    assert!(
        !v.chain.is_empty(),
        "violation must carry a causal chain: {}",
        v.render()
    );
    assert!(
        v.detail.contains("min"),
        "detail should state expected minimum: {}",
        v.detail
    );

    // The bundle is complete: ledger, trace ring, parseable capture.
    let bundle = aud
        .bundle_path()
        .expect("bundle written on violation")
        .clone();
    let ledger = std::fs::read_to_string(bundle.join("ledger.txt")).expect("ledger.txt");
    assert!(ledger.contains("ack_min"), "{ledger}");
    assert!(ledger.contains("invariant violation"), "{ledger}");
    let ring = std::fs::read_to_string(bundle.join("trace_ring.txt")).expect("trace_ring.txt");
    assert!(!ring.trim().is_empty(), "trace ring must not be empty");
    let pcap = std::fs::read(bundle.join("capture.pcapng")).expect("capture.pcapng");
    let pkts = read_packets(&pcap).expect("bundle capture parses");
    assert!(!pkts.is_empty(), "capture must hold the recent segments");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// (c) §3.4 regression: bare-ACK synthesis under mismatched replica
//     segmentation and delayed client acknowledgment, audited.
// ---------------------------------------------------------------------

#[test]
fn bare_ack_synthesised_before_retransmission_timer_under_audit() {
    // Auditor panics on violation: reaching the end of this test is
    // itself the proof that no rule (bare_ack included) fired.
    let audit = InvariantAuditor::new(AuditConfig::new("bare-ack"));
    let mut b = established(audit);

    // Mismatched replica segmentation: P emits "ab"+"cd", S emits
    // "abcd" in one segment. Matched release is byte-wise.
    b.on_inbound(client_data(0, b"q"), 0);
    assert!(b
        .on_outbound(p_seg(0, b"ab", ISS_C + 2), 0)
        .to_wire
        .is_empty());
    assert!(b
        .on_outbound(p_seg(2, b"cd", ISS_C + 2), 0)
        .to_wire
        .is_empty());
    let out = b.on_inbound(s_seg(0, b"abcd", ISS_C + 2), MS);
    assert_eq!(out.to_wire.len(), 1, "byte-matched data released");
    let data = decode_wire(&out, 0);
    assert_eq!(&data.payload[..], b"abcd");
    assert_eq!(data.seq, ISS_S + 1, "released in S's sequence space");

    // Delayed-ACK scenario: the client sends more data; each replica
    // acknowledges with a pure ACK (no data to piggyback on). When
    // min(ack) advances at S's ACK, the bridge must synthesise a bare
    // ACK immediately — not wait for server data that may never come,
    // which would deadlock a delayed-ACK client against the server RTO
    // (~200 ms); here it is released at t = 3 ms, in the same event.
    b.on_inbound(client_data(1, b"xy"), 2 * MS);
    let held = b.on_outbound(p_seg(4, b"", ISS_C + 4), 2 * MS + 1);
    assert!(
        held.to_wire.is_empty(),
        "P-only ack advance releases nothing"
    );
    let out = b.on_inbound(s_seg(4, b"", ISS_C + 4), 3 * MS);
    assert_eq!(out.to_wire.len(), 1, "min(ack) advance must release an ACK");
    let bare = decode_wire(&out, 0);
    assert!(bare.payload.is_empty(), "synthesised ACK carries no data");
    assert!(bare.flags.contains(TcpFlags::ACK));
    assert_eq!(bare.ack, ISS_C + 4, "acknowledges the client bytes");

    let aud = b.audit().expect("auditor attached");
    assert!(
        aud.ledger().stat(Rule::BareAck).checks >= 1,
        "§3.4 rule must have been evaluated:\n{}",
        aud.ledger().to_table()
    );
    assert_eq!(aud.ledger().total_violations(), 0);
}

// ---------------------------------------------------------------------
// (d) §5 failover run: the secondary auditor sequences the takeover.
// ---------------------------------------------------------------------

#[test]
fn failover_is_sequenced_by_secondary_auditor() {
    let mut tb = Testbed::new(TestbedConfig {
        audit: Some(true),
        ..TestbedConfig::default()
    });
    replicate!(&mut tb, SourceServer::new(80));
    tb.sim.with::<Host, _>(tb.client, |h, _| {
        h.add_app(Box::new(RequestReplyClient::new(
            SocketAddr::new(addrs::A_P, 80),
            b"SEND 2000000\n".to_vec(),
            2_000_000,
        )));
    });
    tb.run_for(SimDuration::from_millis(120));
    tb.kill_primary();
    tb.run_for(SimDuration::from_secs(20));

    let (done, mismatches) = tb.sim.with::<Host, _>(tb.client, |h, _| {
        let c = h.app_mut::<RequestReplyClient>(0);
        (c.is_done(), c.mismatches)
    });
    assert!(done, "audited failover transfer did not complete");
    assert_eq!(mismatches, 0, "stream corrupted across failover");
    assert_eq!(tb.audit_violations(), 0, "failover must not trip a rule");
    let s_ledger = tb
        .with_secondary_audit(|a| a.ledger().clone())
        .expect("secondary auditor attached");
    assert!(
        s_ledger.stat(Rule::FailoverOrder).checks >= 1,
        "takeover ordering never audited:\n{}",
        s_ledger.to_table()
    );
}
